"""Extension bench — precision/recall trade-off per driver.

Not a paper artifact: the paper reports one operating point (Table 1);
this bench sweeps the decision threshold to show the full trade-off an
analyst would tune, and reports the F1-optimal point next to the
conventional 0.5.
"""

from __future__ import annotations

from repro.corpus.templates import (
    CHANGE_IN_MANAGEMENT,
    MERGERS_ACQUISITIONS,
)
from repro.evaluation.curves import (
    best_operating_point,
    precision_recall_curve,
    render_curve,
)


def bench_threshold_sweep(benchmark, paper_dataset):
    etap = paper_dataset.etap

    def run():
        curves = {}
        for driver_id in (MERGERS_ACQUISITIONS, CHANGE_IN_MANAGEMENT):
            scores = etap.classifiers[driver_id].score(
                paper_dataset.test_items
            )
            curves[driver_id] = precision_recall_curve(
                paper_dataset.test_labels[driver_id], scores,
                thresholds=[0.1, 0.3, 0.5, 0.7, 0.9, 0.99],
            )
        return curves

    curves = benchmark.pedantic(run, rounds=3, iterations=1)

    for driver_id, points in curves.items():
        print(f"\n== {driver_id} ==")
        print(render_curve(points))
        best = best_operating_point(points)
        print(f"best F1 {best.f1:.3f} at threshold {best.threshold}")
        # The default 0.5 operating point is not pathologically far
        # from the best achievable.
        at_half = next(p for p in points if p.threshold == 0.5)
        assert at_half.f1 >= best.f1 - 0.15
        # Precision rises (weakly) with the threshold.
        precisions = [p.precision for p in points]
        assert precisions[-1] >= precisions[0]
