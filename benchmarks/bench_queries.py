"""Query-planner bench: planned portfolios vs hand-written queries.

The smart-query planner (docs/QUERIES.md) only earns its keep if the
portfolio it selects under a crawl budget actually beats the paper's
hand-written smart queries.  This bench gathers the extended
five-driver synthetic web, generates + evaluates the full candidate
pool per driver, plans a portfolio with the greedy marginal-gain
selector, and scores both sides under identical budget accounting:

* **planned** — the selected portfolio's coverage (distinct relevant
  docs), page cost, and precision@budget;
* **baseline** — the hand-written seed queries run in written order
  under the same budget;
* **improved** — a driver counts as improved when the planned
  portfolio strictly beats the baseline on precision@budget, or
  matches it at strictly lower page cost.

``BENCH_queries.json`` is the committed artifact; the tier-1 smoke
test enforces its schema and the acceptance floor (>= 2 drivers
improved, including both extended drivers present).  Regenerate after
an intentional change::

    PYTHONPATH=src python benchmarks/bench_queries.py
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.core.drivers import available_driver_ids, get_driver
from repro.core.etap import Etap, EtapConfig
from repro.corpus.generator import DOC_TYPE_FOR_DRIVER, CorpusConfig
from repro.corpus.web import build_web
from repro.queries.recipes import PlannerSettings, plan_portfolios

#: Committed artifact; regenerating it is the point of the bench.
DEFAULT_OUT = Path(__file__).resolve().parent / "BENCH_queries.json"

#: The reference workload (part of the artifact's identity).
N_DOCS = 400
SEED = 7
#: Tight enough to be binding: with a loose budget the baseline stops
#: early at near-perfect precision and the comparison is vacuous.
BUDGET = 40
TOP_K = 40
MAX_CANDIDATES = 120


def _extended_mix() -> dict[str, float]:
    mix = dict(CorpusConfig().mix)
    for driver_id in available_driver_ids():
        mix.setdefault(DOC_TYPE_FOR_DRIVER[driver_id], 0.07)
    return mix


def _portfolio_dict(portfolio) -> dict:
    return {
        "n_queries": len(portfolio.selected),
        "total_cost": portfolio.total_cost,
        "coverage": portfolio.coverage,
        "precision_at_budget": round(portfolio.precision_at_budget, 4),
    }


def _improved(planned: dict, baseline: dict) -> bool:
    """Planner wins on precision@budget, or ties at strictly lower cost."""
    if planned["precision_at_budget"] > baseline["precision_at_budget"]:
        return True
    return (
        planned["precision_at_budget"] == baseline["precision_at_budget"]
        and planned["total_cost"] < baseline["total_cost"]
    )


def measure(
    n_docs: int = N_DOCS,
    seed: int = SEED,
    budget: int = BUDGET,
    top_k: int = TOP_K,
    out: str | Path | None = DEFAULT_OUT,
) -> dict:
    """Gather, plan every driver, and assemble the artifact."""
    t0 = time.perf_counter()
    web = build_web(n_docs, CorpusConfig(seed=seed, mix=_extended_mix()))
    drivers = [get_driver(d) for d in available_driver_ids()]
    etap = Etap.from_web(
        web, drivers=drivers, config=EtapConfig(top_k_per_query=top_k)
    )
    etap.gather()
    t1 = time.perf_counter()
    plans = plan_portfolios(
        etap,
        PlannerSettings(
            budget=budget, top_k=top_k, max_candidates=MAX_CANDIDATES
        ),
    )
    t2 = time.perf_counter()

    per_driver = {}
    for driver_id, plan in sorted(plans.items()):
        planned = _portfolio_dict(plan.planned)
        baseline = _portfolio_dict(plan.baseline)
        per_driver[driver_id] = {
            "n_candidates": plan.n_candidates,
            "planned": planned,
            "baseline": baseline,
            "improved": _improved(planned, baseline),
        }
    n_candidates = sum(p["n_candidates"] for p in per_driver.values())
    plan_seconds = t2 - t1
    payload = {
        "bench": "queries",
        "n_docs": n_docs,
        "seed": seed,
        "budget": budget,
        "top_k": top_k,
        "max_candidates": MAX_CANDIDATES,
        "gather_seconds": round(t1 - t0, 4),
        "plan_seconds": round(plan_seconds, 4),
        "candidates_evaluated": n_candidates,
        "candidates_per_sec": round(n_candidates / plan_seconds, 2)
        if plan_seconds
        else 0.0,
        "drivers": per_driver,
        "n_drivers_improved": sum(
            1 for p in per_driver.values() if p["improved"]
        ),
    }
    if out is not None:
        Path(out).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    return payload


#: Schema floor for BENCH_queries.json; the tier-1 smoke test enforces it.
REQUIRED_KEYS = frozenset(
    {
        "bench", "n_docs", "seed", "budget", "top_k", "max_candidates",
        "gather_seconds", "plan_seconds", "candidates_evaluated",
        "candidates_per_sec", "drivers", "n_drivers_improved",
    }
)
REQUIRED_PORTFOLIO_KEYS = frozenset(
    {"n_queries", "total_cost", "coverage", "precision_at_budget"}
)
REQUIRED_DRIVER_KEYS = frozenset(
    {"n_candidates", "planned", "baseline", "improved"}
)


def validate_payload(payload: dict) -> list[str]:
    """Schema + acceptance check for a BENCH_queries payload."""
    errors = [
        f"missing key {key!r}"
        for key in sorted(REQUIRED_KEYS - set(payload))
    ]
    if errors:
        return errors
    if payload["bench"] != "queries":
        errors.append(f"bench is {payload['bench']!r}, not 'queries'")
    drivers = payload["drivers"]
    for driver_id in ("funding_rounds", "layoffs"):
        if driver_id not in drivers:
            errors.append(f"extended driver {driver_id!r} missing")
    for driver_id, plan in sorted(drivers.items()):
        missing = REQUIRED_DRIVER_KEYS - set(plan)
        errors.extend(
            f"{driver_id}: missing key {key!r}"
            for key in sorted(missing)
        )
        if missing:
            continue
        for side in ("planned", "baseline"):
            portfolio = plan[side]
            errors.extend(
                f"{driver_id}.{side}: missing key {key!r}"
                for key in sorted(
                    REQUIRED_PORTFOLIO_KEYS - set(portfolio)
                )
            )
        if plan["n_candidates"] <= 0:
            errors.append(f"{driver_id}: empty candidate pool")
        planned = plan["planned"]
        if set(planned) >= REQUIRED_PORTFOLIO_KEYS:
            if planned["total_cost"] > payload["budget"]:
                errors.append(
                    f"{driver_id}: planned cost "
                    f"{planned['total_cost']} exceeds budget "
                    f"{payload['budget']}"
                )
            if planned["n_queries"] == 0:
                errors.append(
                    f"{driver_id}: planner selected nothing "
                    f"(vacuous run)"
                )
            if plan["improved"] != _improved(planned, plan["baseline"]):
                errors.append(
                    f"{driver_id}: 'improved' flag disagrees with "
                    f"the recorded metrics"
                )
    if errors:
        return errors
    if payload["n_drivers_improved"] != sum(
        1 for plan in drivers.values() if plan["improved"]
    ):
        errors.append(
            "n_drivers_improved disagrees with per-driver flags"
        )
    if payload["n_drivers_improved"] < 2:
        errors.append(
            "planner must beat the hand-written queries "
            "(precision@budget, or tie at lower cost) for >= 2 "
            "drivers; got "
            f"{payload['n_drivers_improved']}"
        )
    if payload["candidates_evaluated"] <= 0:
        errors.append("candidates_evaluated must be positive")
    return errors


def bench_queries_planner(benchmark):
    payload = benchmark.pedantic(measure, rounds=1, iterations=1)
    improved = [
        driver_id
        for driver_id, plan in payload["drivers"].items()
        if plan["improved"]
    ]
    print(f"\nqueries: {payload['candidates_evaluated']} candidates "
          f"evaluated in {payload['plan_seconds']:.2f}s, "
          f"{payload['n_drivers_improved']}/"
          f"{len(payload['drivers'])} drivers improved "
          f"({', '.join(improved)})")
    benchmark.extra_info.update(payload)
    assert not validate_payload(payload)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--docs", type=int, default=N_DOCS)
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument("--budget", type=int, default=BUDGET)
    parser.add_argument("--top-k", type=int, default=TOP_K)
    parser.add_argument(
        "--out", default=str(DEFAULT_OUT),
        help="artifact path (use '-' to skip writing)",
    )
    args = parser.parse_args()
    out = None if args.out == "-" else args.out
    payload = measure(
        n_docs=args.docs, seed=args.seed, budget=args.budget,
        top_k=args.top_k, out=out,
    )
    print(json.dumps(payload, indent=2, sort_keys=True))
    errors = validate_payload(payload)
    if errors:
        raise SystemExit("; ".join(errors))


if __name__ == "__main__":
    main()
