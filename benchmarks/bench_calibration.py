"""Extension bench — calibrating the trigger classifier's posteriors.

Naive Bayes posteriors are overconfident (the threshold bench shows
scores piled at 0 and 1).  This bench Platt-scales the M&A classifier
on half of the test set and measures Brier score and expected
calibration error on the other half: the calibrated confidence column
an analyst sees should mean what it says.
"""

from __future__ import annotations

import numpy as np

from repro.corpus.templates import MERGERS_ACQUISITIONS
from repro.ml.calibration import (
    PlattScaler,
    brier_score,
    expected_calibration_error,
    reliability_bins,
)


def bench_platt_calibration(benchmark, paper_dataset):
    etap = paper_dataset.etap
    labels = paper_dataset.test_labels[MERGERS_ACQUISITIONS]
    scores = etap.classifiers[MERGERS_ACQUISITIONS].score(
        paper_dataset.test_items
    )
    rng = np.random.default_rng(12)
    order = rng.permutation(len(labels))
    half = len(order) // 2
    fit_idx, eval_idx = order[:half], order[half:]

    def run():
        scaler = PlattScaler().fit(scores[fit_idx], labels[fit_idx])
        return scaler.transform(scores[eval_idx])

    calibrated = benchmark.pedantic(run, rounds=3, iterations=1)

    raw_eval = scores[eval_idx]
    y_eval = labels[eval_idx]
    raw_brier = brier_score(y_eval, raw_eval)
    cal_brier = brier_score(y_eval, calibrated)
    raw_ece = expected_calibration_error(y_eval, raw_eval)
    cal_ece = expected_calibration_error(y_eval, calibrated)

    print(f"\n{'':12s} {'Brier':>8s} {'ECE':>8s}")
    print(f"{'raw NB':12s} {raw_brier:8.4f} {raw_ece:8.4f}")
    print(f"{'calibrated':12s} {cal_brier:8.4f} {cal_ece:8.4f}")
    print("\nreliability (calibrated):")
    for bin_ in reliability_bins(y_eval, calibrated, n_bins=5):
        print(f"  [{bin_.lower:.1f},{bin_.upper:.1f}) "
              f"pred={bin_.mean_predicted:.3f} "
              f"obs={bin_.observed_rate:.3f} n={bin_.count}")

    assert cal_ece <= raw_ece + 0.02
    assert cal_brier <= raw_brier + 0.01
    benchmark.extra_info["raw_ece"] = round(raw_ece, 4)
    benchmark.extra_info["calibrated_ece"] = round(cal_ece, 4)
