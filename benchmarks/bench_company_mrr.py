"""Equation 2 — company-level MRR aggregation across all sales drivers.

    MRR(c) = sum_i sum_j 1/rank(te_j(c, sd_i)) / sum_i |TE(c, sd_i)|

The bench times the end-to-end company report (extract all drivers,
rank, aggregate) and checks Equation 2's arithmetic on the output plus
the ordering invariant.
"""

from __future__ import annotations

from collections import defaultdict

import pytest

from repro.evaluation.experiments import run_company_ranking


def bench_company_mrr(benchmark, medium_dataset):
    result = benchmark.pedantic(
        run_company_ranking, kwargs={"dataset": medium_dataset},
        rounds=1, iterations=1,
    )
    print("\n" + result.render(limit=10))

    scores = result.scores
    assert scores
    mrrs = [s.mrr for s in scores]
    assert mrrs == sorted(mrrs, reverse=True)
    assert all(0 < s.mrr <= 1 for s in scores)

    # Re-derive Equation 2 by hand from the ranked event lists and
    # compare against the reported values.
    events = medium_dataset.etap.extract_trigger_events()
    reciprocal = defaultdict(float)
    counts = defaultdict(int)
    for driver_events in events.values():
        for event in driver_events:
            for company in event.companies:
                reciprocal[company] += 1.0 / event.rank
                counts[company] += 1
    for score in scores:
        expected = reciprocal[score.company] / counts[score.company]
        assert score.mrr == pytest.approx(expected)
        assert score.n_trigger_events == counts[score.company]
    benchmark.extra_info["n_companies"] = len(scores)
