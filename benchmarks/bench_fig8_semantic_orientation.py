"""Figure 8 — revenue-growth trigger events ranked by semantic
orientation.

Section 4: phrases conveying a stronger sense ('sharp decline', 'worst
losses') outweigh plain sentiment words ('loss', 'profit').  The bench
times extraction + orientation re-ranking and checks that the ordering
follows orientation magnitude and that strong-phrase snippets outrank
weak-phrase snippets.
"""

from __future__ import annotations

from repro.core.lexicon import revenue_growth_lexicon
from repro.evaluation.experiments import run_figure8


def bench_figure8_orientation(benchmark, medium_dataset):
    result = benchmark.pedantic(
        run_figure8, kwargs={"dataset": medium_dataset},
        rounds=1, iterations=1,
    )
    print("\n" + result.render(limit=10))

    events = result.events
    assert events
    magnitudes = [abs(e.score) for e in events]
    assert magnitudes == sorted(magnitudes, reverse=True)

    # Strong phrases dominate the top of the ranking.
    lexicon = revenue_growth_lexicon()
    strong = {p for p, w in lexicon.weights.items() if abs(w) >= 2}
    top = events[: max(len(events) // 4, 1)]
    with_strong = sum(
        any(phrase in e.text.lower() for phrase in strong) for e in top
    )
    print(f"\ntop-quartile events containing a strong phrase: "
          f"{with_strong}/{len(top)}")
    assert with_strong / len(top) >= 0.5
    benchmark.extra_info["n_events"] = len(events)
