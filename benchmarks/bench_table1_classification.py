"""Table 1 — precision / recall / F1 per sales driver.

Paper (naive Bayes, two denoising iterations):

    Mergers & acquisitions   P=0.744  R=0.806  F1=0.773
    Change in management     P=0.656  R=0.786  F1=0.715

The bench times the classification of the full common test set (72 M&A
positives, 56 CiM positives, 2265 negatives) and prints the regenerated
table next to the paper's numbers.  Absolute values differ (synthetic
corpus); the asserted *shape*: both drivers land well above the trivial
baseline, in the paper's band, and M&A precision exceeds change in
management (whose misleading biography snippets cost precision,
section 5.2).
"""

from __future__ import annotations

from repro.corpus.templates import (
    CHANGE_IN_MANAGEMENT,
    MERGERS_ACQUISITIONS,
    REVENUE_GROWTH,
)
from repro.evaluation.experiments import run_table1


def bench_table1(benchmark, paper_dataset):
    result = benchmark.pedantic(
        run_table1,
        kwargs={
            "dataset": paper_dataset,
            "drivers": (
                MERGERS_ACQUISITIONS,
                CHANGE_IN_MANAGEMENT,
                REVENUE_GROWTH,
            ),
        },
        rounds=3,
        iterations=1,
    )
    print("\n" + result.render())

    ma = next(r for r in result.rows if r.driver_id == MERGERS_ACQUISITIONS)
    cim = next(
        r for r in result.rows if r.driver_id == CHANGE_IN_MANAGEMENT
    )
    # Shape assertions mirroring the paper's findings.
    assert ma.f1 >= 0.6
    assert cim.f1 >= 0.55
    assert ma.precision > cim.precision  # biography confusers hit CiM
    assert ma.recall >= 0.75 and cim.recall >= 0.75
    benchmark.extra_info["ma_f1"] = round(ma.f1, 3)
    benchmark.extra_info["cim_f1"] = round(cim.f1, 3)
