"""Section 5.2's error diagnosis, regenerated automatically.

"Certain sales drivers, such as change in management, contain a large
number of misleading trigger events ... a recurring example is the
biographical description of a person."

The bench runs the automated error analysis over the full test set and
asserts the paper's diagnosis: the named failure modes — historical
text (biographies/retrospectives) and cross-driver triggers — account
for the bulk of the change-in-management false positives.
"""

from __future__ import annotations

from repro.corpus.templates import CHANGE_IN_MANAGEMENT
from repro.evaluation.error_analysis import analyze_errors


def bench_error_analysis(benchmark, paper_dataset):
    etap = paper_dataset.etap
    labels = paper_dataset.test_labels[CHANGE_IN_MANAGEMENT]
    other_labels = {
        driver: values
        for driver, values in paper_dataset.test_labels.items()
        if driver != CHANGE_IN_MANAGEMENT
    }
    predictions = etap.classifiers[CHANGE_IN_MANAGEMENT].predict(
        paper_dataset.test_items
    )

    report = benchmark.pedantic(
        analyze_errors,
        args=(
            CHANGE_IN_MANAGEMENT,
            paper_dataset.test_items,
            labels,
            predictions,
        ),
        kwargs={"other_labels": other_labels},
        rounds=3,
        iterations=1,
    )
    print("\n" + report.render())

    assert report.n_false_positive > 0, (
        "the CiM classifier is expected to produce some FPs"
    )
    explained = (
        report.fp_buckets.get("historical", 0)
        + report.fp_buckets.get("cross_driver", 0)
        + report.fp_buckets.get("business_boilerplate", 0)
    )
    # The paper's named failure modes explain (nearly) all errors.
    assert explained / report.n_false_positive >= 0.8
    # And biographical/historical text is a major bucket, as §5.2 says.
    assert report.fp_buckets.get("historical", 0) >= 1
    benchmark.extra_info["fp_buckets"] = dict(report.fp_buckets)
