"""Ingestion throughput bench: gather -> train -> score, docs/sec.

Ingestion — tokenize, POS-tag, NER, stem, vectorize, index — is the hot
path that bounds corpus size and revisit frequency (section 3 of the
paper: alerts are only useful while they are fresh).  This bench runs
the full pipeline (gather + train + extract/score) over a fixed-seed
synthetic web and reports per-stage wall time, end-to-end documents per
second, and the annotation-engine cache statistics.

``BENCH_ingest.json`` is a committed artifact holding TWO runs of the
same fixed-seed workload:

* ``baseline`` — recorded on the pre-optimization tree (the commit just
  before the annotate-once engine landed), on the same machine;
* ``current``  — the optimized pipeline.

``speedup`` is the ratio of their ``docs_per_sec``; the tier-1 smoke
test enforces the schema and the acceptance floors (>= 3x end-to-end,
annotation-cache hit rate >= 0.5) against the committed file.

The artifact also carries ``tier_100k``: an ingestion-only run (crawl
-> dedup -> shard -> tokenize -> vectorize -> index -> merge, no
train/score) at 100k documents through the process-sharded flat-buffer
path (``workers > 1``), reporting docs/sec, memory bytes per stored
document, and the per-sentence memo hit rate.  Its
``speedup_vs_baseline`` divides by the *baseline's* end-to-end
docs/sec — the honest "how much faster is ingestion now" number the
smoke test floors at 10x.

Regenerate after an intentional perf-relevant change::

    PYTHONPATH=src python benchmarks/bench_ingest.py \
        --baseline-from benchmarks/BENCH_ingest.json --tier-100k

which re-measures ``current`` (and the 100k tier) while carrying the
recorded baseline forward (wall-clock ratios are only meaningful
within one machine).  Without ``--tier-100k`` an existing tier is
carried forward from ``--baseline-from`` untouched.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.core.etap import Etap, EtapConfig
from repro.corpus.generator import CorpusConfig
from repro.corpus.web import build_web

#: Committed artifact; regenerating it is the point of the bench.
DEFAULT_OUT = Path(__file__).resolve().parent / "BENCH_ingest.json"

#: The reference workload (part of the artifact's identity).
N_DOCS = 500
SEED = 7
TOP_K_PER_QUERY = 60
NEGATIVE_SAMPLE_SIZE = 1200

#: The ingestion-scale tier (part of the artifact's identity).
TIER_N_DOCS = 100_000
TIER_SEED = 11
TIER_WORKERS = 4


def _engine_cache_stats(etap: Etap) -> dict:
    """Aggregate cache stats from the annotation engine, if present.

    The pre-PR tree has no ``text_engine``; the baseline run then
    reports zero traffic, which is exactly right: there was no shared
    cache to hit.
    """
    engine = getattr(etap, "text_engine", None)
    if engine is None:
        return {"hits": 0, "misses": 0, "hit_rate": 0.0}
    stats = engine.stats()
    return {
        "hits": stats.hits,
        "misses": stats.misses,
        "hit_rate": round(stats.hit_rate, 4),
    }


def run_once(
    n_docs: int = N_DOCS,
    seed: int = SEED,
    workers: int = 1,
) -> dict:
    """One fixed-seed gather+train+score pass; returns the run payload."""
    web = build_web(n_docs, CorpusConfig(seed=seed))
    config = EtapConfig(
        top_k_per_query=TOP_K_PER_QUERY,
        negative_sample_size=NEGATIVE_SAMPLE_SIZE,
    )
    if hasattr(config, "workers"):
        config.workers = workers
    etap = Etap.from_web(web, config=config)

    t0 = time.perf_counter()
    report = etap.gather()
    t1 = time.perf_counter()
    etap.train()
    t2 = time.perf_counter()
    events = etap.extract_trigger_events()
    t3 = time.perf_counter()

    total = t3 - t0
    n_events = sum(len(ranked) for ranked in events.values())
    return {
        "n_docs": n_docs,
        "seed": seed,
        "workers": workers,
        "documents_stored": report.documents_stored,
        "n_trigger_events": n_events,
        "gather_seconds": round(t1 - t0, 4),
        "train_seconds": round(t2 - t1, 4),
        "score_seconds": round(t3 - t2, 4),
        "total_seconds": round(total, 4),
        "docs_per_sec": round(report.documents_stored / total, 2),
        "cache": _engine_cache_stats(etap),
    }


def run_ingest_tier(
    n_docs: int = TIER_N_DOCS,
    seed: int = TIER_SEED,
    workers: int = TIER_WORKERS,
) -> dict:
    """Ingestion-only pass through the process-sharded flat path.

    Measures gather alone (crawl, dedup, shard fan-out, per-shard
    tokenize + vectorize, deterministic merge) — the stage the sharded
    overhaul targets; train/score scale with snippet counts, not
    corpus size, and have their own benches.  Corpus synthesis happens
    before the clock starts.
    """
    from repro.obs.tracer import Tracer

    web = build_web(n_docs, CorpusConfig(seed=seed))
    config = EtapConfig(max_crawl_pages=n_docs * 2)
    if hasattr(config, "workers"):
        config.workers = workers
    tracer = Tracer()
    etap = Etap.from_web(web, config=config, tracer=tracer)

    t0 = time.perf_counter()
    report = etap.gather()
    t1 = time.perf_counter()

    stored = report.documents_stored
    gather_seconds = t1 - t0
    memory = (
        etap.store.memory_bytes()
        if hasattr(etap.store, "memory_bytes")
        else 0
    )
    counters = tracer.registry.counters
    hits = counters.get("ingest.cache_hits", 0)
    misses = counters.get("ingest.cache_misses", 0)
    lookups = hits + misses
    return {
        "n_docs": n_docs,
        "seed": seed,
        "workers": workers,
        "documents_stored": stored,
        "gather_seconds": round(gather_seconds, 4),
        "docs_per_sec": round(stored / gather_seconds, 2),
        "memory_bytes_per_doc": round(memory / stored, 1)
        if stored
        else 0.0,
        "cache": {
            "hits": hits,
            "misses": misses,
            "hit_rate": round(hits / lookups, 4) if lookups else 0.0,
        },
    }


def measure(
    n_docs: int = N_DOCS,
    seed: int = SEED,
    workers: int = 1,
    baseline: dict | None = None,
    tier: dict | None = None,
    out: str | Path | None = DEFAULT_OUT,
) -> dict:
    """Run the workload and assemble the two-run artifact payload.

    Without a recorded ``baseline`` the current run doubles as its own
    baseline (speedup 1.0) — useful on a fresh machine; the committed
    artifact always carries the true pre-PR numbers.
    """
    current = run_once(n_docs=n_docs, seed=seed, workers=workers)
    baseline = baseline or dict(current)
    speedup = (
        current["docs_per_sec"] / baseline["docs_per_sec"]
        if baseline["docs_per_sec"]
        else 0.0
    )
    payload = {
        "bench": "ingest",
        "baseline": baseline,
        "current": current,
        "speedup": round(speedup, 2),
    }
    if tier is not None:
        tier = dict(tier)
        # The honest cross-PR ratio: sharded ingestion throughput over
        # the recorded pre-optimization *end-to-end* docs/sec.
        if "speedup_vs_baseline" not in tier:
            tier["speedup_vs_baseline"] = round(
                tier["docs_per_sec"] / baseline["docs_per_sec"], 2
            ) if baseline["docs_per_sec"] else 0.0
        payload["tier_100k"] = tier
    if out is not None:
        Path(out).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    return payload


#: Schema floor for BENCH_ingest.json; the tier-1 smoke test enforces it.
REQUIRED_RUN_KEYS = frozenset(
    {
        "n_docs", "seed", "workers", "documents_stored",
        "n_trigger_events", "gather_seconds", "train_seconds",
        "score_seconds", "total_seconds", "docs_per_sec", "cache",
    }
)
REQUIRED_KEYS = frozenset({"bench", "baseline", "current", "speedup"})
#: Schema for the optional (but committed) ingestion-scale tier.
TIER_RUN_KEYS = frozenset(
    {
        "n_docs", "seed", "workers", "documents_stored",
        "gather_seconds", "docs_per_sec", "memory_bytes_per_doc",
        "speedup_vs_baseline", "cache",
    }
)


def validate_payload(payload: dict) -> list[str]:
    """Schema-check a BENCH_ingest payload; returns human errors."""
    errors = [
        f"missing key {key!r}"
        for key in sorted(REQUIRED_KEYS - set(payload))
    ]
    if errors:
        return errors
    if payload["bench"] != "ingest":
        errors.append(f"bench is {payload['bench']!r}, not 'ingest'")
    for name in ("baseline", "current"):
        run = payload[name]
        if not isinstance(run, dict):
            errors.append(f"{name} must be a run payload")
            continue
        errors.extend(
            f"{name}: missing key {key!r}"
            for key in sorted(REQUIRED_RUN_KEYS - set(run))
        )
        if errors:
            continue
        for key in (
            "gather_seconds", "train_seconds", "score_seconds",
            "total_seconds", "docs_per_sec",
        ):
            if not isinstance(run[key], (int, float)) or run[key] < 0:
                errors.append(f"{name}.{key} must be non-negative")
        cache = run["cache"]
        if not isinstance(cache, dict) or not {
            "hits", "misses", "hit_rate"
        } <= set(cache):
            errors.append(f"{name}.cache must carry hits/misses/hit_rate")
        elif not 0.0 <= cache["hit_rate"] <= 1.0:
            errors.append(f"{name}.cache.hit_rate must be in [0, 1]")
        if run["documents_stored"] <= 0:
            errors.append(f"{name}.documents_stored must be positive")
        if run["n_trigger_events"] <= 0:
            errors.append(f"{name} found no trigger events (vacuous run)")
    if not isinstance(payload["speedup"], (int, float)):
        errors.append("speedup must be a number")
    if "tier_100k" in payload:
        tier = payload["tier_100k"]
        if not isinstance(tier, dict):
            return errors + ["tier_100k must be a run payload"]
        errors.extend(
            f"tier_100k: missing key {key!r}"
            for key in sorted(TIER_RUN_KEYS - set(tier))
        )
        if not errors:
            if tier["workers"] <= 1:
                errors.append(
                    "tier_100k.workers must exercise the sharded path"
                )
            for key in (
                "gather_seconds", "docs_per_sec",
                "memory_bytes_per_doc", "speedup_vs_baseline",
            ):
                if not isinstance(tier[key], (int, float)) or (
                    tier[key] < 0
                ):
                    errors.append(f"tier_100k.{key} must be non-negative")
            if tier["documents_stored"] <= 0:
                errors.append(
                    "tier_100k.documents_stored must be positive"
                )
            cache = tier["cache"]
            if not isinstance(cache, dict) or not {
                "hits", "misses", "hit_rate"
            } <= set(cache):
                errors.append(
                    "tier_100k.cache must carry hits/misses/hit_rate"
                )
    return errors


def bench_ingest_pipeline(benchmark):
    payload = benchmark.pedantic(measure, rounds=1, iterations=1)
    current = payload["current"]
    print(f"\ningest: {current['docs_per_sec']:.1f} docs/sec  "
          f"(gather {current['gather_seconds']:.2f}s  "
          f"train {current['train_seconds']:.2f}s  "
          f"score {current['score_seconds']:.2f}s)  "
          f"cache hit rate {current['cache']['hit_rate']:.2f}  "
          f"speedup {payload['speedup']:.2f}x")
    benchmark.extra_info.update(payload)
    assert not validate_payload(payload)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--record-baseline", metavar="FILE", default=None,
        help="run once and write the bare run payload to FILE "
             "(captured on the pre-optimization tree)",
    )
    parser.add_argument(
        "--baseline-from", metavar="FILE", default=None,
        help="carry the baseline run forward from an existing "
             "BENCH_ingest.json (or bare run payload) while "
             "re-measuring the current tree",
    )
    parser.add_argument("--docs", type=int, default=N_DOCS)
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument(
        "--tier-100k", action="store_true",
        help="also re-measure the 100k-document ingestion-only tier "
             "through the process-sharded path (takes minutes); "
             "otherwise an existing tier is carried forward from "
             "--baseline-from",
    )
    parser.add_argument("--tier-docs", type=int, default=TIER_N_DOCS)
    parser.add_argument(
        "--tier-workers", type=int, default=TIER_WORKERS
    )
    args = parser.parse_args()

    if args.record_baseline:
        run = run_once(
            n_docs=args.docs, seed=args.seed, workers=args.workers
        )
        Path(args.record_baseline).write_text(
            json.dumps(run, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(json.dumps(run, indent=2, sort_keys=True))
        return

    baseline = None
    tier = None
    if args.baseline_from:
        recorded = json.loads(
            Path(args.baseline_from).read_text(encoding="utf-8")
        )
        baseline = recorded.get("baseline", recorded)
        tier = recorded.get("tier_100k")
    if args.tier_100k:
        tier = run_ingest_tier(
            n_docs=args.tier_docs, workers=args.tier_workers
        )
    payload = measure(
        n_docs=args.docs, seed=args.seed, workers=args.workers,
        baseline=baseline, tier=tier,
    )
    print(json.dumps(payload, indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
