"""Ablation — snippet-level vs document-level classification.

Section 3.1 motivates snippets: "a snippet conveys a precise piece of
information, in contrast with the entire document that contains the
snippet."  This bench classifies the gathered collection both ways —
each document as one unit vs its n=3 snippets (document flagged when
any snippet fires) — against the documents' ground-truth types.

Expected shape: snippet granularity localizes evidence, so document-
level recall/precision should not beat it meaningfully, and snippets
additionally give the analyst the *passage* (which document-level
classification cannot).
"""

from __future__ import annotations

import numpy as np

from repro.core.drivers import get_driver
from repro.core.snippets import Snippet
from repro.core.training import AnnotatedSnippet
from repro.corpus.templates import MERGERS_ACQUISITIONS
from repro.ml.metrics import precision_recall_f1


def bench_granularity(benchmark, medium_dataset):
    etap = medium_dataset.etap
    classifier = etap.classifiers[MERGERS_ACQUISITIONS]
    store = etap.store
    doc_ids = store.doc_ids()
    truth = np.array(
        [
            1 if store.get(d).metadata["doc_type"] == "ma_news" else 0
            for d in doc_ids
        ]
    )

    def run():
        # Document level: the whole text as one pseudo-snippet.
        doc_items = [
            AnnotatedSnippet(
                snippet=Snippet(
                    doc_id=doc_id,
                    index=0,
                    sentences=(store.get(doc_id).text,),
                ),
                annotated=etap.annotator.annotate(
                    store.get(doc_id).text
                ),
            )
            for doc_id in doc_ids
        ]
        doc_pred = classifier.predict(doc_items)

        # Snippet level: a document fires when any snippet fires.
        snip_pred = []
        for doc_id in doc_ids:
            snippets = etap.training.snippets_of_document(doc_id)
            items = etap.training.annotate_snippets(snippets)
            scores = classifier.score(items)
            snip_pred.append(int((scores >= 0.5).any()))
        return np.array(doc_pred), np.array(snip_pred)

    doc_pred, snip_pred = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    doc_prf = precision_recall_f1(truth, doc_pred)
    snip_prf = precision_recall_f1(truth, snip_pred)
    print(f"\n{'Granularity':16s} {'P':>6s} {'R':>6s} {'F1':>6s}")
    print(f"{'document':16s} {doc_prf.precision:6.3f} "
          f"{doc_prf.recall:6.3f} {doc_prf.f1:6.3f}")
    print(f"{'snippet (n=3)':16s} {snip_prf.precision:6.3f} "
          f"{snip_prf.recall:6.3f} {snip_prf.f1:6.3f}")

    # Snippet granularity never misses documents the whole-document
    # classifier catches (any-window-fires dominates on recall); the
    # precision cost at an identical 0.5 threshold is the price of
    # localization — the analyst gets the passage, not just the page.
    assert snip_prf.recall >= doc_prf.recall - 0.02
    assert snip_prf.f1 >= doc_prf.f1 - 0.2
    benchmark.extra_info["doc_f1"] = round(doc_prf.f1, 3)
    benchmark.extra_info["snippet_f1"] = round(snip_prf.f1, 3)
