"""Shared fixtures for the benchmark harness.

``paper_dataset`` is the full section 5.1 setup (3000-document web,
72/56/2265 test counts) used by the headline benches (Table 1, Figures
3-6).  ``medium_dataset`` is a lighter corpus used by the whole-pipeline
extraction benches (Figures 7-8, company MRR) and the ablations, where
the experiment is re-run across many configurations.
"""

from __future__ import annotations

import pytest

from repro.core.etap import EtapConfig
from repro.evaluation.datasets import DatasetSpec, build_evaluation_dataset


@pytest.fixture(scope="session")
def paper_dataset():
    dataset = build_evaluation_dataset(DatasetSpec())
    dataset.etap.train(pure_positive=dataset.pure_positive)
    return dataset


MEDIUM_SPEC = DatasetSpec(
    n_web_docs=1200,
    n_pure_positive=25,
    n_test_positive_ma=40,
    n_test_positive_cim=35,
    n_test_positive_rg=35,
    n_test_negative=900,
    config=EtapConfig(top_k_per_query=100, negative_sample_size=2500),
)


@pytest.fixture(scope="session")
def medium_dataset():
    dataset = build_evaluation_dataset(MEDIUM_SPEC)
    dataset.etap.train(pure_positive=dataset.pure_positive)
    return dataset
