"""Ablation — snippet window size n (section 3.1 fixes n = 3).

Sweeps the window over 1, 2, 3 and 5 sentences for the revenue-growth
driver.  Small windows risk cutting trigger context; large windows
dilute the trigger sentence with noise.  The paper's n=3 should be
competitive with the best setting.
"""

from __future__ import annotations

from repro.core.classifier import TriggerEventClassifier
from repro.core.drivers import get_driver
from repro.core.snippets import SnippetGenerator
from repro.core.training import TrainingDataGenerator
from repro.corpus.templates import REVENUE_GROWTH
from repro.evaluation.datasets import DatasetSpec
from repro.ml.metrics import precision_recall_f1

WINDOWS = (1, 2, 3, 5)


def bench_snippet_window_sweep(benchmark, medium_dataset):
    etap = medium_dataset.etap
    driver = get_driver(REVENUE_GROWTH)
    labels = medium_dataset.test_labels[REVENUE_GROWTH]

    def evaluate(window):
        training = TrainingDataGenerator(
            etap.store,
            etap.engine,
            annotator=etap.annotator,
            snippet_generator=SnippetGenerator(window=window),
        )
        noisy, _ = training.noisy_positive(
            driver, top_k_per_query=etap.config.top_k_per_query
        )
        negatives = training.negative_sample(
            etap.config.negative_sample_size
        )
        classifier = TriggerEventClassifier(REVENUE_GROWTH)
        classifier.fit(
            noisy, negatives,
            pure_positive=medium_dataset.pure_positive[REVENUE_GROWTH],
        )
        # The (n=3) test snippets are scored by each model; the sweep
        # varies only the training-side windowing.
        predictions = classifier.predict(medium_dataset.test_items)
        return precision_recall_f1(labels, predictions)

    def run():
        return {window: evaluate(window) for window in WINDOWS}

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(f"{'window n':>8s} {'P':>6s} {'R':>6s} {'F1':>6s}")
    for window, measured in results.items():
        print(f"{window:8d} {measured.precision:6.3f} "
              f"{measured.recall:6.3f} {measured.f1:6.3f}")

    f1 = {w: m.f1 for w, m in results.items()}
    # The paper's n=3 is within 0.1 F1 of the best window.
    assert f1[3] >= max(f1.values()) - 0.1
    benchmark.extra_info["f1_by_window"] = {
        str(w): round(v, 3) for w, v in f1.items()
    }
