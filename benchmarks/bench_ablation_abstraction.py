"""Ablation — feature abstraction on vs off (section 3.2 motivation).

The paper argues entity abstraction generalizes ("potentially any
ORGANIZATION could make a profit of CURRENCY") and shrinks the model.
This bench trains the M&A classifier twice — with the paper's policy and
with plain bag-of-words — and compares feature counts and test F1.

Expected shape: abstraction reduces the feature space substantially at
equal-or-better F1.
"""

from __future__ import annotations

import numpy as np

from repro.core.classifier import TriggerEventClassifier
from repro.core.drivers import get_driver
from repro.corpus.templates import MERGERS_ACQUISITIONS
from repro.features.abstraction import AbstractionPolicy
from repro.ml.metrics import precision_recall_f1


def _train_and_eval(dataset, policy):
    etap = dataset.etap
    driver = get_driver(MERGERS_ACQUISITIONS)
    noisy, _ = etap.training.noisy_positive(
        driver, top_k_per_query=etap.config.top_k_per_query
    )
    negatives = etap.training.negative_sample(
        etap.config.negative_sample_size
    )
    classifier = TriggerEventClassifier(
        MERGERS_ACQUISITIONS, policy=policy
    )
    classifier.fit(
        noisy, negatives,
        pure_positive=dataset.pure_positive[MERGERS_ACQUISITIONS],
    )
    predictions = classifier.predict(dataset.test_items)
    measured = precision_recall_f1(
        dataset.test_labels[MERGERS_ACQUISITIONS], predictions
    )
    return classifier.summary.n_features, measured


def bench_abstraction_ablation(benchmark, medium_dataset):
    def run():
        return {
            "paper (abstract entities)": _train_and_eval(
                medium_dataset, AbstractionPolicy.paper_default()
            ),
            "none (plain bag-of-words)": _train_and_eval(
                medium_dataset, AbstractionPolicy.none()
            ),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(f"{'Policy':28s} {'Features':>9s} {'P':>6s} {'R':>6s} "
          f"{'F1':>6s}")
    for name, (n_features, measured) in results.items():
        print(
            f"{name:28s} {n_features:9d} {measured.precision:6.3f} "
            f"{measured.recall:6.3f} {measured.f1:6.3f}"
        )

    abstracted_features, abstracted = results[
        "paper (abstract entities)"
    ]
    plain_features, plain = results["none (plain bag-of-words)"]
    # Abstraction's first promise: far fewer model parameters.
    assert abstracted_features < plain_features * 0.8
    # Its second promise: generalization does not cost accuracy.
    assert abstracted.f1 >= plain.f1 - 0.05
    benchmark.extra_info["feature_reduction"] = round(
        1 - abstracted_features / plain_features, 3
    )
