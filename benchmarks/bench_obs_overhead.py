"""Flight-recorder overhead bench: pipeline with recorder on vs. off.

The recorder's contract is "zero overhead when off": every instrumented
call site defaults to ``NULL_EVENT_LOG``, whose ``emit`` is a single
no-op method call.  This bench runs the same seeded demo pipeline with
the recorder off and on, records per-stage event counts and the wall
overhead of turning it on, and emits ``BENCH_obs.json`` so the claim is
tracked across PRs.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core.etap import Etap, EtapConfig
from repro.corpus.generator import CorpusConfig
from repro.corpus.web import build_web
from repro.obs.events import NULL_EVENT_LOG, EventLog

#: Committed artifact; regenerating it is the point of the bench.
DEFAULT_OUT = Path(__file__).resolve().parent / "BENCH_obs.json"

_CONFIG = dict(top_k_per_query=80, negative_sample_size=1500)


def _run_pipeline(n_docs: int, seed: int, event_log) -> float:
    """One full gather -> train -> extract -> rank run; returns wall s."""
    web = build_web(n_docs, CorpusConfig(seed=seed))
    start = time.perf_counter()
    etap = Etap.from_web(
        web, config=EtapConfig(**_CONFIG), event_log=event_log
    )
    etap.gather()
    etap.train()
    events = etap.extract_trigger_events()
    etap.company_report(events)
    return time.perf_counter() - start


def _null_emit_seconds(calls: int = 100_000) -> float:
    """Per-call cost of the recorder-off path (a no-op emit)."""
    start = time.perf_counter()
    for _ in range(calls):
        NULL_EVENT_LOG.emit("page_crawled", url="u", depth=0)
    return (time.perf_counter() - start) / calls


def measure(
    n_docs: int = 800,
    seed: int = 7,
    rounds: int = 3,
    out: str | Path | None = DEFAULT_OUT,
) -> dict:
    """Run the comparison and (optionally) write ``BENCH_obs.json``."""
    off_times = []
    on_times = []
    recorder = None
    for round_ in range(rounds):
        off_times.append(_run_pipeline(n_docs, seed, NULL_EVENT_LOG))
        recorder = EventLog()
        on_times.append(_run_pipeline(n_docs, seed, recorder))

    off_s = min(off_times)
    on_s = min(on_times)
    payload = {
        "bench": "recorder_overhead",
        "n_docs": n_docs,
        "seed": seed,
        "rounds": rounds,
        "recorder_off_seconds": round(off_s, 4),
        "recorder_on_seconds": round(on_s, 4),
        "overhead_ratio": round(on_s / off_s - 1.0, 4),
        "null_emit_seconds_per_call": _null_emit_seconds(),
        "events_emitted": recorder.total_emitted,
        "event_counts": recorder.counts(),
    }
    if out is not None:
        Path(out).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    return payload


def bench_recorder_overhead(benchmark):
    payload = benchmark.pedantic(
        measure, kwargs={"rounds": 1}, rounds=1, iterations=1
    )
    print(f"\nrecorder off: {payload['recorder_off_seconds']:.2f}s  "
          f"on: {payload['recorder_on_seconds']:.2f}s  "
          f"overhead: {payload['overhead_ratio'] * 100:+.1f}%")
    print(f"events emitted: {payload['events_emitted']}")
    for event_type, count in payload["event_counts"].items():
        print(f"  {event_type:20s} {count}")
    benchmark.extra_info.update(payload)
    # The recorder must stay cheap even when on; the off path is the
    # baseline itself (every call site defaults to the null log).
    assert payload["overhead_ratio"] < 0.5
    assert payload["null_emit_seconds_per_call"] < 5e-6


if __name__ == "__main__":
    print(json.dumps(measure(), indent=2, sort_keys=True))
