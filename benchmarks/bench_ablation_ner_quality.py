"""Ablation — NER quality (section 6).

"The overall result of ETAP is heavily dependent on the accuracy of the
named entity recognizer.  Wrong annotation of company and person names
leads to incorrect trigger events."

This bench sweeps the recognizer's gazetteer coverage (1.0 = perfect
dictionary, 0.4 = most names unknown) and measures the downstream M&A
F1.  Expected shape: F1 degrades monotonically-ish as coverage drops —
the paper's dependence, quantified.
"""

from __future__ import annotations

from repro.core.classifier import TriggerEventClassifier
from repro.core.drivers import get_driver
from repro.core.snippets import SnippetGenerator
from repro.core.training import AnnotatedSnippet, TrainingDataGenerator
from repro.corpus.templates import MERGERS_ACQUISITIONS
from repro.ml.metrics import precision_recall_f1
from repro.text.annotator import Annotator
from repro.text.ner import NerConfig

#: (gazetteer coverage, pattern back-off enabled).  Degrading coverage
#: alone barely matters for M&A — the legal-suffix pattern rescues
#: unknown companies, as a decent NER would — so the lower settings
#: also lose the pattern layer.
SWEEP = (
    (1.0, True), (0.9, True), (0.7, False), (0.4, False),
)


def bench_ner_quality_sweep(benchmark, medium_dataset):
    etap = medium_dataset.etap
    driver = get_driver(MERGERS_ACQUISITIONS)
    labels = medium_dataset.test_labels[MERGERS_ACQUISITIONS]

    def evaluate(coverage, patterns):
        annotator = Annotator(NerConfig(
            gazetteer_coverage=coverage, pattern_backoff=patterns,
        ))
        training = TrainingDataGenerator(
            etap.store,
            etap.engine,
            annotator=annotator,
            snippet_generator=SnippetGenerator(
                window=etap.config.snippet_window
            ),
        )
        noisy, _ = training.noisy_positive(
            driver, top_k_per_query=etap.config.top_k_per_query
        )
        negatives = training.negative_sample(
            etap.config.negative_sample_size
        )
        # Test snippets must be re-annotated with the degraded NER too:
        # in production both sides see the same annotator.
        test_items = [
            AnnotatedSnippet(
                snippet=item.snippet,
                annotated=annotator.annotate(item.snippet.text),
            )
            for item in medium_dataset.test_items
        ]
        pure = [
            AnnotatedSnippet(
                snippet=item.snippet,
                annotated=annotator.annotate(item.snippet.text),
            )
            for item in medium_dataset.pure_positive[
                MERGERS_ACQUISITIONS
            ]
        ]
        classifier = TriggerEventClassifier(MERGERS_ACQUISITIONS)
        classifier.fit(noisy, negatives, pure_positive=pure)
        predictions = classifier.predict(test_items)
        # Company attribution: a trigger event without its companies is
        # useless as a lead.  Count ORG entities on the test positives.
        orgs_found = [
            sum(1 for e in item.annotated.entities if e.label == "ORG")
            for item, label in zip(test_items, labels)
            if label == 1
        ]
        return (
            precision_recall_f1(labels, predictions),
            len(noisy),
            sum(orgs_found) / max(len(orgs_found), 1),
        )

    def run():
        return {
            setting: evaluate(*setting) for setting in SWEEP
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(f"{'coverage':>8s} {'patterns':>9s} {'noisy+':>7s} "
          f"{'P':>6s} {'R':>6s} {'F1':>6s} {'orgs/pos':>9s}")
    for setting, (measured, n_noisy, orgs) in results.items():
        coverage, patterns = setting
        print(f"{coverage:8.1f} {str(patterns):>9s} {n_noisy:7d} "
              f"{measured.precision:6.3f} {measured.recall:6.3f} "
              f"{measured.f1:6.3f} {orgs:9.2f}")

    best = results[(1.0, True)]
    worst = results[(0.4, False)]
    # Section 6's dependence, measured where it actually bites:
    # (a) the automatically generated training set collapses — at 0.4
    #     coverage without patterns it is a fraction of the full one;
    assert worst[1] < best[1] * 0.5
    # (b) company attribution degrades: far fewer ORG mentions are
    #     recognized on the very snippets that are trigger events, so
    #     leads lose their companies ("wrong annotation of company and
    #     person names leads to incorrect trigger events").
    assert worst[2] < best[2] * 0.7
    # Snippet-level F1 itself is NOT monotone in NER quality — a
    # stricter filter can yield cleaner training data — which is why
    # the assertion above targets attribution, not F1.
    benchmark.extra_info["f1_by_setting"] = {
        str(s): round(m.f1, 3) for s, (m, _, _) in results.items()
    }
    benchmark.extra_info["orgs_per_positive"] = {
        str(s): round(o, 2) for s, (_, _, o) in results.items()
    }
