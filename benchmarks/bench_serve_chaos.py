"""Chaos acceptance bench: SLOs under replica kill/restore churn.

Stands up the replicated :class:`~repro.serve.portal.AlertPortal`
(N replicas per shard, hedged router, lossy
:class:`~repro.robustness.faults.FaultProfile` on every replica
request), lets a :class:`~repro.serve.replication.ChaosMonkey` kill and
restore one replica of every group on a fixed tick schedule, and
drives the zipf :class:`~repro.serve.loadgen.LoadGenerator` through
the whole storm.  The oracle is the committed SLO config: the
:class:`~repro.obs.slo.SloEngine` evaluates the ``serve`` specs from
``configs/slos.yaml`` over the portal's simulated-tick telemetry.

The bench runs the *same* workload twice —

* the **hedged** leg (the shipped configuration) must come out with
  every serve SLO burning below 1.0 on both windows: hedging turns a
  down replica's ``fail_after`` timeout into a ``hedge_after`` detour,
  so the p99 stays inside the latency budget while replicas die;
* the **unhedged** leg must breach ``serve-latency-p99``: without the
  hedge, every query that picks a dead primary eats the full timeout
  until the breaker opens, and the p99 blows through the target.

The second leg is what keeps the first honest — if the chaos schedule
ever stops hurting, the unhedged leg stops breaching and the suite
fails, so the hedged leg's pass cannot go vacuous.

Time is simulated (sha256 service-time draws on a shared
:class:`~repro.obs.clock.FakeClock`), so the *workload*, the chaos
schedule, and each replica's per-query behaviour are deterministic;
thread interleaving can wobble aggregate counts by a few queries,
which is why the committed artifact is asserted on robust aggregates
(breach verdicts, kill/restore counts, status totals), not exact
latencies.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.etap import Etap, EtapConfig
from repro.corpus.generator import CorpusConfig
from repro.corpus.web import build_web
from repro.obs import FakeClock
from repro.obs.slo import SloEngine, load_slo_config
from repro.obs.timeseries import Telemetry
from repro.robustness.faults import get_profile
from repro.serve import (
    AdmissionController,
    AlertPortal,
    ChaosMonkey,
    LoadGenerator,
)

from bench_serve import serving_queries

#: Committed artifact; regenerating it is the point of the bench.
DEFAULT_OUT = Path(__file__).resolve().parent / "BENCH_serve_chaos.json"

#: The committed SLO config the acceptance verdicts come from.
SLO_CONFIG = Path(__file__).resolve().parent.parent / "configs" / "slos.yaml"


def chaos_queries(n_variants: int = 60) -> list[str]:
    """The serve mix, widened so the cluster actually gets exercised.

    ``bench_serve``'s ~25 queries under zipf hit the cache >95% of the
    time, and cache hits never touch a replica — or advance the
    simulated clock that drives the chaos schedule.  Suffix variants
    keep the same zipf shape while making most requests miss, so the
    load reaches the router and the monkey gets time to do its work.
    """
    base = serving_queries()
    return [
        f"{query} v{variant}"
        for variant in range(n_variants)
        for query in base
    ]


def serve_slos() -> list:
    """The ``serve`` component's specs from the committed config."""
    return [
        spec
        for spec in load_slo_config(SLO_CONFIG)
        if spec.component == "serve"
    ]


def run_leg(
    etap,
    hedging: bool,
    n_clients: int = 6,
    n_queries: int = 1200,
    n_shards: int = 2,
    n_replicas: int = 4,
    seed: int = 7,
    profile: str = "lossy",
    hedge_after: float = 0.05,
    fail_after: float = 0.8,
    chaos_period: float = 1.0,
    chaos_down_for: float = 0.9,
    failure_threshold: int = 5,
    cool_off: float = 2.0,
) -> dict:
    """One full chaos run (hedged or not) over a gathered etap."""
    clock = FakeClock()
    telemetry = Telemetry(clock=clock)
    admission = AdmissionController(
        rate=1e9,
        burst=float(max(1, n_queries)),
        max_pending=max(64, n_clients * 4),
        clock=clock,
    )
    with AlertPortal.from_etap(
        etap,
        n_shards=n_shards,
        admission=admission,
        clock=clock,
        telemetry=telemetry,
        n_replicas=n_replicas,
        hedge_after=hedge_after,
        fail_after=fail_after,
        hedging=hedging,
        replica_fault_profile=get_profile(profile),
        fault_seed=seed,
        # Threshold 5: the lossy profile's 15% dead draws must not
        # cascade breakers open (cool-off dwarfs the simulated run);
        # only a genuinely down replica repeats failures that fast.
        replica_failure_threshold=failure_threshold,
        replica_cool_off=cool_off,
    ) as portal:
        monkey = ChaosMonkey(
            portal.replicas,
            period=chaos_period,
            down_for=chaos_down_for,
        )
        portal.router.chaos = monkey
        generator = LoadGenerator(
            portal,
            chaos_queries(),
            n_clients=n_clients,
            n_queries=n_queries,
            seed=seed,
        )
        report = generator.run()
        monkey.finish()
        engine = SloEngine(serve_slos(), telemetry, clock=clock)
        statuses = engine.evaluate()
        replica_stats = portal.replicas.stats()
        degraded = telemetry.window(
            "serve.degraded", 3600.0, now=clock.now()
        ).count

    sketch = telemetry.sketch("serve.latency")
    return {
        "hedging": hedging,
        "statuses": dict(sorted(report.statuses.items())),
        "cache_hit_rate": round(report.cache_hit_rate, 4),
        "ticks_elapsed": round(clock.now(), 4),
        "sim_p50_s": round(sketch.quantile(0.5), 6),
        "sim_p99_s": round(sketch.quantile(0.99), 6),
        # The monkey kills/restores one replica of *every* group per
        # cycle, so these counts hold per group as well as in total.
        "kills": monkey.kills,
        "restores": monkey.restores,
        "degraded_reads": degraded,
        "replica_groups": replica_stats["groups"],
        "slos": {
            status.name: {
                "burn_fast": round(status.burn_fast, 4),
                "burn_slow": round(status.burn_slow, 4),
                "value_fast": round(status.value_fast, 6),
                "breaching": status.breaching,
            }
            for status in statuses
        },
        "breaching": sorted(
            status.name for status in statuses if status.breaching
        ),
    }


def measure(
    n_docs: int = 400,
    n_clients: int = 6,
    n_queries: int = 1200,
    n_shards: int = 2,
    n_replicas: int = 4,
    seed: int = 7,
    profile: str = "lossy",
    out: str | Path | None = DEFAULT_OUT,
) -> dict:
    """Run both legs and (optionally) write ``BENCH_serve_chaos.json``."""
    web = build_web(n_docs, CorpusConfig(seed=seed))
    etap = Etap.from_web(web, config=EtapConfig())
    etap.gather()
    legs = {
        name: run_leg(
            etap,
            hedging=hedging,
            n_clients=n_clients,
            n_queries=n_queries,
            n_shards=n_shards,
            n_replicas=n_replicas,
            seed=seed,
            profile=profile,
        )
        for name, hedging in (("hedged", True), ("unhedged", False))
    }
    payload = {
        "bench": "serve_chaos",
        "n_docs": n_docs,
        "n_clients": n_clients,
        "n_queries": n_queries,
        "n_shards": n_shards,
        "n_replicas": n_replicas,
        "seed": seed,
        "profile": profile,
        "legs": legs,
    }
    if out is not None:
        Path(out).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    return payload


#: Schema floor for BENCH_serve_chaos.json; the smoke test enforces it.
REQUIRED_KEYS = frozenset(
    {
        "bench", "n_docs", "n_clients", "n_queries", "n_shards",
        "n_replicas", "seed", "profile", "legs",
    }
)

#: Every leg must carry these.
LEG_KEYS = frozenset(
    {
        "hedging", "statuses", "cache_hit_rate", "ticks_elapsed",
        "sim_p50_s", "sim_p99_s", "kills", "restores",
        "degraded_reads", "replica_groups", "slos", "breaching",
    }
)


def validate_payload(payload: dict) -> list[str]:
    """Schema- and acceptance-check a chaos payload; returns errors.

    Beyond shape, this encodes the acceptance criteria themselves:
    the hedged leg must hold every serve SLO under burn 1.0 on both
    windows *while* at least one replica per group was killed and
    restored, and the unhedged control must breach the latency SLO —
    otherwise the chaos schedule is not actually hurting and the
    hedged pass proves nothing.
    """
    errors = [
        f"missing key {key!r}"
        for key in sorted(REQUIRED_KEYS - set(payload))
    ]
    if errors:
        return errors
    if payload["bench"] != "serve_chaos":
        errors.append(
            f"bench is {payload['bench']!r}, not 'serve_chaos'"
        )
    legs = payload["legs"]
    if set(legs) != {"hedged", "unhedged"}:
        return errors + ["legs must be exactly {hedged, unhedged}"]
    for name, leg in legs.items():
        for key in sorted(LEG_KEYS - set(leg)):
            errors.append(f"leg {name!r} missing key {key!r}")
    if errors:
        return errors
    for name, leg in legs.items():
        if sum(leg["statuses"].values()) != payload["n_queries"]:
            errors.append(
                f"leg {name!r}: statuses must account for every query"
            )
        if leg["kills"] < 1 or leg["restores"] < 1:
            errors.append(
                f"leg {name!r}: chaos never killed+restored a replica"
            )
        if leg["kills"] != leg["restores"]:
            errors.append(
                f"leg {name!r}: every kill must be restored"
            )
        for group in leg["replica_groups"]:
            if group["up"] != group["n_replicas"]:
                errors.append(
                    f"leg {name!r}: shard {group['shard']} ended with "
                    f"{group['up']}/{group['n_replicas']} replicas up"
                )
    hedged, unhedged = legs["hedged"], legs["unhedged"]
    if hedged["hedging"] is not True or unhedged["hedging"] is not False:
        errors.append("legs mislabelled: hedging flags do not match")
    for slo_name, verdict in hedged["slos"].items():
        if verdict["burn_fast"] >= 1.0 or verdict["burn_slow"] >= 1.0:
            errors.append(
                f"hedged leg burns {slo_name} at "
                f"fast={verdict['burn_fast']} slow={verdict['burn_slow']}"
                " (must stay < 1.0 on both windows)"
            )
    if hedged["breaching"]:
        errors.append(
            f"hedged leg breaches {hedged['breaching']}; the whole "
            "point is that hedging keeps the SLOs green under chaos"
        )
    if "serve-latency-p99" not in unhedged["breaching"]:
        errors.append(
            "unhedged control does not breach serve-latency-p99 — "
            "the chaos schedule is too gentle; the hedged pass is "
            "vacuous"
        )
    return errors


def bench_serve_chaos(benchmark):
    payload = benchmark.pedantic(measure, rounds=1, iterations=1)
    for name in ("hedged", "unhedged"):
        leg = payload["legs"][name]
        print(
            f"\n{name}: sim p99 {leg['sim_p99_s'] * 1000:.1f}ms  "
            f"kills {leg['kills']}  "
            f"degraded {leg['degraded_reads']}  "
            f"breaching {leg['breaching'] or 'none'}"
        )
    benchmark.extra_info.update(payload)
    assert not validate_payload(payload)


if __name__ == "__main__":
    print(json.dumps(measure(), indent=2, sort_keys=True))
