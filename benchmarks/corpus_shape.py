"""Shared shape assertions for the Figure 3/4 benches."""

from __future__ import annotations

from repro.evaluation.experiments import RigFigureResult

#: Entity categories asserted to prefer PA: the paper's named examples
#: ("entities such as PLC and ORG should be abstracted") plus PRSN,
#: which is stable at full corpus scale.  CURRENCY is printed but not
#: asserted — deal amounts vs stock quotes differ lexically in the
#: synthetic corpus, leaving it on the PA/IV boundary.
ENTITIES_EXPECT_PA = ("ORG", "PLC", "PRSN")

#: Open-class POS categories the paper says to keep as words.
POS_EXPECT_IV = ("vb", "nn", "np")


def assert_rig_shape(result: RigFigureResult) -> None:
    """The qualitative claims of section 3.2.2 hold."""
    for category in ENTITIES_EXPECT_PA:
        comparison = result.comparison(category)
        assert comparison.prefer_abstraction, (
            f"{result.driver_id}: expected {category} to prefer "
            f"abstraction (PA={comparison.rig_pa:.4f}, "
            f"IV={comparison.rig_iv:.4f})"
        )
    for category in POS_EXPECT_IV:
        comparison = result.comparison(category)
        assert not comparison.prefer_abstraction, (
            f"{result.driver_id}: expected {category} to keep words "
            f"(PA={comparison.rig_pa:.4f}, IV={comparison.rig_iv:.4f})"
        )
