"""Figure 3 — PA vs IV relative information gain, mergers & acquisitions.

The paper's reading of the figure (section 3.2.2):

1. verbs, adverbs, nouns and adjectives should NOT be abstracted
   (RIG of the instance-valued representation is much higher);
2. entities such as PLC and ORG SHOULD be abstracted (presence-absence
   carries at least as much information as the instance values).

The bench times the full RIG analysis over the positive/negative classes
and prints the log-scale bar chart analogous to the paper's figure.
"""

from __future__ import annotations

from corpus_shape import assert_rig_shape

from repro.evaluation.experiments import run_figure3


def bench_figure3_rig(benchmark, paper_dataset):
    result = benchmark.pedantic(
        run_figure3, kwargs={"dataset": paper_dataset},
        rounds=3, iterations=1,
    )
    print("\n" + result.render())
    assert_rig_shape(result)
