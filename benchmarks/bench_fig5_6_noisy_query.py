"""Figures 5 & 6 — what the smart query ``"new ceo"`` returns.

Figure 5: the hit pages contain genuine trigger snippets.
Figure 6: the same pages also contain noise sentences that are not
trigger events, which is why the step-2 snippet filters exist.

The bench times the noisy-positive generation path (query -> snippets ->
annotate -> filter) and prints examples of both populations, plus the
resulting filter rejection rate.
"""

from __future__ import annotations

from repro.core.drivers import get_driver
from repro.corpus.templates import CHANGE_IN_MANAGEMENT
from repro.evaluation.experiments import run_figure5_6


def bench_figure5_6(benchmark, paper_dataset):
    result = benchmark.pedantic(
        run_figure5_6, kwargs={"dataset": paper_dataset},
        rounds=3, iterations=1,
    )
    print("\n" + result.render(limit=4))

    # Figure 5: trigger snippets found; Figure 6: noise coexists.
    assert len(result.kept_snippets) >= 5
    assert len(result.rejected_snippets) >= 5

    # The generation report for the driver quantifies the same effect.
    etap = paper_dataset.etap
    driver = get_driver(CHANGE_IN_MANAGEMENT)
    _, report = etap.training.noisy_positive(
        driver, top_k_per_query=etap.config.top_k_per_query
    )
    print(
        f"\nnoisy-positive generation: {report.snippets_kept} kept of "
        f"{report.snippets_seen} seen "
        f"(rejection rate {report.filter_rejection_rate:.2f})"
    )
    assert 0.05 <= report.filter_rejection_rate <= 0.95
    benchmark.extra_info["rejection_rate"] = round(
        report.filter_rejection_rate, 3
    )
