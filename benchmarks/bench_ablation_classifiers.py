"""Ablation — classifier family (section 3.3.2).

"Alternatively, any one of the proposed methods of learning classifiers
in the presence of noise can be used."  This bench swaps the inner model
of the iterative denoiser: multinomial NB (the paper's choice),
Bernoulli NB, and the linear SVM, plus the Lee-Liu weighted logistic
regression trained directly on positive + unlabeled data.
"""

from __future__ import annotations

import numpy as np

from repro.core.classifier import TriggerEventClassifier
from repro.core.drivers import get_driver
from repro.corpus.templates import MERGERS_ACQUISITIONS
from repro.ml.logreg import fit_pu_weighted
from repro.ml.metrics import precision_recall_f1
from repro.ml.ensemble import VotingEnsemble
from repro.ml.naive_bayes import BernoulliNaiveBayes, MultinomialNaiveBayes
from repro.ml.svm import LinearSvm

FACTORIES = {
    "multinomial NB (paper)": MultinomialNaiveBayes,
    "bernoulli NB": BernoulliNaiveBayes,
    "linear SVM (Pegasos)": lambda: LinearSvm(epochs=3),
    "voting ensemble": VotingEnsemble,
}


def bench_classifier_families(benchmark, medium_dataset):
    etap = medium_dataset.etap
    driver = get_driver(MERGERS_ACQUISITIONS)
    noisy, _ = etap.training.noisy_positive(
        driver, top_k_per_query=etap.config.top_k_per_query
    )
    negatives = etap.training.negative_sample(
        etap.config.negative_sample_size
    )
    pure = medium_dataset.pure_positive[MERGERS_ACQUISITIONS]
    labels = medium_dataset.test_labels[MERGERS_ACQUISITIONS]

    def run():
        results = {}
        for name, factory in FACTORIES.items():
            classifier = TriggerEventClassifier(
                MERGERS_ACQUISITIONS, classifier_factory=factory
            )
            classifier.fit(noisy, negatives, pure_positive=pure)
            predictions = classifier.predict(medium_dataset.test_items)
            results[name] = precision_recall_f1(labels, predictions)

        # Lee & Liu weighted LR (PU learning, no denoising loop).
        reference = TriggerEventClassifier(MERGERS_ACQUISITIONS)
        reference.fit(noisy, negatives, pure_positive=pure)
        X_pos = reference.vectorizer.transform(
            [reference.features_of(item) for item in list(noisy) + list(pure)]
        )
        X_unlabeled = reference.vectorizer.transform(
            [reference.features_of(item) for item in negatives]
        )
        model = fit_pu_weighted(X_pos, X_unlabeled, unlabeled_weight=0.7)
        X_test = reference.vectorizer.transform(
            [reference.features_of(item)
             for item in medium_dataset.test_items]
        )
        results["weighted LR (Lee-Liu PU)"] = precision_recall_f1(
            labels, model.predict(X_test)
        )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(f"{'Classifier':26s} {'P':>6s} {'R':>6s} {'F1':>6s}")
    for name, measured in results.items():
        print(f"{name:26s} {measured.precision:6.3f} "
              f"{measured.recall:6.3f} {measured.f1:6.3f}")

    # Every noise-tolerant family must beat the all-positive baseline...
    baseline_p = float(np.mean(labels))
    baseline_f1 = 2 * baseline_p / (1 + baseline_p)
    for name, measured in results.items():
        assert measured.f1 > baseline_f1, name
    # ...and the paper's NB choice must be competitive: within 0.2 F1
    # of the best (the SVM-bearing ensemble leads on this corpus, but
    # NB's gap stays modest — the paper's "any noise-tolerant learner
    # works" claim, not "NB is optimal").
    best = max(m.f1 for m in results.values())
    assert results["multinomial NB (paper)"].f1 >= best - 0.2
