"""Ablation — unigram vs unigram+bigram features.

Bigrams capture multiword signals ("definitive merger", "stepped down")
at the cost of a much larger model.  The paper uses unigrams (plus
entity placeholders); this bench quantifies what bigrams would add.
"""

from __future__ import annotations

from repro.core.classifier import TriggerEventClassifier
from repro.core.drivers import get_driver
from repro.corpus.templates import CHANGE_IN_MANAGEMENT
from repro.features.vectorizer import VectorizerConfig
from repro.ml.metrics import precision_recall_f1

SETTINGS = {
    "unigrams (paper)": (1, 1),
    "unigrams+bigrams": (1, 2),
}


def bench_ngram_ablation(benchmark, medium_dataset):
    etap = medium_dataset.etap
    driver = get_driver(CHANGE_IN_MANAGEMENT)
    noisy, _ = etap.training.noisy_positive(
        driver, top_k_per_query=etap.config.top_k_per_query
    )
    negatives = etap.training.negative_sample(
        etap.config.negative_sample_size
    )
    pure = medium_dataset.pure_positive[CHANGE_IN_MANAGEMENT]
    labels = medium_dataset.test_labels[CHANGE_IN_MANAGEMENT]

    def run():
        results = {}
        for name, ngram_range in SETTINGS.items():
            classifier = TriggerEventClassifier(
                CHANGE_IN_MANAGEMENT,
                vectorizer_config=VectorizerConfig(
                    min_df=2, ngram_range=ngram_range
                ),
            )
            classifier.fit(noisy, negatives, pure_positive=pure)
            predictions = classifier.predict(medium_dataset.test_items)
            results[name] = (
                classifier.summary.n_features,
                precision_recall_f1(labels, predictions),
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(f"{'Features':20s} {'count':>7s} {'P':>6s} {'R':>6s} "
          f"{'F1':>6s}")
    for name, (n_features, measured) in results.items():
        print(f"{name:20s} {n_features:7d} {measured.precision:6.3f} "
              f"{measured.recall:6.3f} {measured.f1:6.3f}")

    uni_features, uni = results["unigrams (paper)"]
    bi_features, bi = results["unigrams+bigrams"]
    assert bi_features > uni_features  # bigrams inflate the model
    # Neither representation collapses: both stay useful.
    assert min(uni.f1, bi.f1) >= 0.5
    benchmark.extra_info["unigram_f1"] = round(uni.f1, 3)
    benchmark.extra_info["bigram_f1"] = round(bi.f1, 3)
