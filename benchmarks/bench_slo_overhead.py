"""SLO telemetry overhead bench: recording cost and sketch memory.

The windowed-telemetry contract mirrors the flight recorder's: when
telemetry is off (:data:`NULL_TELEMETRY`, the wiring default) a record
is one no-op method call; when on, a record is a couple of dict lookups
and float adds — cheap enough for per-request call sites.  The second
claim is memory: a :class:`QuantileSketch` must stay constant-size no
matter how many observations arrive, where the raw list it replaces
grows without bound.

Emits ``BENCH_slo.json`` with the measured per-call costs, the sketch
footprint at 1k vs 1M observations, and the raw-list footprint the
bounded :class:`~repro.obs.metrics.Histogram` avoids, so both claims
are tracked across PRs.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.obs.metrics import Histogram
from repro.obs.slo import SloEngine, default_slos
from repro.obs.timeseries import (
    NULL_TELEMETRY,
    QuantileSketch,
    Telemetry,
)

#: Committed artifact; regenerating it is the point of the bench.
DEFAULT_OUT = Path(__file__).resolve().parent / "BENCH_slo.json"

#: Declared per-call floors (seconds) — validate_payload enforces them.
NULL_RECORD_FLOOR = 5e-6
REAL_RECORD_FLOOR = 5e-5
OBSERVE_FLOOR = 2e-4

#: A sketch may not grow measurably between 1k and 1M observations.
SKETCH_GROWTH_LIMIT = 1.01


def _per_call(func, calls: int) -> float:
    start = time.perf_counter()
    for _ in range(calls):
        func()
    return (time.perf_counter() - start) / calls


def _deep_bytes(obj, seen: set[int] | None = None) -> int:
    """Recursive ``sys.getsizeof`` over dicts/lists/tuples/slots."""
    if seen is None:
        seen = set()
    if id(obj) in seen:
        return 0
    seen.add(id(obj))
    size = sys.getsizeof(obj)
    if isinstance(obj, dict):
        for key, value in obj.items():
            size += _deep_bytes(key, seen) + _deep_bytes(value, seen)
    elif isinstance(obj, (list, tuple, set, frozenset)):
        for item in obj:
            size += _deep_bytes(item, seen)
    for slot in getattr(type(obj), "__slots__", ()):
        if hasattr(obj, slot):
            size += _deep_bytes(getattr(obj, slot), seen)
    if hasattr(obj, "__dict__"):
        size += _deep_bytes(vars(obj), seen)
    return size


def _sketch_bytes(n_observations: int) -> int:
    sketch = QuantileSketch()
    for i in range(n_observations):
        sketch.observe(float(i % 997) / 1000.0)
    return _deep_bytes(sketch)


def _raw_list_bytes(n_observations: int) -> int:
    """What the pre-spill ``Histogram.values`` idiom would hold."""
    values = [float(i % 997) / 1000.0 for i in range(n_observations)]
    return _deep_bytes(values)


def measure(
    n_observations: int = 1_000_000,
    timing_calls: int = 200_000,
    out: str | Path | None = DEFAULT_OUT,
) -> dict:
    """Run the comparison and (optionally) write ``BENCH_slo.json``."""
    telemetry = Telemetry()
    null_record = _per_call(
        lambda: NULL_TELEMETRY.record("fetch.outcomes"), timing_calls
    )
    real_record = _per_call(
        lambda: telemetry.record("fetch.outcomes"), timing_calls
    )
    observe_calls = max(1, timing_calls // 10)
    real_observe = _per_call(
        lambda: telemetry.observe("serve.latency", 0.01), observe_calls
    )

    # SLO evaluation cost over the populated hub (per render frame).
    engine = SloEngine(default_slos(), telemetry)
    evaluate_seconds = _per_call(lambda: engine.evaluate(), 200)

    small_n = min(1_000, n_observations)
    sketch_small = _sketch_bytes(small_n)
    sketch_large = _sketch_bytes(n_observations)
    raw_large = _raw_list_bytes(n_observations)

    histogram = Histogram("bench")
    for i in range(n_observations):
        histogram.observe(float(i % 997))
    histogram_bytes = _deep_bytes(histogram)

    payload = {
        "bench": "slo_overhead",
        "n_observations": n_observations,
        "timing_calls": timing_calls,
        "null_record_seconds_per_call": null_record,
        "real_record_seconds_per_call": real_record,
        "real_observe_seconds_per_call": real_observe,
        "slo_evaluate_seconds_per_call": evaluate_seconds,
        "sketch_bytes_small": sketch_small,
        "sketch_bytes_large": sketch_large,
        "sketch_growth_ratio": round(sketch_large / sketch_small, 4),
        "raw_list_bytes_large": raw_large,
        "sketch_vs_raw_ratio": round(sketch_large / raw_large, 6),
        "histogram_bytes_large": histogram_bytes,
        "floors": {
            "null_record_seconds_per_call": NULL_RECORD_FLOOR,
            "real_record_seconds_per_call": REAL_RECORD_FLOOR,
            "real_observe_seconds_per_call": OBSERVE_FLOOR,
            "sketch_growth_limit": SKETCH_GROWTH_LIMIT,
        },
    }
    if out is not None:
        Path(out).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    return payload


def validate_payload(payload: dict) -> list[str]:
    """Floor checks shared by the bench, smoke tests, and CI."""
    errors = []
    if payload["null_record_seconds_per_call"] >= NULL_RECORD_FLOOR:
        errors.append(
            "telemetry-off record is not a no-op: "
            f"{payload['null_record_seconds_per_call']:.2e}s/call"
        )
    if payload["real_record_seconds_per_call"] >= REAL_RECORD_FLOOR:
        errors.append(
            "telemetry-on record too slow: "
            f"{payload['real_record_seconds_per_call']:.2e}s/call"
        )
    if payload["real_observe_seconds_per_call"] >= OBSERVE_FLOOR:
        errors.append(
            "telemetry-on observe too slow: "
            f"{payload['real_observe_seconds_per_call']:.2e}s/call"
        )
    if payload["sketch_growth_ratio"] > SKETCH_GROWTH_LIMIT:
        errors.append(
            "sketch is not constant-size: grew "
            f"{payload['sketch_growth_ratio']:.3f}x from "
            f"{payload['n_observations']} observations"
        )
    if payload["sketch_vs_raw_ratio"] > 0.05:
        errors.append(
            "sketch footprint is not small next to the raw list: "
            f"ratio {payload['sketch_vs_raw_ratio']:.4f}"
        )
    if (
        payload["histogram_bytes_large"]
        > 4 * payload["sketch_bytes_large"]
    ):
        errors.append(
            "bounded Histogram leaks memory past its spill threshold"
        )
    return errors


def bench_slo_recording_overhead(benchmark):
    payload = benchmark.pedantic(
        measure, kwargs={"out": None}, rounds=1, iterations=1
    )
    print(
        f"\nrecord: null {payload['null_record_seconds_per_call']:.2e}s"
        f"  real {payload['real_record_seconds_per_call']:.2e}s"
        f"  observe {payload['real_observe_seconds_per_call']:.2e}s"
    )
    print(
        f"sketch: {payload['sketch_bytes_large']} B at "
        f"{payload['n_observations']} obs "
        f"(raw list {payload['raw_list_bytes_large']} B, "
        f"ratio {payload['sketch_vs_raw_ratio']:.5f})"
    )
    benchmark.extra_info.update(payload)
    assert validate_payload(payload) == []


if __name__ == "__main__":
    print(json.dumps(measure(), indent=2, sort_keys=True))
