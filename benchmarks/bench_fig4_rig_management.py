"""Figure 4 — PA vs IV relative information gain, change in management.

Same analysis as Figure 3 over the change-in-management classes; the
paper's conclusions (entities -> PA, open-class POS -> IV) must hold.
"""

from __future__ import annotations

from corpus_shape import assert_rig_shape

from repro.evaluation.experiments import run_figure4


def bench_figure4_rig(benchmark, paper_dataset):
    result = benchmark.pedantic(
        run_figure4, kwargs={"dataset": paper_dataset},
        rounds=3, iterations=1,
    )
    print("\n" + result.render())
    assert_rig_shape(result)
