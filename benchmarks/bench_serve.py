"""Serving-layer bench: latency, QPS, cache hit rate, shard balance.

Gathers a seeded corpus, stands up the :class:`~repro.serve.portal.
AlertPortal` and drives it with the deterministic closed-loop
:class:`~repro.serve.loadgen.LoadGenerator` (zipf query popularity
over the drivers' smart queries).  Emits ``BENCH_serve.json`` so the
serving numbers are tracked across PRs: the *workload* (client mix and
per-client query sequence, status counts, shard occupancy) is a pure
function of the seed and identical on every run; wall latencies vary
with the host, and the cache hit rate can wobble by a few lookups when
identical in-flight queries coalesce instead of hitting the cache.

Admission is provisioned generously here — overload behaviour is the
serve test suite's job; the bench measures the happy-path ceiling.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.drivers import builtin_drivers
from repro.core.etap import Etap, EtapConfig
from repro.corpus.generator import CorpusConfig
from repro.corpus.web import build_web
from repro.serve import AdmissionController, AlertPortal, LoadGenerator

#: Committed artifact; regenerating it is the point of the bench.
DEFAULT_OUT = Path(__file__).resolve().parent / "BENCH_serve.json"


def serving_queries() -> list[str]:
    """The analyst query mix: every smart query plus loose keywords."""
    queries = [
        query
        for driver in builtin_drivers()
        for query in driver.smart_queries
    ]
    queries += [
        "acquisition",
        "revenue growth",
        "new ceo appointment",
        "quarterly earnings",
        "merger agreement",
    ]
    return queries


def measure(
    n_docs: int = 600,
    n_clients: int = 8,
    n_queries: int = 400,
    n_shards: int = 4,
    seed: int = 7,
    out: str | Path | None = DEFAULT_OUT,
) -> dict:
    """Run the load and (optionally) write ``BENCH_serve.json``."""
    web = build_web(n_docs, CorpusConfig(seed=seed))
    etap = Etap.from_web(web, config=EtapConfig())
    etap.gather()
    admission = AdmissionController(
        rate=1e9, burst=float(max(1, n_queries)),
        max_pending=max(64, n_clients * 4),
    )
    with AlertPortal.from_etap(
        etap, n_shards=n_shards, admission=admission
    ) as portal:
        generator = LoadGenerator(
            portal,
            serving_queries(),
            n_clients=n_clients,
            n_queries=n_queries,
            seed=seed,
        )
        report = generator.run()
        stats = portal.stats()
    payload = {
        "bench": "serve",
        "n_docs": n_docs,
        "n_shards": n_shards,
        "cache_evictions": stats["cache_evictions"],
        **report.to_dict(),
    }
    if out is not None:
        Path(out).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    return payload


#: Schema floor for BENCH_serve.json; the tier-1 smoke test enforces it.
REQUIRED_KEYS = frozenset(
    {
        "bench", "n_docs", "n_shards", "n_clients", "n_queries",
        "seed", "wall_seconds", "qps", "p50_ms", "p99_ms", "statuses",
        "cache_hit_rate", "shard_docs", "shard_balance", "generation",
    }
)


def validate_payload(payload: dict) -> list[str]:
    """Schema-check a BENCH_serve payload; returns human errors."""
    errors = [
        f"missing key {key!r}"
        for key in sorted(REQUIRED_KEYS - set(payload))
    ]
    if errors:
        return errors
    if payload["bench"] != "serve":
        errors.append(f"bench is {payload['bench']!r}, not 'serve'")
    for key in ("qps", "p50_ms", "p99_ms", "wall_seconds"):
        if not isinstance(payload[key], (int, float)) or payload[key] < 0:
            errors.append(f"{key} must be a non-negative number")
    if not 0.0 <= payload["cache_hit_rate"] <= 1.0:
        errors.append("cache_hit_rate must be in [0, 1]")
    if payload["p99_ms"] < payload["p50_ms"]:
        errors.append("p99_ms must be >= p50_ms")
    if not isinstance(payload["statuses"], dict):
        errors.append("statuses must be a status -> count mapping")
    elif sum(payload["statuses"].values()) != payload["n_queries"]:
        errors.append("statuses must account for every query")
    if (
        not isinstance(payload["shard_docs"], list)
        or len(payload["shard_docs"]) != payload["n_shards"]
    ):
        errors.append("shard_docs must list one count per shard")
    return errors


def bench_serve_portal(benchmark):
    payload = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    print(f"\nserve: {payload['qps']:.0f} QPS  "
          f"p50 {payload['p50_ms']:.3f}ms  "
          f"p99 {payload['p99_ms']:.3f}ms  "
          f"hit rate {payload['cache_hit_rate']:.2f}  "
          f"balance {payload['shard_balance']:.2f}")
    benchmark.extra_info.update(payload)
    assert not validate_payload(payload)
    assert payload["statuses"].get("ok", 0) == payload["n_queries"]
    # The zipf mix must make the cache earn its keep.
    assert payload["cache_hit_rate"] > 0.3


if __name__ == "__main__":
    print(json.dumps(measure(), indent=2, sort_keys=True))
