"""Figure 7 — ETAP output: change-in-management trigger events ranked
by classification score.

The bench times the full extraction + ranking sweep over the gathered
collection and prints the top of the ranked list, as in the paper's
screenshot.  Asserted shape: scores descend, ranks are 1..n, and most
ranked trigger events trace back to genuine cim_news documents.
"""

from __future__ import annotations

from repro.corpus.templates import CHANGE_IN_MANAGEMENT
from repro.evaluation.experiments import run_figure7


def bench_figure7_ranking(benchmark, medium_dataset):
    result = benchmark.pedantic(
        run_figure7, kwargs={"dataset": medium_dataset},
        rounds=1, iterations=1,
    )
    print("\n" + result.render(limit=10))

    events = result.events
    assert events
    assert [e.rank for e in events] == list(range(1, len(events) + 1))
    scores = [e.score for e in events]
    assert scores == sorted(scores, reverse=True)

    by_id = {
        d.doc_id: d.metadata["doc_type"]
        for d in medium_dataset.etap.store
    }
    genuine = sum(
        by_id[e.item.snippet.doc_id] == "cim_news" for e in events
    )
    precision = genuine / len(events)
    print(f"\nextraction precision vs ground truth: {precision:.3f}")
    assert precision >= 0.5
    benchmark.extra_info["n_events"] = len(events)
    benchmark.extra_info["precision"] = round(precision, 3)
