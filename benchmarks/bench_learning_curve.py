"""Extension bench — learning curve over noisy-training-data volume.

The paper gathers the top 200 documents per smart query; this bench
sweeps that budget (10 -> 100 documents per query) and measures the
change-in-management F1, showing how much automatically generated
training data the method actually needs.
"""

from __future__ import annotations

from repro.core.classifier import TriggerEventClassifier
from repro.core.drivers import get_driver
from repro.corpus.templates import CHANGE_IN_MANAGEMENT
from repro.ml.metrics import precision_recall_f1

# Phrase queries saturate quickly on the medium corpus (every matching
# document is already in the top handful), so the sweep starts at a
# single document per query to expose the low-data regime.
BUDGETS = (1, 2, 5, 20)


def bench_learning_curve(benchmark, medium_dataset):
    etap = medium_dataset.etap
    driver = get_driver(CHANGE_IN_MANAGEMENT)
    negatives = etap.training.negative_sample(
        etap.config.negative_sample_size
    )
    pure = medium_dataset.pure_positive[CHANGE_IN_MANAGEMENT]
    labels = medium_dataset.test_labels[CHANGE_IN_MANAGEMENT]

    def run():
        results = {}
        for budget in BUDGETS:
            noisy, report = etap.training.noisy_positive(
                driver, top_k_per_query=budget
            )
            classifier = TriggerEventClassifier(CHANGE_IN_MANAGEMENT)
            classifier.fit(noisy, negatives, pure_positive=pure)
            predictions = classifier.predict(medium_dataset.test_items)
            results[budget] = (
                report.snippets_kept,
                precision_recall_f1(labels, predictions),
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(f"{'docs/query':>10s} {'noisy+':>7s} {'P':>6s} {'R':>6s} "
          f"{'F1':>6s}")
    for budget, (kept, measured) in results.items():
        print(f"{budget:10d} {kept:7d} {measured.precision:6.3f} "
              f"{measured.recall:6.3f} {measured.f1:6.3f}")

    f1 = {b: m.f1 for b, (_, m) in results.items()}
    # More automatically generated training data never hurts much:
    # the largest budget is within 0.05 F1 of the best observed.  (On
    # the templated corpus the curve saturates almost immediately —
    # filtered smart-query snippets are highly redundant, so even a
    # single document per query carries most of the signal.)
    assert f1[max(BUDGETS)] >= max(f1.values()) - 0.05
    # Training-set size grows with budget.
    assert results[max(BUDGETS)][0] >= results[min(BUDGETS)][0]
    benchmark.extra_info["f1_by_budget"] = {
        str(b): round(v, 3) for b, v in f1.items()
    }