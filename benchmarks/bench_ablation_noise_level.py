"""Ablation — smart queries vs naive queries (section 3.3.1).

The paper motivates smart queries with the observation that the naive
query "mergers and acquisitions" returns "many documents that do not
contain instances of mergers and acquisitions".  This bench builds the
noisy-positive set both ways and compares (a) the purity of the noisy
set against ground truth and (b) the downstream F1.
"""

from __future__ import annotations

import dataclasses

from repro.core.classifier import TriggerEventClassifier
from repro.core.drivers import get_driver
from repro.corpus.templates import MERGERS_ACQUISITIONS
from repro.ml.metrics import precision_recall_f1

NAIVE_QUERIES = (
    "mergers and acquisitions",
    "company acquisition news",
    "business deals",
    "corporate merger",
    "companies combining",
)


def _purity(etap, items):
    by_id = {d.doc_id: d.metadata["doc_type"] for d in etap.store}
    if not items:
        return 0.0
    genuine = sum(
        by_id[item.snippet.doc_id] == "ma_news" for item in items
    )
    return genuine / len(items)


def bench_query_noise_level(benchmark, medium_dataset):
    etap = medium_dataset.etap
    smart_driver = get_driver(MERGERS_ACQUISITIONS)
    naive_driver = dataclasses.replace(
        smart_driver, smart_queries=NAIVE_QUERIES
    )
    negatives = etap.training.negative_sample(
        etap.config.negative_sample_size
    )
    pure = medium_dataset.pure_positive[MERGERS_ACQUISITIONS]
    labels = medium_dataset.test_labels[MERGERS_ACQUISITIONS]

    def evaluate(driver):
        noisy, report = etap.training.noisy_positive(
            driver, top_k_per_query=etap.config.top_k_per_query
        )
        classifier = TriggerEventClassifier(MERGERS_ACQUISITIONS)
        classifier.fit(noisy, negatives, pure_positive=pure)
        predictions = classifier.predict(medium_dataset.test_items)
        return {
            "purity": _purity(etap, noisy),
            "kept": report.snippets_kept,
            "prf": precision_recall_f1(labels, predictions),
        }

    def run():
        return {
            "smart (phrase queries)": evaluate(smart_driver),
            "naive (keyword queries)": evaluate(naive_driver),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(f"{'Query style':26s} {'kept':>6s} {'purity':>7s} "
          f"{'P':>6s} {'R':>6s} {'F1':>6s}")
    for name, r in results.items():
        prf = r["prf"]
        print(f"{name:26s} {r['kept']:6d} {r['purity']:7.3f} "
              f"{prf.precision:6.3f} {prf.recall:6.3f} {prf.f1:6.3f}")

    smart = results["smart (phrase queries)"]
    naive = results["naive (keyword queries)"]
    # The paper's claim: smart queries yield a cleaner noisy-positive
    # set than naive keyword queries.
    assert smart["purity"] >= naive["purity"]
    benchmark.extra_info["smart_purity"] = round(smart["purity"], 3)
    benchmark.extra_info["naive_purity"] = round(naive["purity"], 3)
