"""Ablation — denoising iteration sweep (section 3.3.2).

Table 1 reports results "after two iterations" of the iterative noise
reduction.  This bench sweeps max_iter over 1..4 for the change-in-
management driver and prints F1 at each setting; the paper's choice of 2
should sit at or near the plateau.
"""

from __future__ import annotations

from repro.core.classifier import TriggerEventClassifier
from repro.core.drivers import get_driver
from repro.corpus.templates import CHANGE_IN_MANAGEMENT
from repro.ml.metrics import precision_recall_f1

SWEEP = (1, 2, 3, 4)


def bench_iteration_sweep(benchmark, medium_dataset):
    etap = medium_dataset.etap
    driver = get_driver(CHANGE_IN_MANAGEMENT)
    noisy, _ = etap.training.noisy_positive(
        driver, top_k_per_query=etap.config.top_k_per_query
    )
    negatives = etap.training.negative_sample(
        etap.config.negative_sample_size
    )
    pure = medium_dataset.pure_positive[CHANGE_IN_MANAGEMENT]

    def run():
        results = {}
        for max_iter in SWEEP:
            classifier = TriggerEventClassifier(
                CHANGE_IN_MANAGEMENT, max_denoise_iter=max_iter
            )
            classifier.fit(noisy, negatives, pure_positive=pure)
            predictions = classifier.predict(medium_dataset.test_items)
            measured = precision_recall_f1(
                medium_dataset.test_labels[CHANGE_IN_MANAGEMENT],
                predictions,
            )
            results[max_iter] = (
                measured, classifier.summary.n_noisy_kept
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(f"{'max_iter':>8s} {'kept':>6s} {'P':>6s} {'R':>6s} {'F1':>6s}")
    for max_iter, (measured, kept) in results.items():
        print(f"{max_iter:8d} {kept:6d} {measured.precision:6.3f} "
              f"{measured.recall:6.3f} {measured.f1:6.3f}")

    f1 = {k: m.f1 for k, (m, _) in results.items()}
    # The paper's operating point (2 iterations) is near the plateau:
    # within 0.05 F1 of the best setting in the sweep.
    assert f1[2] >= max(f1.values()) - 0.05
    benchmark.extra_info["f1_by_iter"] = {
        str(k): round(v, 3) for k, v in f1.items()
    }
