"""Streaming ETAP bench: sustained throughput, freshness, recovery.

Continuous ingestion (docs/STREAMING.md) is only worth its durability
machinery if (a) the stream keeps up with the corpus, (b) alerts come
out while they are fresh — section 3 of the paper: a sales lead decays
with every cycle it sits unminted — and (c) a crashed process is back
and caught up quickly.  This bench measures all three on a fixed-seed
workload:

* **throughput** — streamed documents per second through the full
  per-cycle path (watermark routing, incremental index extend, online
  alert minting, WAL append, checkpoint write);
* **freshness** — for every minted alert, how many cycles after its
  document arrived it was minted; p50/p99 reported in cycles.  The
  per-batch minting design targets p99 == 0 (alerts mint in the
  arrival cycle);
* **recovery** — the same workload is killed mid-stream via the WAL's
  deterministic ``kill_after``, then resumed: ``resume_seconds`` is
  checkpoint restore + WAL tail replay, ``catchup_seconds`` the
  remaining cycles, and the resumed run must converge to the
  uninterrupted run's exact alert set (``converged``).

``BENCH_stream.json`` is the committed artifact; the tier-1 smoke test
enforces its schema and floors.  Regenerate after an intentional
change::

    PYTHONPATH=src python benchmarks/bench_stream.py
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from pathlib import Path

from repro.core.etap import Etap, EtapConfig
from repro.core.persistence import (
    CheckpointStore,
    SimulatedCrash,
    WriteAheadLog,
)
from repro.corpus.generator import CorpusConfig
from repro.corpus.web import build_web
from repro.stream import EvolvingWebStream, StreamProcessor

#: Committed artifact; regenerating it is the point of the bench.
DEFAULT_OUT = Path(__file__).resolve().parent / "BENCH_stream.json"

#: The reference workload (part of the artifact's identity).
N_DOCS = 400
SEED = 7
CYCLES = 5
DOCS_PER_CYCLE = 25
TOP_K_PER_QUERY = 60
NEGATIVE_SAMPLE_SIZE = 1200
ALERT_THRESHOLD = 0.7


def _build_base(n_docs: int, seed: int):
    """The deterministic base pipeline every stream process rebuilds."""
    web = build_web(n_docs, CorpusConfig(seed=seed))
    etap = Etap.from_web(
        web,
        config=EtapConfig(
            top_k_per_query=TOP_K_PER_QUERY,
            negative_sample_size=NEGATIVE_SAMPLE_SIZE,
        ),
    )
    etap.gather()
    return web, etap


def _source(web, seed: int, docs_per_cycle: int) -> EvolvingWebStream:
    return EvolvingWebStream(
        web,
        config=CorpusConfig(seed=seed + 1),
        docs_per_cycle=docs_per_cycle,
    )


def _percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return float(ordered[index])


def run_once(
    n_docs: int = N_DOCS,
    seed: int = SEED,
    cycles: int = CYCLES,
    docs_per_cycle: int = DOCS_PER_CYCLE,
) -> dict:
    """One fixed-seed streaming pass; returns the run payload."""
    with tempfile.TemporaryDirectory(prefix="bench-stream-") as tmp:
        root = Path(tmp)
        t0 = time.perf_counter()
        web, etap = _build_base(n_docs, seed)
        classifiers = etap.train()
        t1 = time.perf_counter()

        source = _source(web, seed, docs_per_cycle)
        processor = StreamProcessor(
            etap,
            wal=WriteAheadLog(root / "wal.jsonl"),
            checkpoints=CheckpointStore(root / "checkpoints"),
            threshold=ALERT_THRESHOLD,
        )
        arrival_cycle: dict[str, int] = {}
        cycle_seconds: list[float] = []
        streamed = 0
        for _ in range(cycles):
            batch = source.next_batch()
            for document in batch.documents:
                arrival_cycle.setdefault(document.doc_id, batch.cycle)
            c0 = time.perf_counter()
            report = processor.process_batch(batch)
            cycle_seconds.append(time.perf_counter() - c0)
            streamed += report.n_ingested
        stream_seconds = sum(cycle_seconds)

        freshness = [
            float(alert.cycle - arrival_cycle[alert.doc_id])
            for alert in processor.alerts
            if alert.doc_id in arrival_cycle
        ]
        n_wal_records = processor.wal.last_seq + 1
        alert_ids = sorted(a.alert_id for a in processor.alerts)
        processor.close()

    return {
        "n_docs": n_docs,
        "seed": seed,
        "cycles": cycles,
        "docs_per_cycle": docs_per_cycle,
        "base_build_seconds": round(t1 - t0, 4),
        "n_classifiers": len(classifiers),
        "streamed_docs": streamed,
        "n_alerts": len(alert_ids),
        "n_wal_records": n_wal_records,
        "stream_seconds": round(stream_seconds, 4),
        "cycle_seconds_max": round(max(cycle_seconds), 4),
        "docs_per_sec": round(streamed / stream_seconds, 2)
        if stream_seconds
        else 0.0,
        "freshness_cycles_p50": _percentile(freshness, 0.50),
        "freshness_cycles_p99": _percentile(freshness, 0.99),
        "alert_ids": alert_ids,
    }


def measure_recovery(
    reference: dict,
    n_docs: int = N_DOCS,
    seed: int = SEED,
    cycles: int = CYCLES,
    docs_per_cycle: int = DOCS_PER_CYCLE,
) -> dict:
    """Crash the reference workload mid-stream, resume, time the pieces.

    ``kill_after`` is half the uninterrupted run's WAL records, so the
    crash always lands in the middle of the stream regardless of
    workload size.
    """
    kill_after = max(1, reference["n_wal_records"] // 2)
    with tempfile.TemporaryDirectory(prefix="bench-recovery-") as tmp:
        root = Path(tmp)
        web, etap = _build_base(n_docs, seed)
        etap.train()
        source = _source(web, seed, docs_per_cycle)
        processor = StreamProcessor(
            etap,
            wal=WriteAheadLog(root / "wal.jsonl", kill_after=kill_after),
            checkpoints=CheckpointStore(root / "checkpoints"),
            threshold=ALERT_THRESHOLD,
        )
        crashed_at_cycle = None
        try:
            for _ in range(cycles):
                processor.process_batch(source.next_batch())
        except SimulatedCrash:
            crashed_at_cycle = processor.cycle
        assert crashed_at_cycle is not None, (
            "kill_after never fired; recovery run is vacuous"
        )
        processor.wal.close()

        # The second process: deterministic base rebuild, then the
        # recovery path proper (checkpoint restore + WAL tail replay),
        # then catch-up over the remaining cycles.
        web2, etap2 = _build_base(n_docs, seed)
        etap2.train()
        source2 = _source(web2, seed, docs_per_cycle)
        t0 = time.perf_counter()
        resumed, info = StreamProcessor.resume(
            etap2,
            WriteAheadLog(root / "wal.jsonl"),
            CheckpointStore(root / "checkpoints"),
            threshold=ALERT_THRESHOLD,
        )
        source2.seek(info.cycle)
        t1 = time.perf_counter()
        while source2.cycle < cycles:
            resumed.process_batch(source2.next_batch())
        t2 = time.perf_counter()

        alert_ids = sorted(a.alert_id for a in resumed.alerts)
        payload = {
            "kill_after": kill_after,
            "crashed_at_cycle": crashed_at_cycle,
            "resumed_from_cycle": info.cycle,
            "wal_records_replayed": info.wal_records_replayed,
            "recovered_alerts": len(info.recovered_alert_keys),
            "resume_seconds": round(t1 - t0, 4),
            "catchup_seconds": round(t2 - t1, 4),
            "recovery_seconds": round(t2 - t0, 4),
            "converged": alert_ids == reference["alert_ids"],
        }
        resumed.close()
    return payload


def measure(
    n_docs: int = N_DOCS,
    seed: int = SEED,
    cycles: int = CYCLES,
    docs_per_cycle: int = DOCS_PER_CYCLE,
    out: str | Path | None = DEFAULT_OUT,
) -> dict:
    """Run the stream + recovery workloads and assemble the artifact."""
    current = run_once(
        n_docs=n_docs, seed=seed, cycles=cycles,
        docs_per_cycle=docs_per_cycle,
    )
    recovery = measure_recovery(
        current, n_docs=n_docs, seed=seed, cycles=cycles,
        docs_per_cycle=docs_per_cycle,
    )
    # alert_ids are run_once plumbing for the convergence check, not
    # part of the committed artifact (they'd churn on corpus tweaks).
    throughput = {
        k: v for k, v in current.items()
        if k not in ("alert_ids",)
    }
    payload = {
        "bench": "stream",
        "throughput": throughput,
        "recovery": recovery,
    }
    if out is not None:
        Path(out).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    return payload


#: Schema floor for BENCH_stream.json; the tier-1 smoke test enforces it.
REQUIRED_THROUGHPUT_KEYS = frozenset(
    {
        "n_docs", "seed", "cycles", "docs_per_cycle",
        "base_build_seconds", "n_classifiers", "streamed_docs",
        "n_alerts", "n_wal_records", "stream_seconds",
        "cycle_seconds_max", "docs_per_sec",
        "freshness_cycles_p50", "freshness_cycles_p99",
    }
)
REQUIRED_RECOVERY_KEYS = frozenset(
    {
        "kill_after", "crashed_at_cycle", "resumed_from_cycle",
        "wal_records_replayed", "recovered_alerts",
        "resume_seconds", "catchup_seconds", "recovery_seconds",
        "converged",
    }
)
REQUIRED_KEYS = frozenset({"bench", "throughput", "recovery"})


def validate_payload(payload: dict) -> list[str]:
    """Schema-check a BENCH_stream payload; returns human errors."""
    errors = [
        f"missing key {key!r}"
        for key in sorted(REQUIRED_KEYS - set(payload))
    ]
    if errors:
        return errors
    if payload["bench"] != "stream":
        errors.append(f"bench is {payload['bench']!r}, not 'stream'")
    throughput = payload["throughput"]
    errors.extend(
        f"throughput: missing key {key!r}"
        for key in sorted(REQUIRED_THROUGHPUT_KEYS - set(throughput))
    )
    recovery = payload["recovery"]
    errors.extend(
        f"recovery: missing key {key!r}"
        for key in sorted(REQUIRED_RECOVERY_KEYS - set(recovery))
    )
    if errors:
        return errors
    if throughput["streamed_docs"] <= 0:
        errors.append("throughput.streamed_docs must be positive")
    if throughput["docs_per_sec"] <= 0:
        errors.append("throughput.docs_per_sec must be positive")
    if throughput["n_alerts"] <= 0:
        errors.append("throughput found no alerts (vacuous run)")
    if throughput["n_wal_records"] <= 0:
        errors.append("throughput.n_wal_records must be positive")
    p50 = throughput["freshness_cycles_p50"]
    p99 = throughput["freshness_cycles_p99"]
    if not 0 <= p50 <= p99:
        errors.append("freshness percentiles must satisfy 0 <= p50 <= p99")
    for key in ("resume_seconds", "catchup_seconds", "recovery_seconds"):
        if not isinstance(recovery[key], (int, float)) or recovery[key] < 0:
            errors.append(f"recovery.{key} must be non-negative")
    if recovery["kill_after"] < 1:
        errors.append("recovery.kill_after must be >= 1")
    if recovery["converged"] is not True:
        errors.append(
            "recovery did not converge to the uninterrupted alert set"
        )
    return errors


def bench_stream_pipeline(benchmark):
    payload = benchmark.pedantic(measure, rounds=1, iterations=1)
    throughput = payload["throughput"]
    recovery = payload["recovery"]
    print(f"\nstream: {throughput['docs_per_sec']:.1f} docs/sec  "
          f"freshness p99 {throughput['freshness_cycles_p99']:.0f} "
          f"cycles  recovery {recovery['recovery_seconds']:.2f}s "
          f"(resume {recovery['resume_seconds']:.2f}s)  "
          f"converged={recovery['converged']}")
    benchmark.extra_info.update(payload)
    assert not validate_payload(payload)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--docs", type=int, default=N_DOCS)
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument("--cycles", type=int, default=CYCLES)
    parser.add_argument(
        "--docs-per-cycle", type=int, default=DOCS_PER_CYCLE
    )
    parser.add_argument(
        "--out", default=str(DEFAULT_OUT),
        help="artifact path (use '-' to skip writing)",
    )
    args = parser.parse_args()
    out = None if args.out == "-" else args.out
    payload = measure(
        n_docs=args.docs, seed=args.seed, cycles=args.cycles,
        docs_per_cycle=args.docs_per_cycle, out=out,
    )
    print(json.dumps(payload, indent=2, sort_keys=True))
    errors = validate_payload(payload)
    if errors:
        raise SystemExit("; ".join(errors))


if __name__ == "__main__":
    main()
