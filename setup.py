"""Setup shim for environments whose setuptools cannot build PEP 660
editable wheels (no `wheel` package available offline).  `pip install -e .`
falls back to this via `python setup.py develop`."""

from setuptools import setup

setup()
