"""Defining a new sales driver without hand-labeled data.

Section 3.3.1: "one may want to introduce new categories of sales
drivers quite frequently and hand-labeling to produce training data for
new categories can be very tedious" — which is exactly what the smart-
query + filter recipe solves.  This script defines a brand-new driver,
*executive departures* (a CRM team may treat departures differently
from appointments), from nothing but five phrase queries and a snippet
filter, and trains it with zero manual labels.

Run:  python examples/custom_sales_driver.py
"""

from __future__ import annotations

from repro import Etap, EtapConfig, build_web
from repro.core.drivers import (
    SalesDriver,
    all_of,
    any_of,
    has,
    has_keyword,
)

EXECUTIVE_DEPARTURES = SalesDriver(
    driver_id="executive_departures",
    name="Executive departures",
    description=(
        "Resignations and retirements of senior executives; the "
        "successor often reviews supplier contracts."
    ),
    smart_queries=(
        '"stepped down"',
        '"announced his resignation"',
        '"announced her resignation"',
        '"search for a successor"',
        '"retired after"',
    ),
    snippet_filter=all_of(
        has("DESIG"),
        any_of(has("PRSN"), has("ORG")),
        has_keyword(
            "resign", "stepped down", "step down", "retire",
            "departed", "ousted", "successor",
        ),
    ),
)


def main() -> None:
    web = build_web(1500)
    etap = Etap.from_web(
        web,
        drivers=[EXECUTIVE_DEPARTURES],
        config=EtapConfig(top_k_per_query=100, negative_sample_size=2500),
    )
    etap.gather()

    summaries = etap.train()
    summary = summaries["executive_departures"]
    report = etap.noisy_reports["executive_departures"]
    print("Training data generated automatically:")
    print(f"  documents hit by smart queries : {report.documents_hit}")
    print(f"  snippets passing the filter    : {report.snippets_kept}")
    print(f"  after iterative denoising      : {summary.n_noisy_kept}")
    print(f"  model features                 : {summary.n_features}")

    events = etap.extract_trigger_events()["executive_departures"]
    print(f"\nTop executive-departure trigger events "
          f"({len(events)} total):")
    for event in events[:6]:
        print(f"  [{event.score:.3f}] {event.text[:95]}")

    departure_words = ("resign", "stepped down", "retire", "successor",
                       "ousted", "departed")
    on_topic = sum(
        any(word in event.text.lower() for word in departure_words)
        for event in events
    )
    print(f"\n{on_topic}/{len(events)} extracted events mention a "
          f"departure term.")


if __name__ == "__main__":
    main()
