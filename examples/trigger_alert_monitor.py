"""The Electronic Trigger Alert Program doing what its name says.

Trains ETAP once, then watches an evolving web: each simulated day new
pages are published, the service re-crawls, and only *new* trigger
events raise alerts — the workflow a sales team would wire to email or
a CRM.

Run:  python examples/trigger_alert_monitor.py
"""

from __future__ import annotations

from collections import Counter

from repro import Etap, EtapConfig, build_web
from repro.core.alerts import AlertService
from repro.corpus.evolve import WebEvolver
from repro.corpus.generator import CorpusConfig


def main() -> None:
    print("Bootstrapping: crawl + train on the initial web ...")
    web = build_web(1000)
    etap = Etap.from_web(
        web,
        config=EtapConfig(top_k_per_query=80, negative_sample_size=2000),
    )
    etap.gather()
    etap.train()

    service = AlertService(etap, threshold=0.9)
    evolver = WebEvolver(web, CorpusConfig(seed=20060403))

    for day in range(1, 6):
        published = evolver.advance(30)
        report = service.poll()
        fresh_triggers = sum(
            d.doc_type in ("ma_news", "cim_news", "rg_news")
            for d in published
        )
        print(f"\n--- day {day}: {report.new_documents} new pages "
              f"({fresh_triggers} trigger articles) -> "
              f"{len(report.alerts)} alerts")
        by_driver = Counter(alert.driver_id for alert in report.alerts)
        for driver_id, count in by_driver.most_common():
            print(f"    {driver_id}: {count}")
        for alert in report.alerts[:3]:
            companies = ", ".join(alert.event.companies) or "?"
            print(f"    [{alert.score:.2f}] ({companies}) "
                  f"{alert.text[:80]}")

    quiet = service.poll()
    print(f"\nNo new pages published since the last poll -> "
          f"{len(quiet.alerts)} alerts (deduplicated as expected).")


if __name__ == "__main__":
    main()
