"""Merger watch: a B2B sales team monitoring M&A activity.

Scenario (the paper's introduction): mergers & acquisitions drive IT
purchases — merged companies integrate their IT systems.  This script
runs only the M&A driver, applies the recency adjustment from section
5.2 so historical deal mentions don't pollute the lead list, and prints
a per-company digest a sales representative could act on.

Run:  python examples/merger_watch.py
"""

from __future__ import annotations

from collections import defaultdict

from repro import Etap, EtapConfig, build_web
from repro.core.drivers import get_driver
from repro.core.ranking import RecencyAdjustedRanker
from repro.corpus.templates import MERGERS_ACQUISITIONS

REFERENCE_YEAR = 2006  # "today" for recency scoring


def main() -> None:
    web = build_web(1500)
    etap = Etap.from_web(
        web,
        drivers=[get_driver(MERGERS_ACQUISITIONS)],
        config=EtapConfig(top_k_per_query=100, negative_sample_size=2500),
    )
    etap.gather()
    etap.train()

    events = etap.extract_trigger_events()[MERGERS_ACQUISITIONS]
    print(f"{len(events)} raw M&A trigger events extracted.\n")

    adjusted = RecencyAdjustedRanker(REFERENCE_YEAR).rank(events)

    demoted = sum(
        1
        for before, after in zip(
            sorted(events, key=lambda e: e.snippet_id),
            sorted(adjusted, key=lambda e: e.snippet_id),
        )
        if after.score < before.score * 0.9
    )
    print(f"Recency adjustment demoted {demoted} stale mentions "
          f"(historical deals, retrospectives).\n")

    print("Freshest M&A trigger events:")
    for event in adjusted[:5]:
        companies = ", ".join(event.companies) or "(no ORG found)"
        print(f"  [{event.score:.3f}] {companies}")
        print(f"      {event.text[:100]}")

    by_company: dict[str, list] = defaultdict(list)
    for event in adjusted:
        for company in event.companies:
            by_company[company].append(event)

    print("\nPer-company digest (top 5 by event count):")
    busiest = sorted(
        by_company.items(), key=lambda kv: -len(kv[1])
    )[:5]
    for company, company_events in busiest:
        best = max(company_events, key=lambda e: e.score)
        print(f"  {company}: {len(company_events)} events, "
              f"best score {best.score:.3f}")


if __name__ == "__main__":
    main()
