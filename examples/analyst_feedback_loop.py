"""Analyst validation closing the loop (section 2 + section 5.2).

ETAP presents ranked trigger events "to domain specialists for the
final validation."  This script plays the specialist: it reviews the
change-in-management alert queue, rejects the biography-style false
positives and confirms the genuine appointments, retrains on that
feedback, and shows the alert queue getting cleaner.  It finishes with
the company co-mention graph built from the validated events.

Run:  python examples/analyst_feedback_loop.py
"""

from __future__ import annotations

from repro import Etap, EtapConfig, build_web
from repro.core.feedback import FeedbackLoop
from repro.core.graph import (
    build_company_graph,
    central_companies,
    deal_pairs,
)
from repro.core.temporal import resolve
from repro.corpus.templates import CHANGE_IN_MANAGEMENT


def analyst_says_valid(text: str) -> bool:
    """Our stand-in specialist: rejects clearly past-anchored snippets."""
    reading = resolve(text, reference_year=2006)
    return not (
        reading.resolved_year is not None
        and reading.resolved_year < 2004
        and not reading.has_current_marker
    )


def fp_rate(events, top: int = 50) -> float:
    """Stale-biography rate in the part of the queue analysts read."""
    head = events[:top]
    if not head:
        return 0.0
    bad = sum(not analyst_says_valid(e.text) for e in head)
    return bad / len(head)


def main() -> None:
    web = build_web(1500)
    etap = Etap.from_web(
        web,
        config=EtapConfig(top_k_per_query=100, negative_sample_size=2500),
    )
    etap.gather()
    etap.train()

    before = etap.extract_trigger_events()
    cim_before = before[CHANGE_IN_MANAGEMENT]
    print(f"alert queue before feedback: {len(cim_before)} events; "
          f"{fp_rate(cim_before):.0%} of the top 50 look like stale "
          f"biographies")

    loop = FeedbackLoop(etap)
    reviewed = cim_before[:150]  # one afternoon of analyst review
    for event in reviewed:
        loop.record(event, valid=analyst_says_valid(event.text))
    report = loop.retrain(CHANGE_IN_MANAGEMENT)
    print(f"analyst confirmed {report.n_confirmed}, rejected "
          f"{report.n_rejected}; retrained.")

    after = etap.extract_trigger_events()
    cim_after = after[CHANGE_IN_MANAGEMENT]
    print(f"alert queue after feedback:  {len(cim_after)} events; "
          f"{fp_rate(cim_after):.0%} of the top 50 look like stale "
          f"biographies\n")

    graph = build_company_graph(after)
    print("companies at the center of current activity "
          "(weighted degree):")
    for row in central_companies(graph, top=5):
        print(f"  {row.company:24s} strength={row.centrality:7.2f} "
              f"events={row.event_count} partners={row.degree}")

    print("\ncurrent M&A deal sheet (top co-mention pairs):")
    for a, b, weight in deal_pairs(graph)[:5]:
        print(f"  {a:22s} -- {b:22s} ({weight:.2f})")


if __name__ == "__main__":
    main()
