"""Industry-specific lead lists (section 2's IT vs steel example).

"Mergers & acquisitions could be a sales driver for the IT industry but
may not be a sales driver for the steel industry."  Both teams run the
same ETAP extraction once; each industry profile then weighs the ranked
trigger events by its own drivers, producing different lead lists from
identical data.

Run:  python examples/industry_lead_lists.py
"""

from __future__ import annotations

from repro import Etap, EtapConfig, build_web
from repro.core.industry import it_industry, steel_industry


def main() -> None:
    web = build_web(1200)
    etap = Etap.from_web(
        web,
        config=EtapConfig(top_k_per_query=80, negative_sample_size=2000),
    )
    etap.gather()
    etap.train()
    events = etap.extract_trigger_events()
    total = sum(len(v) for v in events.values())
    print(f"{total} trigger events extracted once, shared by both "
          f"industry teams.\n")

    for profile in (it_industry(), steel_industry()):
        print(f"=== {profile.name} lead list "
              f"(drivers: {', '.join(profile.driver_ids)}) ===")
        for position, lead in enumerate(
            profile.lead_list(events)[:6], start=1
        ):
            print(f"  {position}. "
                  f"{etap.normalizer.display_name(lead.company):26s}"
                  f" MRR={lead.mrr:.3f} "
                  f"({lead.n_trigger_events} events)")
        print()

    it_leads = {l.company for l in it_industry().lead_list(events)[:10]}
    steel_leads = {
        l.company for l in steel_industry().lead_list(events)[:10]
    }
    print(f"Top-10 overlap between the two industries: "
          f"{len(it_leads & steel_leads)}/10 — same web, different "
          f"drivers, different prospects.")


if __name__ == "__main__":
    main()
