"""Revenue-growth screening with semantic orientation (Figure 8).

Section 4: for the revenue-growth driver ETAP ranks trigger events by
the semantic orientation of their phrases — 'sharp decline' and 'record
profits' are both strong sales signals; a bare 'profit' is weak.  This
script reproduces that ranking with the hand-built lexicon, then shows
the Turney-style PMI-IR alternative: inducing phrase orientations from
the corpus itself using only seed words.

Run:  python examples/revenue_growth_screening.py
"""

from __future__ import annotations

from repro import Etap, EtapConfig, build_web
from repro.core.drivers import get_driver
from repro.core.lexicon import induce_lexicon, revenue_growth_lexicon
from repro.core.ranking import SemanticOrientationRanker
from repro.corpus.templates import REVENUE_GROWTH


def main() -> None:
    web = build_web(1500)
    etap = Etap.from_web(
        web,
        drivers=[get_driver(REVENUE_GROWTH)],
        config=EtapConfig(top_k_per_query=100, negative_sample_size=2500),
    )
    etap.gather()
    etap.train()

    events = etap.extract_trigger_events()[REVENUE_GROWTH]
    print(f"{len(events)} revenue-growth trigger events extracted.\n")

    print("=== Figure 8: ranked by hand-built orientation lexicon ===")
    manual = etap.rank_by_semantic_orientation(events)
    for event in manual[:6]:
        sign = "+" if event.score >= 0 else "-"
        print(f"  #{event.rank:<3d} [{sign}{abs(event.score):.1f}] "
              f"{event.text[:90]}")

    print("\n=== PMI-IR induced lexicon (Turney [14]) ===")
    candidates = [
        "significant growth", "solid quarter", "record profits",
        "strong performance", "robust demand", "severe losses",
        "sharp decline", "weak demand", "disappointing results",
        "stellar results",
    ]
    induced = induce_lexicon(
        etap.engine,
        candidates,
        positive_seeds=["growth", "profit", "gains"],
        negative_seeds=["losses", "decline", "drop"],
    )
    print("Induced phrase orientations:")
    for phrase in candidates:
        if phrase in induced.weights:
            print(f"  {phrase:24s} {induced.weights[phrase]:+.2f}")

    agreements = 0
    comparable = 0
    manual_lexicon = revenue_growth_lexicon()
    for phrase, weight in induced.weights.items():
        if phrase in manual_lexicon.weights:
            comparable += 1
            if (weight >= 0) == (manual_lexicon.weights[phrase] >= 0):
                agreements += 1
    print(f"\nSign agreement with the hand-built lexicon: "
          f"{agreements}/{comparable}")

    print("\n=== Ranking with the induced lexicon ===")
    induced_ranker = SemanticOrientationRanker(induced)
    for event in induced_ranker.rank(events)[:5]:
        print(f"  #{event.rank:<3d} [{event.score:+.2f}] "
              f"{event.text[:90]}")


if __name__ == "__main__":
    main()
