"""Management-change alerts: the paper's Figure 7 workflow.

A new executive often revisits vendor relationships, so the change-in-
management driver feeds an alert queue.  This script reproduces the
Figure 7 output (trigger events ranked by classification score), then
demonstrates the section 5.2 problem — biography snippets that "deceive
the classifier because of its features" — and its suggested fix, making
the score a function of the snippet's time period.

Run:  python examples/management_change_alerts.py
"""

from __future__ import annotations

from repro import Etap, EtapConfig, build_web
from repro.core.drivers import get_driver
from repro.core.ranking import RecencyAdjustedRanker
from repro.core.temporal import resolve
from repro.corpus.templates import CHANGE_IN_MANAGEMENT


def looks_like_biography(text: str, reference_year: int) -> bool:
    """Heuristic used only for the demo printout: anchored in the past."""
    reading = resolve(text, reference_year)
    return (
        reading.resolved_year is not None
        and reading.resolved_year < reference_year - 2
    )


def main() -> None:
    web = build_web(1500)
    etap = Etap.from_web(
        web,
        drivers=[get_driver(CHANGE_IN_MANAGEMENT)],
        config=EtapConfig(top_k_per_query=100, negative_sample_size=2500),
    )
    etap.gather()
    etap.train()

    events = etap.extract_trigger_events()[CHANGE_IN_MANAGEMENT]

    print("=== Figure 7: events ranked by classification score ===")
    for event in events[:8]:
        print(f"  #{event.rank:<3d} [{event.score:.3f}] "
              f"{event.text[:95]}")

    suspicious = [
        event for event in events
        if looks_like_biography(event.text, reference_year=2006)
    ]
    print(f"\n{len(suspicious)} of {len(events)} alerts look like "
          f"biography / historical snippets (section 5.2's false "
          f"positives). Example:")
    if suspicious:
        print(f"  [{suspicious[0].score:.3f}] "
              f"{suspicious[0].text[:100]}")

    print("\n=== After recency adjustment (section 5.2 remedy) ===")
    adjusted = RecencyAdjustedRanker(reference_year=2006).rank(events)
    for event in adjusted[:8]:
        print(f"  #{event.rank:<3d} [{event.score:.3f}] "
              f"{event.text[:95]}")

    still_suspicious_on_top = sum(
        looks_like_biography(event.text, 2006)
        for event in adjusted[: max(len(adjusted) // 4, 1)]
    )
    print(f"\nBiography-like snippets left in the top quartile: "
          f"{still_suspicious_on_top}")


if __name__ == "__main__":
    main()
