"""Quickstart: the whole ETAP pipeline in ~30 lines.

Builds a synthetic business web, gathers it, trains the three builtin
sales-driver classifiers from automatically generated training data,
extracts trigger events and prints the top sales leads.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Etap, EtapConfig, build_web


def main() -> None:
    print("Building a synthetic web of 1,500 documents ...")
    web = build_web(1500)

    etap = Etap.from_web(
        web,
        config=EtapConfig(top_k_per_query=100, negative_sample_size=2500),
    )

    report = etap.gather()
    print(f"Gathered {report.documents_stored} documents "
          f"({report.pages_fetched} pages fetched).")

    print("Training trigger-event classifiers (no hand labeling) ...")
    summaries = etap.train()
    for driver_id, summary in summaries.items():
        print(f"  {driver_id}: {summary.n_noisy_kept} noisy positives "
              f"kept, {summary.n_features} features")

    print("Extracting and ranking trigger events ...")
    events = etap.extract_trigger_events()
    for driver_id, driver_events in events.items():
        print(f"\nTop {driver_id} trigger events:")
        for event in driver_events[:3]:
            print(f"  [{event.score:.3f}] {event.text[:90]}")

    print("\nTop companies by propensity to buy (Equation 2 MRR):")
    for position, lead in enumerate(etap.company_report(events)[:8], 1):
        print(f"  {position}. {lead.company:24s} "
              f"MRR={lead.mrr:.3f} ({lead.n_trigger_events} events)")


if __name__ == "__main__":
    main()
