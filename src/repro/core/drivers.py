"""Sales drivers: definitions, smart queries, and snippet filters.

A *sales driver* "represents a class of events whose existence indicates
a high propensity to buy" (section 2).  ETAP ships three: mergers &
acquisitions, change in management, revenue growth.  Each driver carries

* the *smart queries* used to pull noisy-positive documents from the
  search engine (section 3.3.1, step 1) — e.g. ``"new ceo"`` or a recent
  event instance like ``"IBM Daksh"``;
* a *snippet filter* over named-entity annotations (step 2) — e.g.
  *"Discard all snippets not containing a (PRSN and ORG) or (DESIG and
  ORG) annotation"* — expressed in the small combinator language below.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.corpus.templates import (
    CHANGE_IN_MANAGEMENT,
    FUNDING_ROUNDS,
    LAYOFFS,
    MERGERS_ACQUISITIONS,
    REVENUE_GROWTH,
)
from repro.text.annotator import AnnotatedText

# ---------------------------------------------------------------------------
# Snippet-filter combinator language
# ---------------------------------------------------------------------------

#: A filter takes an annotated snippet and accepts or rejects it.
SnippetFilter = Callable[[AnnotatedText], bool]


def has(label: str) -> SnippetFilter:
    """Accept snippets containing at least one ``label`` entity."""

    def check(annotated: AnnotatedText) -> bool:
        return any(entity.label == label for entity in annotated.entities)

    return check


def has_at_least(label: str, count: int) -> SnippetFilter:
    """Accept snippets with at least ``count`` entities of ``label``.

    Distinct surface forms are required, so "two ORG annotations" means
    two different organizations — the paper's M&A filter intends the
    acquirer and the acquired, not one company mentioned twice.
    """

    def check(annotated: AnnotatedText) -> bool:
        surfaces = {
            entity.text.lower()
            for entity in annotated.entities
            if entity.label == label
        }
        return len(surfaces) >= count

    return check


def has_keyword(*keywords: str) -> SnippetFilter:
    """Accept snippets containing any of the given keywords."""
    lowered = tuple(keyword.lower() for keyword in keywords)

    def check(annotated: AnnotatedText) -> bool:
        text = annotated.text.lower()
        return any(keyword in text for keyword in lowered)

    return check


def all_of(*filters: SnippetFilter) -> SnippetFilter:
    def check(annotated: AnnotatedText) -> bool:
        return all(item(annotated) for item in filters)

    return check


def any_of(*filters: SnippetFilter) -> SnippetFilter:
    def check(annotated: AnnotatedText) -> bool:
        return any(item(annotated) for item in filters)

    return check


def negate(inner: SnippetFilter) -> SnippetFilter:
    def check(annotated: AnnotatedText) -> bool:
        return not inner(annotated)

    return check


def accept_all(_: AnnotatedText) -> bool:
    return True


# ---------------------------------------------------------------------------
# Driver definitions
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SalesDriver:
    """One sales driver with its training-data recipe."""

    driver_id: str
    name: str
    description: str
    smart_queries: tuple[str, ...]
    snippet_filter: SnippetFilter


def _mergers_acquisitions() -> SalesDriver:
    return SalesDriver(
        driver_id=MERGERS_ACQUISITIONS,
        name="Mergers & acquisitions",
        description=(
            "Company mergers and acquisitions; integrating IT systems "
            "after a merger generates demand for new IT products."
        ),
        # The paper queries recent event instances ("IBM Daksh") because
        # the naive query "mergers and acquisitions" is too noisy; our
        # synthetic equivalents are phrase queries over acquisition verbs.
        smart_queries=(
            '"agreed to acquire"',
            '"completed the acquisition of"',
            '"definitive merger agreement"',
            '"plans to acquire"',
            '"is taking over"',
        ),
        # "Discard all snippets not containing two ORG annotations" —
        # plus the step-2 keyword condition the paper allows ("snippets
        # that contain specific combinations of named entity tags or
        # keywords").
        snippet_filter=all_of(
            has_at_least("ORG", 2),
            has_keyword(
                "acquire", "acquired", "acquires", "acquisition",
                "merger", "merged", "merge", "bought", "buy",
                "taking over", "took over", "takeover", "snapped up",
            ),
        ),
    )


def _change_in_management() -> SalesDriver:
    return SalesDriver(
        driver_id=CHANGE_IN_MANAGEMENT,
        name="Change in management",
        description=(
            "Executive appointments and departures; new leadership "
            "often revisits vendor relationships."
        ),
        smart_queries=(
            '"new ceo"',
            '"new cto"',
            '"new cfo"',
            '"new president"',
            '"announced the appointment of"',
        ),
        # "Designation AND (Person OR Organization)" + appointment
        # keywords (step-2 filters may combine entity tags and keywords).
        snippet_filter=all_of(
            has("DESIG"),
            any_of(has("PRSN"), has("ORG")),
            has_keyword(
                "appoint", "named", "names", "hire", "promote",
                "resign", "step down", "stepped down", "retire",
                "oust", "welcome", "recruit", "tapped", "elevate",
                "succeed", "joins", "new", "assume the role",
            ),
        ),
    )


def _revenue_growth() -> SalesDriver:
    return SalesDriver(
        driver_id=REVENUE_GROWTH,
        name="Revenue growth",
        description=(
            "Revenue and profit changes; growing companies invest in "
            "new capacity."
        ),
        smart_queries=(
            '"revenue growth"',
            '"reported revenue"',
            '"posted net income"',
            '"quarterly revenue rose"',
            '"announced record profits"',
        ),
        # "Organization AND (Currency OR percent figure)" + earnings
        # keywords to keep stock-quote boilerplate out of step 2.
        snippet_filter=all_of(
            has("ORG"),
            any_of(has("CURRENCY"), has("PRCNT")),
            has_keyword(
                "revenue", "profit", "income", "earnings", "sales",
                "turnover", "growth", "loss", "quarter", "fiscal",
            ),
        ),
    )


def _funding_rounds() -> SalesDriver:
    return SalesDriver(
        driver_id=FUNDING_ROUNDS,
        name="Funding rounds",
        description=(
            "Venture and growth financing events; newly funded "
            "companies spend on tooling, hiring, and infrastructure."
        ),
        smart_queries=(
            '"funding round"',
            '"in new funding"',
            '"closed its"',
            '"led by"',
            '"at a valuation of"',
        ),
        # Organization AND Currency plus financing keywords: a funding
        # event names the company and the amount it raised.
        snippet_filter=all_of(
            has("ORG"),
            has("CURRENCY"),
            has_keyword(
                "funding", "raised", "raises", "financing", "round",
                "investors", "backers", "capital", "valuation",
                "series", "seed",
            ),
        ),
    )


def _layoffs() -> SalesDriver:
    return SalesDriver(
        driver_id=LAYOFFS,
        name="Layoffs",
        description=(
            "Workforce reductions and restructurings; companies in "
            "retrenchment consolidate vendors and renegotiate."
        ),
        smart_queries=(
            '"of its workforce"',
            '"job cuts"',
            '"announced layoffs"',
            '"restructuring"',
            '"reduce headcount"',
        ),
        # Organization AND a count-or-percent figure plus layoff
        # keywords: the event names the company and the cut's size.
        snippet_filter=all_of(
            has("ORG"),
            any_of(has("CNT"), has("PRCNT")),
            has_keyword(
                "layoff", "layoffs", "lay off", "laying off",
                "job cuts", "cut jobs", "workforce", "headcount",
                "restructuring", "eliminate", "shed", "slash",
            ),
        ),
    )


_BUILTIN = {
    MERGERS_ACQUISITIONS: _mergers_acquisitions,
    CHANGE_IN_MANAGEMENT: _change_in_management,
    REVENUE_GROWTH: _revenue_growth,
}

#: Drivers beyond the paper's three, opened via the query-planner rig
#: (ROADMAP item 3).  ``builtin_drivers()`` deliberately excludes them:
#: the default pipeline stays bit-identical to the paper reproduction,
#: and recipes opt in by driver id.
_EXTENDED = {
    FUNDING_ROUNDS: _funding_rounds,
    LAYOFFS: _layoffs,
}

_ALL = {**_BUILTIN, **_EXTENDED}


def builtin_drivers() -> list[SalesDriver]:
    """The three drivers ETAP ships with (section 2)."""
    return [factory() for factory in _BUILTIN.values()]


def available_drivers() -> list[SalesDriver]:
    """Every registered driver: the paper's three plus extensions."""
    return [factory() for factory in _ALL.values()]


def available_driver_ids() -> list[str]:
    """Identifiers of every registered driver, in registry order."""
    return list(_ALL)


def get_driver(driver_id: str) -> SalesDriver:
    """Look up a registered driver (builtin or extended) by id."""
    try:
        return _ALL[driver_id]()
    except KeyError:
        raise KeyError(
            f"unknown driver {driver_id!r}; "
            f"available: {sorted(_ALL)}"
        ) from None
