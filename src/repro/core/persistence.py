"""Persistence for trained trigger-event classifiers.

A production deployment trains per-driver classifiers once and serves
them across many crawl cycles; this module serializes a trained
:class:`~repro.core.classifier.TriggerEventClassifier` — abstraction
policy, vocabulary and model parameters — to a single JSON document,
and restores it without retraining.

Supported inner models: multinomial / Bernoulli naive Bayes (the
defaults), linear SVM and logistic regression.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.classifier import TriggerEventClassifier
from repro.features.abstraction import AbstractionPolicy
from repro.features.vectorizer import Vectorizer, VectorizerConfig
from repro.ml.logreg import LogisticRegression
from repro.ml.naive_bayes import BernoulliNaiveBayes, MultinomialNaiveBayes
from repro.ml.svm import LinearSvm

FORMAT_VERSION = 1


class UnsupportedModelError(TypeError):
    """Raised when the classifier's inner model cannot be serialized."""


def _dump_model(model) -> dict:
    if isinstance(model, MultinomialNaiveBayes):
        return {
            "kind": "multinomial_nb",
            "alpha": model.alpha,
            "class_log_prior": model.class_log_prior_.tolist(),
            "feature_log_prob": model.feature_log_prob_.tolist(),
        }
    if isinstance(model, BernoulliNaiveBayes):
        return {
            "kind": "bernoulli_nb",
            "alpha": model.alpha,
            "class_log_prior": model.class_log_prior_.tolist(),
            "log_p": model._log_p.tolist(),
            "log_q": model._log_q.tolist(),
        }
    if isinstance(model, LinearSvm):
        return {
            "kind": "linear_svm",
            "weights": model.weights_.tolist(),
            "bias": model.bias_,
        }
    if isinstance(model, LogisticRegression):
        return {
            "kind": "logistic_regression",
            "weights": model.weights_.tolist(),
            "bias": model.bias_,
        }
    raise UnsupportedModelError(
        f"cannot serialize model of type {type(model).__name__}"
    )


def _load_model(record: dict):
    kind = record["kind"]
    if kind == "multinomial_nb":
        model = MultinomialNaiveBayes(alpha=record["alpha"])
        model.class_log_prior_ = np.array(record["class_log_prior"])
        model.feature_log_prob_ = np.array(record["feature_log_prob"])
        model._fitted = True
        return model
    if kind == "bernoulli_nb":
        model = BernoulliNaiveBayes(alpha=record["alpha"])
        model.class_log_prior_ = np.array(record["class_log_prior"])
        model._log_p = np.array(record["log_p"])
        model._log_q = np.array(record["log_q"])
        model._fitted = True
        return model
    if kind == "linear_svm":
        model = LinearSvm()
        model.weights_ = np.array(record["weights"])
        model.bias_ = float(record["bias"])
        model._fitted = True
        return model
    if kind == "logistic_regression":
        model = LogisticRegression()
        model.weights_ = np.array(record["weights"])
        model.bias_ = float(record["bias"])
        model._fitted = True
        return model
    raise UnsupportedModelError(f"unknown model kind {kind!r}")


def classifier_to_dict(classifier: TriggerEventClassifier) -> dict:
    """Serialize a *trained* classifier to a JSON-compatible dict."""
    if classifier._model is None:
        raise ValueError("classifier must be trained before saving")
    return {
        "format_version": FORMAT_VERSION,
        "driver_id": classifier.driver_id,
        "policy": sorted(classifier.policy.abstract_categories),
        "vectorizer": {
            "min_df": classifier.vectorizer.config.min_df,
            "binary": classifier.vectorizer.config.binary,
            "max_features": classifier.vectorizer.config.max_features,
            "vocabulary": classifier.vectorizer.vocabulary,
        },
        "model": _dump_model(classifier._model),
    }


def classifier_from_dict(record: dict) -> TriggerEventClassifier:
    """Rebuild a classifier saved by :func:`classifier_to_dict`."""
    version = record.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported classifier format version {version!r}"
        )
    classifier = TriggerEventClassifier(
        record["driver_id"],
        policy=AbstractionPolicy(
            abstract_categories=frozenset(record["policy"])
        ),
    )
    vec_record = record["vectorizer"]
    vectorizer = Vectorizer(
        VectorizerConfig(
            min_df=vec_record["min_df"],
            binary=vec_record["binary"],
            max_features=vec_record["max_features"],
        )
    )
    vectorizer.vocabulary = dict(vec_record["vocabulary"])
    vectorizer._fitted = True
    classifier.vectorizer = vectorizer
    classifier._model = _load_model(record["model"])
    return classifier


def save_classifier(
    classifier: TriggerEventClassifier, path: str | Path
) -> None:
    """Write a trained classifier to a JSON file."""
    Path(path).write_text(
        json.dumps(classifier_to_dict(classifier)), encoding="utf-8"
    )


def load_classifier(path: str | Path) -> TriggerEventClassifier:
    """Load a classifier written by :func:`save_classifier`."""
    record = json.loads(Path(path).read_text(encoding="utf-8"))
    return classifier_from_dict(record)


def save_classifiers(
    classifiers: dict[str, TriggerEventClassifier], directory: str | Path
) -> list[Path]:
    """Save one JSON file per driver into ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for driver_id, classifier in classifiers.items():
        path = directory / f"{driver_id}.classifier.json"
        save_classifier(classifier, path)
        written.append(path)
    return written


def load_classifiers(
    directory: str | Path,
) -> dict[str, TriggerEventClassifier]:
    """Load every ``*.classifier.json`` in ``directory``."""
    directory = Path(directory)
    classifiers = {}
    for path in sorted(directory.glob("*.classifier.json")):
        classifier = load_classifier(path)
        classifiers[classifier.driver_id] = classifier
    return classifiers
