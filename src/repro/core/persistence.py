"""Durability: model persistence, write-ahead log, checkpoints.

Three layers of state survive process death here:

* **trained classifiers** — a production deployment trains per-driver
  classifiers once and serves them across many crawl cycles;
  :func:`save_classifier` serializes a trained
  :class:`~repro.core.classifier.TriggerEventClassifier` — abstraction
  policy, vocabulary and model parameters — to a single JSON document,
  and :func:`load_classifier` restores it without retraining.
  Supported inner models: multinomial / Bernoulli naive Bayes (the
  defaults), linear SVM and logistic regression.
* **write-ahead log** — :class:`WriteAheadLog` appends schema-versioned
  JSONL records (the :class:`~repro.obs.events.Event` envelope, with
  ``stream_*`` record types) with a flush+fsync per record, so every
  acknowledged record survives a kill.  A deterministic
  ``kill_after`` crash hook lets tests kill the process after *any*
  record position.
* **checkpoints** — :class:`CheckpointStore` writes numbered JSON
  snapshots of processor state atomically (temp file + ``os.replace``)
  and restores the latest complete one, ignoring torn leftovers.

The streaming processor (:mod:`repro.stream`) composes the WAL and the
checkpoint store into the recovery contract documented in
docs/STREAMING.md: resume from the latest checkpoint, learn what was
already emitted from the WAL tail, and reprocess the rest exactly once.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.core.classifier import TriggerEventClassifier
from repro.features.abstraction import AbstractionPolicy
from repro.features.vectorizer import Vectorizer, VectorizerConfig
from repro.ml.logreg import LogisticRegression
from repro.ml.naive_bayes import BernoulliNaiveBayes, MultinomialNaiveBayes
from repro.ml.svm import LinearSvm
from repro.obs.clock import Clock, MonotonicClock
from repro.obs.events import (
    EVENT_TYPES,
    Event,
    new_run_id,
    read_events,
)

FORMAT_VERSION = 1


class UnsupportedModelError(TypeError):
    """Raised when the classifier's inner model cannot be serialized."""


def _dump_model(model) -> dict:
    if isinstance(model, MultinomialNaiveBayes):
        return {
            "kind": "multinomial_nb",
            "alpha": model.alpha,
            "class_log_prior": model.class_log_prior_.tolist(),
            "feature_log_prob": model.feature_log_prob_.tolist(),
        }
    if isinstance(model, BernoulliNaiveBayes):
        return {
            "kind": "bernoulli_nb",
            "alpha": model.alpha,
            "class_log_prior": model.class_log_prior_.tolist(),
            "log_p": model._log_p.tolist(),
            "log_q": model._log_q.tolist(),
        }
    if isinstance(model, LinearSvm):
        return {
            "kind": "linear_svm",
            "weights": model.weights_.tolist(),
            "bias": model.bias_,
        }
    if isinstance(model, LogisticRegression):
        return {
            "kind": "logistic_regression",
            "weights": model.weights_.tolist(),
            "bias": model.bias_,
        }
    raise UnsupportedModelError(
        f"cannot serialize model of type {type(model).__name__}"
    )


def _load_model(record: dict):
    kind = record["kind"]
    if kind == "multinomial_nb":
        model = MultinomialNaiveBayes(alpha=record["alpha"])
        model.class_log_prior_ = np.array(record["class_log_prior"])
        model.feature_log_prob_ = np.array(record["feature_log_prob"])
        model._fitted = True
        return model
    if kind == "bernoulli_nb":
        model = BernoulliNaiveBayes(alpha=record["alpha"])
        model.class_log_prior_ = np.array(record["class_log_prior"])
        model._log_p = np.array(record["log_p"])
        model._log_q = np.array(record["log_q"])
        model._fitted = True
        return model
    if kind == "linear_svm":
        model = LinearSvm()
        model.weights_ = np.array(record["weights"])
        model.bias_ = float(record["bias"])
        model._fitted = True
        return model
    if kind == "logistic_regression":
        model = LogisticRegression()
        model.weights_ = np.array(record["weights"])
        model.bias_ = float(record["bias"])
        model._fitted = True
        return model
    raise UnsupportedModelError(f"unknown model kind {kind!r}")


def classifier_to_dict(classifier: TriggerEventClassifier) -> dict:
    """Serialize a *trained* classifier to a JSON-compatible dict."""
    if classifier._model is None:
        raise ValueError("classifier must be trained before saving")
    return {
        "format_version": FORMAT_VERSION,
        "driver_id": classifier.driver_id,
        "policy": sorted(classifier.policy.abstract_categories),
        "vectorizer": {
            "min_df": classifier.vectorizer.config.min_df,
            "binary": classifier.vectorizer.config.binary,
            "max_features": classifier.vectorizer.config.max_features,
            "vocabulary": classifier.vectorizer.vocabulary,
        },
        "model": _dump_model(classifier._model),
    }


def classifier_from_dict(record: dict) -> TriggerEventClassifier:
    """Rebuild a classifier saved by :func:`classifier_to_dict`."""
    version = record.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported classifier format version {version!r}"
        )
    classifier = TriggerEventClassifier(
        record["driver_id"],
        policy=AbstractionPolicy(
            abstract_categories=frozenset(record["policy"])
        ),
    )
    vec_record = record["vectorizer"]
    vectorizer = Vectorizer(
        VectorizerConfig(
            min_df=vec_record["min_df"],
            binary=vec_record["binary"],
            max_features=vec_record["max_features"],
        )
    )
    vectorizer.vocabulary = dict(vec_record["vocabulary"])
    vectorizer._fitted = True
    classifier.vectorizer = vectorizer
    classifier._model = _load_model(record["model"])
    return classifier


def save_classifier(
    classifier: TriggerEventClassifier, path: str | Path
) -> None:
    """Write a trained classifier to a JSON file."""
    Path(path).write_text(
        json.dumps(classifier_to_dict(classifier)), encoding="utf-8"
    )


def load_classifier(path: str | Path) -> TriggerEventClassifier:
    """Load a classifier written by :func:`save_classifier`."""
    record = json.loads(Path(path).read_text(encoding="utf-8"))
    return classifier_from_dict(record)


def save_classifiers(
    classifiers: dict[str, TriggerEventClassifier], directory: str | Path
) -> list[Path]:
    """Save one JSON file per driver into ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for driver_id, classifier in classifiers.items():
        path = directory / f"{driver_id}.classifier.json"
        save_classifier(classifier, path)
        written.append(path)
    return written


def load_classifiers(
    directory: str | Path,
) -> dict[str, TriggerEventClassifier]:
    """Load every ``*.classifier.json`` in ``directory``."""
    directory = Path(directory)
    classifiers = {}
    for path in sorted(directory.glob("*.classifier.json")):
        classifier = load_classifier(path)
        classifiers[classifier.driver_id] = classifier
    return classifiers


# -- write-ahead log -----------------------------------------------------------

class SimulatedCrash(RuntimeError):
    """Deterministic kill: raised after the Nth WAL record is durable.

    The record that trips the kill is already flushed and fsynced when
    this raises, so a "crash after record N" leaves exactly N records
    on disk — the contract the recovery fuzz suite kills against.
    """

    def __init__(self, records_written: int) -> None:
        self.records_written = records_written
        super().__init__(
            f"simulated crash after WAL record {records_written}"
        )


class WriteAheadLog:
    """Append-only, fsynced JSONL log of streaming-processor records.

    Records reuse the flight recorder's schema-versioned
    :class:`~repro.obs.events.Event` envelope (``stream_batch_begin``,
    ``stream_alert``, ``late_arrival``, ``stream_batch_commit``,
    ``checkpoint_written``, ``stream_resumed``), so one set of tooling
    validates both logs.  Unlike :class:`~repro.obs.events.EventLog`
    this log *appends* to an existing file — sequence numbers continue
    across process restarts — and flushes + fsyncs every record, making
    each append a durability point.

    ``kill_after`` arms the deterministic crash hook: the append that
    writes the ``kill_after``-th record of this process's lifetime
    completes durably, then raises :class:`SimulatedCrash`.
    """

    def __init__(
        self,
        path: str | Path,
        run_id: str | None = None,
        clock: Clock | None = None,
        kill_after: int | None = None,
    ) -> None:
        if kill_after is not None and kill_after < 1:
            raise ValueError("kill_after must be >= 1")
        self.path = Path(path)
        self.clock = clock or MonotonicClock()
        self.kill_after = kill_after
        #: Records appended by THIS process (the kill counter).
        self.records_written = 0
        existing = self.read() if self.path.exists() else []
        self._seq = existing[-1].seq + 1 if existing else 0
        self.run_id = run_id or (
            existing[-1].run_id if existing else new_run_id()
        )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("a", encoding="utf-8")

    @property
    def next_seq(self) -> int:
        """Sequence number the next appended record will carry."""
        return self._seq

    @property
    def last_seq(self) -> int:
        """Sequence number of the last durable record (-1 when empty)."""
        return self._seq - 1

    def append(self, event_type: str, **payload) -> Event:
        """Durably append one record; the schema floor is enforced.

        Returns only after flush + fsync — when this returns (or raises
        :class:`SimulatedCrash`), the record is on disk.
        """
        required = EVENT_TYPES.get(event_type)
        if required is None:
            raise ValueError(f"unknown WAL record type {event_type!r}")
        missing = required - set(payload)
        if missing:
            raise ValueError(
                f"{event_type}: missing payload fields {sorted(missing)}"
            )
        record = Event(
            event_type=event_type,
            run_id=self.run_id,
            seq=self._seq,
            ts=self.clock.now(),
            payload=payload,
        )
        self._handle.write(record.to_json() + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._seq += 1
        self.records_written += 1
        if (
            self.kill_after is not None
            and self.records_written >= self.kill_after
        ):
            raise SimulatedCrash(self.records_written)
        return record

    def read(self) -> list[Event]:
        """Every durable record, oldest first (tolerates a torn tail).

        A crash can leave a final partial line (the write that never
        finished); it is skipped — it was never acknowledged.
        """
        if not self.path.exists():
            return []
        try:
            return read_events(self.path)
        except (ValueError, json.JSONDecodeError):
            events: list[Event] = []
            with self.path.open("r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        events.append(Event.from_json(line))
                    except (ValueError, json.JSONDecodeError):
                        break  # torn tail: everything after is unacked
            return events

    def flush(self) -> None:
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# -- checkpoints ---------------------------------------------------------------

CHECKPOINT_FORMAT_VERSION = 1


class CheckpointStore:
    """Numbered, atomically written JSON checkpoints in one directory.

    Each checkpoint is a single ``checkpoint-NNNNNN.json`` file written
    via temp file + ``os.replace``, so a crash mid-write leaves either
    the previous complete file set or a stray ``*.tmp`` — never a torn
    checkpoint.  :meth:`latest` returns the newest *readable* state and
    skips unreadable or version-mismatched files instead of failing the
    whole recovery.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def path_of(self, checkpoint_id: int) -> Path:
        return self.directory / f"checkpoint-{checkpoint_id:06d}.json"

    def save(self, checkpoint_id: int, state: dict) -> Path:
        """Atomically persist one checkpoint; returns its path."""
        if checkpoint_id < 0:
            raise ValueError("checkpoint_id must be >= 0")
        payload = {
            "format_version": CHECKPOINT_FORMAT_VERSION,
            "checkpoint_id": checkpoint_id,
            "state": state,
        }
        path = self.path_of(checkpoint_id)
        tmp = path.with_suffix(".json.tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            handle.write(json.dumps(payload, sort_keys=True))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        return path

    def checkpoint_ids(self) -> list[int]:
        """All complete checkpoint ids, oldest first."""
        ids = []
        for path in self.directory.glob("checkpoint-*.json"):
            stem = path.stem.rsplit("-", 1)[-1]
            if stem.isdigit():
                ids.append(int(stem))
        return sorted(ids)

    def load(self, checkpoint_id: int) -> dict:
        """Load one checkpoint's state; raises on version mismatch."""
        payload = json.loads(
            self.path_of(checkpoint_id).read_text(encoding="utf-8")
        )
        version = payload.get("format_version")
        if version != CHECKPOINT_FORMAT_VERSION:
            raise ValueError(
                f"unsupported checkpoint format version {version!r}"
            )
        return payload["state"]

    def latest(self) -> tuple[int, dict] | None:
        """Newest loadable ``(checkpoint_id, state)``, or ``None``.

        Unreadable or version-mismatched files are skipped (a crashed
        writer must never block recovery from an older good one).
        """
        for checkpoint_id in reversed(self.checkpoint_ids()):
            try:
                return checkpoint_id, self.load(checkpoint_id)
            except (ValueError, json.JSONDecodeError, OSError):
                continue
        return None
