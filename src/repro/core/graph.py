"""Company co-mention graph over extracted trigger events.

Trigger events relate companies: an M&A event links acquirer and
target; an earnings story may name a rival.  Projecting all extracted
events onto a company graph gives the sales team a second lens beside
Equation 2's MRR: centrality finds companies at the heart of current
activity, and neighborhoods answer "who else is involved with this
prospect?".
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Sequence

import networkx as nx

from repro.core.ranking import TriggerEvent


def build_company_graph(
    events_by_driver: dict[str, Sequence[TriggerEvent]],
) -> nx.Graph:
    """Weighted co-mention graph from ranked trigger events.

    Nodes are canonical company keys; an edge's ``weight`` accumulates
    the scores of events mentioning both endpoints, and its ``drivers``
    set records which sales drivers contributed.  Node attribute
    ``event_count`` counts the events mentioning the company.
    """
    graph = nx.Graph()
    for driver_id, events in events_by_driver.items():
        for event in events:
            for company in event.companies:
                if not graph.has_node(company):
                    graph.add_node(company, event_count=0)
                graph.nodes[company]["event_count"] += 1
            for a, b in combinations(sorted(set(event.companies)), 2):
                if graph.has_edge(a, b):
                    graph[a][b]["weight"] += event.score
                    graph[a][b]["drivers"].add(driver_id)
                else:
                    graph.add_edge(
                        a, b,
                        weight=event.score,
                        drivers={driver_id},
                    )
    return graph


@dataclass(frozen=True, slots=True)
class CentralCompany:
    """One row of the centrality-based lead list."""

    company: str
    centrality: float
    event_count: int
    degree: int


def central_companies(
    graph: nx.Graph, top: int = 10
) -> list[CentralCompany]:
    """Companies ranked by weighted degree centrality.

    Weighted degree (strength) rewards being involved in many
    high-confidence events with many distinct counterparties — the
    "center of current activity" signal MRR does not capture.
    """
    if graph.number_of_nodes() == 0:
        return []
    strength = {
        node: sum(
            data["weight"] for _, _, data in graph.edges(node, data=True)
        )
        for node in graph.nodes
    }
    ranked = sorted(
        graph.nodes,
        key=lambda node: (-strength[node], node),
    )
    return [
        CentralCompany(
            company=node,
            centrality=strength[node],
            event_count=graph.nodes[node]["event_count"],
            degree=graph.degree(node),
        )
        for node in ranked[:top]
    ]


def related_companies(
    graph: nx.Graph, company: str, top: int = 5
) -> list[tuple[str, float]]:
    """The strongest co-mention neighbours of one company."""
    if company not in graph:
        return []
    neighbours = [
        (other, graph[company][other]["weight"])
        for other in graph.neighbors(company)
    ]
    return sorted(neighbours, key=lambda item: (-item[1], item[0]))[:top]


def deal_pairs(
    graph: nx.Graph, driver_id: str = "mergers_acquisitions"
) -> list[tuple[str, str, float]]:
    """Company pairs linked by events of one driver, by edge weight —
    for M&A this reads as the current deal sheet."""
    pairs = [
        (a, b, data["weight"])
        for a, b, data in graph.edges(data=True)
        if driver_id in data["drivers"]
    ]
    return sorted(pairs, key=lambda item: (-item[2], item[0], item[1]))
