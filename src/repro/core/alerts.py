"""The alert loop: re-crawl, score only new content, emit alerts.

This is the "Electronic Trigger Alert Program" behaviour proper: a
trained :class:`~repro.core.etap.Etap` instance watches an evolving web;
each :meth:`AlertService.poll` re-runs the gatherer (the document store
deduplicates, so only genuinely new pages enter), scores only the
snippets of previously unseen documents, and emits one :class:`Alert`
per new trigger event.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.etap import Etap
from repro.core.ranking import TriggerEvent, make_trigger_events, rank_events
from repro.gather.dedup import NearDuplicateIndex


@dataclass(frozen=True)
class Alert:
    """One new trigger event surfaced by a poll cycle."""

    cycle: int
    driver_id: str
    event: TriggerEvent

    @property
    def text(self) -> str:
        return self.event.text

    @property
    def score(self) -> float:
        return self.event.score


@dataclass
class PollReport:
    """Outcome of one poll cycle."""

    cycle: int
    new_documents: int
    new_snippets: int
    alerts: list[Alert] = field(default_factory=list)


class AlertService:
    """Watches an ETAP instance's web for new trigger events."""

    def __init__(
        self,
        etap: Etap,
        threshold: float | None = None,
        suppress_near_duplicates: bool = False,
    ) -> None:
        if not etap.classifiers:
            raise ValueError(
                "the Etap instance must be trained before alerting"
            )
        self.etap = etap
        self.threshold = (
            etap.config.trigger_threshold if threshold is None
            else threshold
        )
        self._processed_docs: set[str] = set(etap.store.doc_ids())
        self._cycle = 0
        # One index per driver: the same story syndicated across sites
        # should alert once, ever.
        self._seen_alert_text: dict[str, NearDuplicateIndex] | None = (
            {} if suppress_near_duplicates else None
        )

    def poll(self) -> PollReport:
        """Re-crawl and alert on trigger events in new documents."""
        self._cycle += 1
        self.etap.gather()  # dedup means only new pages are stored
        new_doc_ids = [
            doc_id
            for doc_id in self.etap.store.doc_ids()
            if doc_id not in self._processed_docs
        ]
        self._processed_docs.update(new_doc_ids)

        items = []
        for doc_id in new_doc_ids:
            snippets = self.etap.training.snippets_of_document(doc_id)
            items.extend(self.etap.training.annotate_snippets(snippets))

        report = PollReport(
            cycle=self._cycle,
            new_documents=len(new_doc_ids),
            new_snippets=len(items),
        )
        if not items:
            return report

        for driver in self.etap.drivers:
            scores = self.etap.score_snippets(driver.driver_id, items)
            flagged = [
                (item, score)
                for item, score in zip(items, scores)
                if score >= self.threshold
            ]
            if not flagged:
                continue
            events = rank_events(
                make_trigger_events(
                    driver.driver_id,
                    [item for item, _ in flagged],
                    [score for _, score in flagged],
                    normalizer=self.etap.normalizer,
                )
            )
            if self._seen_alert_text is not None:
                events = self._drop_duplicate_stories(
                    driver.driver_id, events
                )
            report.alerts.extend(
                Alert(
                    cycle=self._cycle,
                    driver_id=driver.driver_id,
                    event=event,
                )
                for event in events
            )
        return report

    def _drop_duplicate_stories(
        self, driver_id: str, events: list[TriggerEvent]
    ) -> list[TriggerEvent]:
        index = self._seen_alert_text.setdefault(
            driver_id, NearDuplicateIndex(threshold=0.7, shingle_k=2)
        )
        kept = []
        for event in events:
            if index.is_near_duplicate(event.text):
                continue
            index.add(event.snippet_id, event.text)
            kept.append(event)
        return kept
