"""The alert loop: re-crawl, score only new content, emit alerts.

This is the "Electronic Trigger Alert Program" behaviour proper: a
trained :class:`~repro.core.etap.Etap` instance watches an evolving web;
each :meth:`AlertService.poll` re-runs the gatherer (the document store
deduplicates, so only genuinely new pages enter), scores only the
snippets of previously unseen documents, and emits one :class:`Alert`
per new trigger event.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.etap import Etap
from repro.core.ranking import TriggerEvent, make_trigger_events, rank_events
from repro.gather.dedup import NearDuplicateIndex
from repro.obs.events import NULL_EVENT_LOG, AnyEventLog


def idempotency_key(
    driver_id: str, snippet_id: str, companies: Sequence[str] = ()
) -> str:
    """Stable key for one (driver, snippet, companies) alert identity.

    Derived from the snippet's lineage (``doc_id#index``), so the same
    story re-surfacing in a later poll — or the same snippet flagged
    for the same companies again — maps to the same key and is
    suppressed instead of re-alerted.
    """
    material = "|".join(
        [driver_id, snippet_id, ",".join(sorted(companies))]
    )
    return hashlib.sha1(material.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class Alert:
    """One new trigger event surfaced by a poll cycle."""

    cycle: int
    driver_id: str
    event: TriggerEvent
    #: Idempotency key; doubles as the id ``repro explain`` looks up.
    alert_id: str = ""

    @property
    def text(self) -> str:
        return self.event.text

    @property
    def score(self) -> float:
        return self.event.score


@dataclass
class PollReport:
    """Outcome of one poll cycle."""

    cycle: int
    new_documents: int
    new_snippets: int
    alerts: list[Alert] = field(default_factory=list)


class AlertService:
    """Watches an ETAP instance's web for new trigger events."""

    def __init__(
        self,
        etap: Etap,
        threshold: float | None = None,
        suppress_near_duplicates: bool = False,
        event_log: AnyEventLog | None = None,
    ) -> None:
        if not etap.classifiers:
            raise ValueError(
                "the Etap instance must be trained before alerting"
            )
        self.etap = etap
        self.threshold = (
            etap.config.trigger_threshold if threshold is None
            else threshold
        )
        # Default to the Etap's recorder so the whole alert loop lands
        # in one event stream.
        self.event_log = (
            event_log if event_log is not None else etap.event_log
        ) or NULL_EVENT_LOG
        self._processed_docs: set[str] = set(etap.store.doc_ids())
        self._cycle = 0
        # Idempotency: (driver, snippet, companies) identities already
        # alerted, across every poll so far.
        self._emitted_keys: set[str] = set()
        # One index per driver: the same story syndicated across sites
        # should alert once, ever.
        self._seen_alert_text: dict[str, NearDuplicateIndex] | None = (
            {} if suppress_near_duplicates else None
        )

    def poll(self) -> PollReport:
        """Re-crawl and alert on trigger events in new documents."""
        self._cycle += 1
        self.etap.gather()  # dedup means only new pages are stored
        new_doc_ids = [
            doc_id
            for doc_id in self.etap.store.doc_ids()
            if doc_id not in self._processed_docs
        ]
        self._processed_docs.update(new_doc_ids)

        items = []
        for doc_id in new_doc_ids:
            snippets = self.etap.training.snippets_of_document(doc_id)
            items.extend(self.etap.training.annotate_snippets(snippets))

        report = PollReport(
            cycle=self._cycle,
            new_documents=len(new_doc_ids),
            new_snippets=len(items),
        )
        if not items:
            return report

        for driver in self.etap.drivers:
            scores = self.etap.score_snippets(driver.driver_id, items)
            flagged = [
                (item, score)
                for item, score in zip(items, scores)
                if score >= self.threshold
            ]
            if not flagged:
                continue
            events = rank_events(
                make_trigger_events(
                    driver.driver_id,
                    [item for item, _ in flagged],
                    [score for _, score in flagged],
                    normalizer=self.etap.normalizer,
                    url_of=self.etap.url_of,
                )
            )
            if self._seen_alert_text is not None:
                events = self._drop_duplicate_stories(
                    driver.driver_id, events
                )
            if self.event_log.enabled:
                self._record_classifications(
                    driver.driver_id, events, scores
                )
            for event in events:
                key = idempotency_key(
                    driver.driver_id, event.snippet_id, event.companies
                )
                if key in self._emitted_keys:
                    continue
                self._emitted_keys.add(key)
                alert = Alert(
                    cycle=self._cycle,
                    driver_id=driver.driver_id,
                    event=event,
                    alert_id=key,
                )
                report.alerts.append(alert)
                self.event_log.emit(
                    "alert_emitted",
                    lineage_id=event.doc_id,
                    alert_id=key,
                    cycle=self._cycle,
                    driver_id=driver.driver_id,
                    snippet_id=event.snippet_id,
                    doc_id=event.doc_id,
                    score=event.score,
                    rank=event.rank,
                    url=event.url,
                    companies=list(event.companies),
                    text=event.text,
                )
        return report

    def _record_classifications(
        self,
        driver_id: str,
        events: list[TriggerEvent],
        scores,
    ) -> None:
        """Flight-record one poll's classifier decisions for ``driver_id``.

        Emits ``snippet_scored`` + ``trigger_classified`` (with feature
        evidence) so every subsequent alert has a complete provenance
        chain, and runs the driver's drift monitor over the poll's full
        score batch.  Recorder-on path only.
        """
        classifier = self.etap.classifiers[driver_id]
        for event in events:
            self.event_log.emit(
                "snippet_scored",
                lineage_id=event.doc_id,
                snippet_id=event.snippet_id,
                doc_id=event.doc_id,
                driver_id=driver_id,
                score=event.score,
            )
            self.event_log.emit(
                "trigger_classified",
                lineage_id=event.doc_id,
                snippet_id=event.snippet_id,
                doc_id=event.doc_id,
                driver_id=driver_id,
                score=event.score,
                rank=event.rank,
                features=classifier.explain(event.item),
                companies=list(event.companies),
                text=event.text,
                url=event.url,
            )
        monitor = self.etap.drift_monitors.get(driver_id)
        if monitor is None:
            return
        for drift in monitor.check_scores(list(scores)):
            self.event_log.emit(
                "drift_warning",
                monitor=drift.monitor,
                value=drift.value,
                threshold=drift.threshold,
                driver_id=drift.driver_id,
                detail=drift.detail,
            )

    def _drop_duplicate_stories(
        self, driver_id: str, events: list[TriggerEvent]
    ) -> list[TriggerEvent]:
        index = self._seen_alert_text.setdefault(
            driver_id, NearDuplicateIndex(threshold=0.7, shingle_k=2)
        )
        kept = []
        for event in events:
            if index.is_near_duplicate(event.text):
                continue
            index.add(event.snippet_id, event.text)
            kept.append(event)
        return kept
