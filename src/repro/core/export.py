"""Export trigger events and lead lists for downstream CRM tooling.

The ranked output of ETAP feeds "the further sales related processes"
(section 4) — in practice, a CRM import.  CSV (spreadsheet-friendly)
and JSON-lines (pipeline-friendly) writers for both trigger events and
company lead lists.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Sequence

from repro.core.ranking import CompanyScore, TriggerEvent

EVENT_FIELDS = (
    "driver_id", "rank", "score", "companies", "snippet_id", "text",
)
LEAD_FIELDS = ("rank", "company", "mrr", "n_trigger_events")


def _event_row(event: TriggerEvent) -> dict:
    return {
        "driver_id": event.driver_id,
        "rank": event.rank,
        "score": round(event.score, 6),
        "companies": "; ".join(event.companies),
        "snippet_id": event.snippet_id,
        "text": event.text,
    }


def export_events_csv(
    events: Sequence[TriggerEvent], path: str | Path
) -> Path:
    """Write ranked trigger events to CSV."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=EVENT_FIELDS)
        writer.writeheader()
        for event in events:
            writer.writerow(_event_row(event))
    return path


def export_events_jsonl(
    events: Sequence[TriggerEvent], path: str | Path
) -> Path:
    """Write ranked trigger events to JSON lines."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for event in events:
            record = _event_row(event)
            record["companies"] = list(event.companies)
            handle.write(json.dumps(record) + "\n")
    return path


def export_leads_csv(
    leads: Sequence[CompanyScore], path: str | Path
) -> Path:
    """Write the Equation 2 company lead list to CSV."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=LEAD_FIELDS)
        writer.writeheader()
        for rank, lead in enumerate(leads, start=1):
            writer.writerow(
                {
                    "rank": rank,
                    "company": lead.company,
                    "mrr": round(lead.mrr, 6),
                    "n_trigger_events": lead.n_trigger_events,
                }
            )
    return path


def export_leads_jsonl(
    leads: Sequence[CompanyScore], path: str | Path
) -> Path:
    """Write the company lead list to JSON lines."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for rank, lead in enumerate(leads, start=1):
            handle.write(
                json.dumps(
                    {
                        "rank": rank,
                        "company": lead.company,
                        "mrr": round(lead.mrr, 6),
                        "n_trigger_events": lead.n_trigger_events,
                    }
                )
                + "\n"
            )
    return path
