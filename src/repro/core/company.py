"""Company-name normalization and variation matching (section 6).

The paper's future work: *"To determine an overall score of a company
based on its trigger events, we need to know all the variations to the
reference of the company."*  This module implements that machinery: a
canonical key per company (legal-suffix stripping, case folding), an
alias table for explicit variations, and extraction of company mentions
from annotated snippets via their ORG entities.
"""

from __future__ import annotations

from collections import defaultdict

from repro.corpus import vocab
from repro.text.annotator import AnnotatedText

_LEGAL_SUFFIXES = {suffix.lower() for suffix in vocab.ORG_SUFFIXES} | {
    "inc.", "corp.", "ltd.", "co", "co.", "company", "plc", "gmbh",
    "limited", "incorporated", "corporation",
}


# Words that never contribute an acronym letter: pure legal boilerplate.
# Narrower than _LEGAL_SUFFIXES — descriptive words like "Systems"
# do contribute (the M in IBM comes from "Machines").
_ACRONYM_STOP = frozenset(
    "inc corp ltd llc co company plc gmbh limited incorporated "
    "corporation".split()
)


def acronym_of(name: str) -> str:
    """The initialism of a multi-word name: ``International Business
    Machines`` -> ``IBM``.  Legal boilerplate contributes no letters."""
    words = [
        word
        for word in name.replace(".", " ").split()
        if word.lower().strip(".,") not in _ACRONYM_STOP
    ]
    return "".join(word[0].upper() for word in words if word)


def canonical_key(name: str) -> str:
    """Canonical identity key: lower-case, no punctuation dots, no
    trailing legal suffixes.

    ``Acme Inc``, ``ACME Inc.`` and ``Acme Incorporated`` share a key;
    ``Acme Systems`` keeps ``systems`` only if it is not trailing-legal
    boilerplate after stripping (we strip at most the final token chain
    of legal suffixes, so ``Acme Data Systems`` -> ``acme data``).
    """
    words = [word.strip(".,").lower() for word in name.split()]
    while len(words) > 1 and words[-1] in _LEGAL_SUFFIXES:
        words.pop()
    return " ".join(word for word in words if word)


class CompanyNormalizer:
    """Maps surface mentions to canonical company identities.

    With ``match_acronyms`` enabled, registering a multi-word company
    name also registers its initialism, so the mention ``IBM`` resolves
    to ``International Business Machines`` once that name is known.
    """

    def __init__(self, match_acronyms: bool = False) -> None:
        self._aliases: dict[str, str] = {}
        self._display: dict[str, str] = {}
        self.match_acronyms = match_acronyms

    def register(self, canonical_name: str) -> str:
        """Register a known company; returns its canonical key."""
        key = canonical_key(canonical_name)
        self._display.setdefault(key, canonical_name)
        if self.match_acronyms:
            acronym = acronym_of(canonical_name)
            if len(acronym) >= 2:
                self._aliases.setdefault(acronym.lower(), key)
        return key

    def add_alias(self, alias: str, canonical_name: str) -> None:
        """Declare that ``alias`` refers to ``canonical_name``."""
        self._aliases[canonical_key(alias)] = canonical_key(canonical_name)
        self.register(canonical_name)

    def normalize(self, mention: str) -> str:
        """Canonical key for a mention, following alias links."""
        key = canonical_key(mention)
        return self._aliases.get(key, key)

    def display_name(self, key: str) -> str:
        """A human-readable name for a canonical key."""
        return self._display.get(key, key.title())

    def same_company(self, a: str, b: str) -> bool:
        return self.normalize(a) == self.normalize(b)

    def companies_in(self, annotated: AnnotatedText) -> list[str]:
        """Canonical keys of the distinct ORG mentions in a snippet."""
        seen: list[str] = []
        for entity in annotated.entities:
            if entity.label != "ORG":
                continue
            key = self.normalize(entity.text)
            if key and key not in seen:
                seen.append(key)
                self.register(entity.text)
        return seen

    def group_mentions(self, mentions: list[str]) -> dict[str, list[str]]:
        """Group raw mentions by canonical identity."""
        groups: dict[str, list[str]] = defaultdict(list)
        for mention in mentions:
            groups[self.normalize(mention)].append(mention)
        return dict(groups)
