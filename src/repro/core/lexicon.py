"""Semantic-orientation lexicons and PMI-IR induction (section 4).

ETAP ranks revenue-growth trigger events by the semantic orientation of
their phrases: *"Phrases that convey a stronger sense, e.g., 'sharp
decline', 'worst losses' are weighted more than other phrases, e.g.,
'loss' and 'profit'."*  The hand-built lexicon here mirrors the paper's
examples; :func:`induce_lexicon` implements the automated alternative the
paper points to (Turney [14], PMI-IR): a candidate phrase's orientation
is estimated from its co-occurrence with positive vs negative seed words
in a document collection.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.search.engine import SearchEngine


@dataclass
class OrientationLexicon:
    """Weighted positive/negative phrases; longest-phrase-first scoring."""

    weights: dict[str, float] = field(default_factory=dict)

    def add(self, phrase: str, weight: float) -> None:
        phrase = " ".join(phrase.lower().split())
        if not phrase:
            raise ValueError("phrase must be non-empty")
        self.weights[phrase] = weight

    def score(self, text: str) -> float:
        """Sum of matched phrase weights; longer phrases shadow shorter.

        ``sharp decline`` must not *also* count its substring ``decline``:
        matching is greedy over word n-grams, longest first, and consumed
        word positions are excluded from shorter matches.
        """
        words = [word.strip(".,;:!?\"'()").lower() for word in text.split()]
        consumed = [False] * len(words)
        total = 0.0
        max_len = max(
            (len(phrase.split()) for phrase in self.weights), default=0
        )
        for length in range(max_len, 0, -1):
            for start in range(0, len(words) - length + 1):
                if any(consumed[start : start + length]):
                    continue
                candidate = " ".join(words[start : start + length])
                weight = self.weights.get(candidate)
                if weight is not None:
                    total += weight
                    for position in range(start, start + length):
                        consumed[position] = True
        return total

    def merge(self, other: Mapping[str, float]) -> None:
        for phrase, weight in other.items():
            self.add(phrase, weight)

    def __len__(self) -> int:
        return len(self.weights)


def revenue_growth_lexicon() -> OrientationLexicon:
    """The manually constructed lexicon for the revenue-growth driver.

    Strong phrases carry weight +/-2, plain sentiment words +/-1 —
    the paper's 'sharp decline' > 'loss' ordering.
    """
    lexicon = OrientationLexicon()
    strong_positive = [
        "significant growth", "solid quarter", "record profits",
        "strong performance", "robust demand", "impressive gains",
        "stellar results", "remarkable turnaround", "substantial increase",
        "healthy margins",
    ]
    strong_negative = [
        "severe losses", "sharp decline", "worst losses", "steep drop",
        "significant downturn", "heavy losses", "dismal quarter",
        "substantial decrease", "disappointing results", "weak demand",
    ]
    weak_positive = ["profit", "growth", "gain", "rose", "climbed", "up"]
    weak_negative = ["loss", "decline", "drop", "fell", "down", "shrank"]
    for phrase in strong_positive:
        lexicon.add(phrase, 2.0)
    for phrase in strong_negative:
        lexicon.add(phrase, -2.0)
    for phrase in weak_positive:
        lexicon.add(phrase, 1.0)
    for phrase in weak_negative:
        lexicon.add(phrase, -1.0)
    return lexicon


def induce_lexicon(
    engine: SearchEngine,
    candidates: Iterable[str],
    positive_seeds: Iterable[str] = ("excellent", "growth", "profit"),
    negative_seeds: Iterable[str] = ("poor", "loss", "decline"),
    scale: float = 2.0,
) -> OrientationLexicon:
    """PMI-IR orientation induction over an indexed collection [14].

    For each candidate phrase::

        SO(p) = log2(hits(p, pos_seeds) * hits(neg_seeds)
                     / (hits(p, neg_seeds) * hits(pos_seeds)))

    where ``hits(p, seeds)`` counts documents containing both the phrase
    and any seed (document-level co-occurrence stands in for Turney's
    NEAR operator).  Weights are clipped to ``[-scale, scale]``.
    """
    positive_seeds = list(positive_seeds)
    negative_seeds = list(negative_seeds)
    if not positive_seeds or not negative_seeds:
        raise ValueError("seed lists must be non-empty")

    def docs_matching(query: str) -> set[str]:
        return {
            hit.doc_key
            for hit in engine.search(query, top_k=engine.index.n_docs or 1)
        }

    pos_docs: set[str] = set()
    for seed in positive_seeds:
        pos_docs |= docs_matching(seed)
    neg_docs: set[str] = set()
    for seed in negative_seeds:
        neg_docs |= docs_matching(seed)

    lexicon = OrientationLexicon()
    smoothing = 0.5
    for phrase in candidates:
        phrase_docs = docs_matching(f'"{phrase}"')
        if not phrase_docs:
            continue
        with_pos = len(phrase_docs & pos_docs) + smoothing
        with_neg = len(phrase_docs & neg_docs) + smoothing
        baseline = (len(pos_docs) + smoothing) / (len(neg_docs) + smoothing)
        orientation = math.log2((with_pos / with_neg) / baseline)
        lexicon.add(
            phrase, max(-scale, min(scale, orientation))
        )
    return lexicon
