"""Training-data generation: smart queries -> filters -> noisy positives.

Implements section 3.3.1.  Three sets feed classifier construction:

* **Noisy positive** ``Pn`` — step 1 queries the search engine with the
  driver's smart queries and takes the top documents; step 2 snippets and
  annotates them, keeping only snippets that pass the driver's
  named-entity filter.
* **Negative** ``N`` — "a large number of snippets randomly picked from
  the Web"; the same negative sample serves every driver.
* **Pure positive** ``Pp`` — a small manually-labeled set; here, drawn
  from ground-truth snippet labels of held-out generated documents.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.core.drivers import SalesDriver
from repro.core.snippets import Snippet, SnippetGenerator
from repro.gather.store import DocumentStore
from repro.obs.tracer import NULL_TRACER, AnyTracer
from repro.search.engine import SearchEngine
from repro.text.annotator import AnnotatedText, Annotator
from repro.text.engine import AnnotationEngine


@dataclass(frozen=True)
class AnnotatedSnippet:
    """A snippet together with its annotation (the classifier's input)."""

    snippet: Snippet
    annotated: AnnotatedText


@dataclass
class NoisyPositiveReport:
    """Diagnostics from one noisy-positive generation run (Figures 5/6)."""

    driver_id: str
    queries_run: int
    documents_hit: int
    snippets_seen: int
    snippets_kept: int

    @property
    def filter_rejection_rate(self) -> float:
        if self.snippets_seen == 0:
            return 0.0
        return 1.0 - self.snippets_kept / self.snippets_seen


class TrainingDataGenerator:
    """Builds Pn / N training sets from a gathered document collection."""

    def __init__(
        self,
        store: DocumentStore,
        engine: SearchEngine,
        annotator: Annotator | None = None,
        snippet_generator: SnippetGenerator | None = None,
        tracer: AnyTracer | None = None,
        text_engine: AnnotationEngine | None = None,
    ) -> None:
        self.store = store
        self.engine = engine
        self.text_engine = text_engine
        if annotator is not None:
            self.annotator = annotator
        elif text_engine is not None:
            self.annotator = text_engine.annotator
        else:
            self.annotator = Annotator()
        self.snippets = snippet_generator or SnippetGenerator(
            splitter=text_engine.sentences if text_engine else None
        )
        self.tracer = tracer or NULL_TRACER
        self._annotation_cache: dict[str, AnnotatedText] = {}
        self._snippet_cache: dict[str, list[Snippet]] = {}

    # -- shared plumbing ------------------------------------------------------

    def _annotate(self, snippet: Snippet) -> AnnotatedSnippet:
        """Annotate once: the engine caches by content across stages.

        Without an engine (standalone use) fall back to the local
        per-snippet-id memo this generator always had.
        """
        if self.text_engine is not None:
            annotated = self.text_engine.annotate(snippet.text)
            return AnnotatedSnippet(snippet=snippet, annotated=annotated)
        cached = self._annotation_cache.get(snippet.snippet_id)
        if cached is None:
            cached = self.annotator.annotate(snippet.text)
            self._annotation_cache[snippet.snippet_id] = cached
        return AnnotatedSnippet(snippet=snippet, annotated=cached)

    def snippets_of_document(self, doc_id: str) -> list[Snippet]:
        """Window one stored document (memoized; snippets are frozen).

        Document text behind a ``doc_id`` never changes (the store
        dedups by content), so the windowing is a pure function of the
        id and safe to memoize.  The negative sampler alone hits each
        popular document many times.
        """
        cached = self._snippet_cache.get(doc_id)
        if cached is None:
            document = self.store.get(doc_id)
            cached = self.snippets.from_text(doc_id, document.text)
            self._snippet_cache[doc_id] = cached
        return cached

    # -- noisy positives (section 3.3.1) --------------------------------------

    def noisy_positive(
        self,
        driver: SalesDriver,
        top_k_per_query: int = 200,
    ) -> tuple[list[AnnotatedSnippet], NoisyPositiveReport]:
        """Run the driver's smart queries and filter the hit snippets."""
        seen_docs: set[str] = set()
        kept: list[AnnotatedSnippet] = []
        seen_snippets = 0
        with self.tracer.span(
            f"train.noisy_positive[{driver.driver_id}]"
        ) as span:
            for query in driver.smart_queries:
                for hit in self.engine.search(
                    query, top_k=top_k_per_query
                ):
                    if hit.doc_key in seen_docs:
                        continue
                    seen_docs.add(hit.doc_key)
                    for snippet in self.snippets_of_document(hit.doc_key):
                        seen_snippets += 1
                        annotated = self._annotate(snippet)
                        if driver.snippet_filter(annotated.annotated):
                            kept.append(annotated)
            span.add_items(seen_snippets)
            self.tracer.count("train.snippets_seen", seen_snippets)
            self.tracer.count("train.snippets_kept", len(kept))
        report = NoisyPositiveReport(
            driver_id=driver.driver_id,
            queries_run=len(driver.smart_queries),
            documents_hit=len(seen_docs),
            snippets_seen=seen_snippets,
            snippets_kept=len(kept),
        )
        return kept, report

    # -- negatives -------------------------------------------------------------

    def negative_sample(
        self, n_snippets: int, seed: int = 17
    ) -> list[AnnotatedSnippet]:
        """Random snippets from the whole collection (the background class).

        As in the paper, the sample may contain a small fraction of
        genuinely positive snippets; that contamination is part of the
        method's operating conditions and is deliberately not filtered.
        """
        if n_snippets <= 0:
            raise ValueError("n_snippets must be positive")
        rng = random.Random(seed)
        doc_ids = self.store.doc_ids()
        if not doc_ids:
            raise ValueError("document store is empty")
        sample: list[AnnotatedSnippet] = []
        with self.tracer.span("train.negative_sample") as span:
            attempts = 0
            max_attempts = n_snippets * 20
            while len(sample) < n_snippets and attempts < max_attempts:
                attempts += 1
                doc_id = rng.choice(doc_ids)
                snippets = self.snippets_of_document(doc_id)
                if not snippets:
                    continue
                sample.append(self._annotate(rng.choice(snippets)))
            span.add_items(len(sample))
        return sample

    # -- pure positives ---------------------------------------------------------

    def annotate_snippets(
        self, snippets: Sequence[Snippet]
    ) -> list[AnnotatedSnippet]:
        """Annotate externally supplied (e.g. hand-labeled) snippets."""
        return [self._annotate(snippet) for snippet in snippets]
