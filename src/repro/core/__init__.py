"""ETAP core: drivers, snippets, training, classification, ranking."""

from repro.core.alerts import Alert, AlertService, PollReport
from repro.core.classifier import TrainingSummary, TriggerEventClassifier
from repro.core.persistence import (
    load_classifier,
    load_classifiers,
    save_classifier,
    save_classifiers,
)
from repro.core.company import CompanyNormalizer, canonical_key
from repro.core.drivers import (
    SalesDriver,
    all_of,
    any_of,
    builtin_drivers,
    get_driver,
    has,
    has_at_least,
    has_keyword,
    negate,
)
from repro.core.etap import Etap, EtapConfig
from repro.core.export import (
    export_events_csv,
    export_events_jsonl,
    export_leads_csv,
    export_leads_jsonl,
)
from repro.core.feedback import FeedbackLoop, RetrainReport, Verdict
from repro.core.graph import (
    CentralCompany,
    build_company_graph,
    central_companies,
    deal_pairs,
    related_companies,
)
from repro.core.industry import (
    IndustryProfile,
    get_industry,
    it_industry,
    steel_industry,
)
from repro.core.lexicon import (
    OrientationLexicon,
    induce_lexicon,
    revenue_growth_lexicon,
)
from repro.core.ranking import (
    CompanyRanker,
    CompanyScore,
    RecencyAdjustedRanker,
    SemanticOrientationRanker,
    TriggerEvent,
    deduplicate_events,
    make_trigger_events,
    rank_events,
)
from repro.core.snippets import Snippet, SnippetGenerator
from repro.core.temporal import (
    TemporalReading,
    extract_years,
    recency_multiplier,
    resolve,
    score_with_recency,
)
from repro.core.training import (
    AnnotatedSnippet,
    NoisyPositiveReport,
    TrainingDataGenerator,
)

__all__ = [
    "Alert",
    "AlertService",
    "AnnotatedSnippet",
    "CentralCompany",
    "build_company_graph",
    "central_companies",
    "deal_pairs",
    "related_companies",
    "CompanyNormalizer",
    "CompanyRanker",
    "CompanyScore",
    "Etap",
    "EtapConfig",
    "FeedbackLoop",
    "IndustryProfile",
    "NoisyPositiveReport",
    "OrientationLexicon",
    "PollReport",
    "RecencyAdjustedRanker",
    "RetrainReport",
    "SalesDriver",
    "SemanticOrientationRanker",
    "Snippet",
    "SnippetGenerator",
    "TemporalReading",
    "TrainingDataGenerator",
    "TrainingSummary",
    "TriggerEvent",
    "Verdict",
    "TriggerEventClassifier",
    "all_of",
    "any_of",
    "builtin_drivers",
    "canonical_key",
    "deduplicate_events",
    "export_events_csv",
    "export_events_jsonl",
    "export_leads_csv",
    "export_leads_jsonl",
    "extract_years",
    "get_driver",
    "get_industry",
    "it_industry",
    "has",
    "has_at_least",
    "has_keyword",
    "induce_lexicon",
    "load_classifier",
    "load_classifiers",
    "make_trigger_events",
    "negate",
    "rank_events",
    "recency_multiplier",
    "resolve",
    "revenue_growth_lexicon",
    "save_classifier",
    "save_classifiers",
    "score_with_recency",
    "steel_industry",
]
