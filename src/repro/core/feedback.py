"""Analyst feedback loop: validated leads improve the classifiers.

Section 2: ETAP "is aimed at gathering sales leads from the Web and
presenting them to domain specialists for the final validation."  The
specialists' verdicts are labeled data — exactly the pure-positive (and
hard-negative) material section 3.3 says is scarce.  This module closes
the loop: record verdicts on trigger events, then retrain the affected
driver with confirmed events added to the pure positives and rejected
events added to the negatives.

The canonical payoff: biographies flagged as invalid by the analyst
become hard negatives, directly attacking the paper's section 5.2
failure mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.etap import Etap
from repro.core.ranking import TriggerEvent
from repro.core.training import AnnotatedSnippet


@dataclass(frozen=True, slots=True)
class Verdict:
    """One analyst judgment on a trigger event."""

    driver_id: str
    snippet_id: str
    valid: bool
    item: AnnotatedSnippet


@dataclass
class RetrainReport:
    """What a feedback-driven retrain changed."""

    driver_id: str
    n_confirmed: int
    n_rejected: int


class FeedbackLoop:
    """Collects verdicts and retrains drivers with them."""

    def __init__(self, etap: Etap) -> None:
        if not etap.classifiers:
            raise ValueError("the Etap instance must be trained first")
        self.etap = etap
        self._verdicts: dict[tuple[str, str], Verdict] = {}

    # -- recording ------------------------------------------------------------

    def record(self, event: TriggerEvent, valid: bool) -> None:
        """Record the analyst's verdict on one trigger event.

        A later verdict on the same (driver, snippet) overwrites the
        earlier one — analysts change their minds.
        """
        key = (event.driver_id, event.snippet_id)
        self._verdicts[key] = Verdict(
            driver_id=event.driver_id,
            snippet_id=event.snippet_id,
            valid=valid,
            item=event.item,
        )

    def record_many(
        self, events: Iterable[TriggerEvent], valid: bool
    ) -> None:
        for event in events:
            self.record(event, valid)

    def verdicts_for(self, driver_id: str) -> list[Verdict]:
        return [
            verdict
            for (d, _), verdict in self._verdicts.items()
            if d == driver_id
        ]

    def all_verdicts(self) -> list[Verdict]:
        """Every recorded verdict, across drivers — the query planner
        re-weights candidate portfolios from this
        (:meth:`repro.queries.planner.FeedbackWeights.from_feedback`)."""
        return list(self._verdicts.values())

    @property
    def n_verdicts(self) -> int:
        return len(self._verdicts)

    # -- retraining --------------------------------------------------------------

    def retrain(self, driver_id: str) -> RetrainReport:
        """Retrain one driver folding the verdicts into its data.

        Confirmed events join the pure-positive set (oversampled per
        section 3.3.2); rejected events join the negative set as hard
        negatives.
        """
        driver = next(
            d for d in self.etap.drivers if d.driver_id == driver_id
        )
        verdicts = self.verdicts_for(driver_id)
        confirmed = [v.item for v in verdicts if v.valid]
        rejected = [v.item for v in verdicts if not v.valid]

        noisy, _ = self.etap.training.noisy_positive(
            driver, top_k_per_query=self.etap.config.top_k_per_query
        )
        negatives = self.etap.training.negative_sample(
            self.etap.config.negative_sample_size
        )
        # Hard negatives carry the weight of their repetition: the
        # analyst explicitly rejected them, so repeat them to outweigh
        # the random background.
        hard_negatives = rejected * 3

        classifier = self.etap.classifiers[driver_id]
        fresh = type(classifier)(
            driver_id=driver_id,
            policy=self.etap.config.policy,
            classifier_factory=self.etap.config.classifier_factory,
            max_denoise_iter=self.etap.config.max_denoise_iter,
            oversample_pure=self.etap.config.oversample_pure,
        )
        fresh.fit(
            noisy_positive=noisy,
            negative=list(negatives) + hard_negatives,
            pure_positive=confirmed,
        )
        self.etap.classifiers[driver_id] = fresh
        return RetrainReport(
            driver_id=driver_id,
            n_confirmed=len(confirmed),
            n_rejected=len(rejected),
        )
