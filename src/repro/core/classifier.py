"""The trigger-event classifier: features + denoising + scoring.

Glues the feature pipeline (abstraction -> vectorizer) to the iterative
noise-tolerant training of section 3.3.2 for one sales driver.  One
:class:`TriggerEventClassifier` is trained per driver (Figure 2 shows a
bank of per-driver two-class classifiers); its output for a snippet is
the posterior probability that the snippet is a trigger event for that
driver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.training import AnnotatedSnippet
from repro.features.abstraction import AbstractionPolicy, abstract_tokens
from repro.features.vectorizer import Vectorizer, VectorizerConfig
from repro.ml.noise import (
    ClassifierFactory,
    DenoiseResult,
    IterativeNoiseReducer,
)
from repro.obs.events import NULL_EVENT_LOG, AnyEventLog
from repro.obs.tracer import NULL_TRACER, AnyTracer
from repro.text.engine import AnnotationEngine
from repro.text.stem import PorterStemmer


@dataclass
class TrainingSummary:
    """What happened during training (exposed for experiments/benches).

    ``fit_seconds`` is wall time of the whole fit; it stays 0.0 under
    the default null tracer (no clock reads on the uninstrumented path).
    """

    driver_id: str
    n_noisy_positive: int
    n_noisy_kept: int
    n_pure_positive: int
    n_negative: int
    n_iterations: int
    n_features: int
    fit_seconds: float = 0.0


class TriggerEventClassifier:
    """Per-driver snippet classifier with noise-tolerant training."""

    def __init__(
        self,
        driver_id: str,
        policy: AbstractionPolicy | None = None,
        classifier_factory: ClassifierFactory | None = None,
        vectorizer_config: VectorizerConfig | None = None,
        max_denoise_iter: int = 2,
        oversample_pure: int = 3,
        tracer: AnyTracer | None = None,
        event_log: AnyEventLog | None = None,
        text_engine: AnnotationEngine | None = None,
    ) -> None:
        self.driver_id = driver_id
        self.tracer = tracer or NULL_TRACER
        self.event_log = event_log or NULL_EVENT_LOG
        self.policy = policy or AbstractionPolicy.paper_default()
        #: Shared annotate-once engine: feature abstraction is cached
        #: per (snippet content, policy), so a bank of per-driver
        #: classifiers abstracts each snippet once, not once per driver.
        self.text_engine = text_engine
        self._stemmer = (
            text_engine.stemmer if text_engine else PorterStemmer()
        )
        self.vectorizer = Vectorizer(
            vectorizer_config or VectorizerConfig(min_df=2)
        )
        reducer_kwargs = {}
        if classifier_factory is not None:
            reducer_kwargs["classifier_factory"] = classifier_factory
        self._reducer = IterativeNoiseReducer(
            max_iter=max_denoise_iter,
            oversample_pure=oversample_pure,
            **reducer_kwargs,
        )
        self._model = None
        self.summary: TrainingSummary | None = None
        self.denoise_result: DenoiseResult | None = None

    # -- features ----------------------------------------------------------

    def features_of(self, item: AnnotatedSnippet) -> list[str]:
        if self.text_engine is not None:
            return self.text_engine.features(
                item.annotated.text, item.annotated, self.policy
            )
        return abstract_tokens(
            item.annotated, self.policy, stemmer=self._stemmer
        )

    def _feature_lists(
        self, items: Sequence[AnnotatedSnippet]
    ) -> list[list[str]]:
        return [self.features_of(item) for item in items]

    # -- training -----------------------------------------------------------

    def fit(
        self,
        noisy_positive: Sequence[AnnotatedSnippet],
        negative: Sequence[AnnotatedSnippet],
        pure_positive: Sequence[AnnotatedSnippet] = (),
    ) -> "TriggerEventClassifier":
        """Train per section 3.3.2 and record a :class:`TrainingSummary`."""
        if not noisy_positive:
            raise ValueError("noisy positive set is empty")
        if not negative:
            raise ValueError("negative set is empty")
        with self.tracer.span(f"train.fit[{self.driver_id}]") as span:
            tokens_noisy = self._feature_lists(noisy_positive)
            tokens_negative = self._feature_lists(negative)
            tokens_pure = self._feature_lists(pure_positive)

            self.vectorizer.fit(
                tokens_noisy + tokens_negative + tokens_pure
            )
            X_noisy = self.vectorizer.transform(tokens_noisy)
            X_negative = self.vectorizer.transform(tokens_negative)
            X_pure = (
                self.vectorizer.transform(tokens_pure)
                if tokens_pure
                else None
            )

            result = self._reducer.fit(X_noisy, X_negative, X_pure)
            span.add_items(
                len(noisy_positive) + len(negative) + len(pure_positive)
            )
        self._model = result.model
        self.denoise_result = result
        self.summary = TrainingSummary(
            driver_id=self.driver_id,
            n_noisy_positive=len(noisy_positive),
            n_noisy_kept=int(result.kept_mask.sum()),
            n_pure_positive=len(pure_positive),
            n_negative=len(negative),
            n_iterations=result.n_iterations,
            n_features=self.vectorizer.n_features,
            fit_seconds=span.duration,
        )
        self.event_log.emit(
            "model_trained",
            driver_id=self.driver_id,
            n_noisy_positive=self.summary.n_noisy_positive,
            n_noisy_kept=self.summary.n_noisy_kept,
            n_negative=self.summary.n_negative,
            n_features=self.summary.n_features,
            n_iterations=self.summary.n_iterations,
        )
        return self

    # -- inference ----------------------------------------------------------

    def score(self, items: Sequence[AnnotatedSnippet]) -> np.ndarray:
        """Posterior probability of the trigger class per snippet."""
        if self._model is None:
            raise RuntimeError("classifier must be fit before scoring")
        if not items:
            return np.zeros(0)
        with self.tracer.timed("classifier.score_seconds"):
            X = self.vectorizer.transform(self._feature_lists(items))
            probabilities = self._model.predict_proba(X)[:, 1]
        self.tracer.count("classifier.snippets_scored", len(items))
        return probabilities

    def predict(
        self, items: Sequence[AnnotatedSnippet], threshold: float = 0.5
    ) -> np.ndarray:
        """Hard trigger / non-trigger decisions."""
        return (self.score(items) >= threshold).astype(np.int64)

    # -- explanation --------------------------------------------------------

    def _feature_weights(self) -> np.ndarray | None:
        """Per-feature log-odds toward the trigger class, if available.

        Works for the models this pipeline actually trains: multinomial
        NB (``feature_log_prob_``), Bernoulli NB (``_log_p/_log_q``),
        and logistic regression (``weights_``).  Exotic models (voting
        ensembles, calibrated wrappers) return ``None`` — explanation
        degrades to an empty evidence list rather than failing.
        """
        model = self._model
        if model is None:
            return None
        flp = getattr(model, "feature_log_prob_", None)
        if flp is not None:
            return np.asarray(flp[1] - flp[0])
        log_p = getattr(model, "_log_p", None)
        log_q = getattr(model, "_log_q", None)
        if log_p is not None and log_q is not None:
            delta = np.asarray(log_p) - np.asarray(log_q)
            return delta[1] - delta[0]
        weights = getattr(model, "weights_", None)
        if weights is not None:
            return np.asarray(weights)
        return None

    def explain(
        self, item: AnnotatedSnippet, top_n: int = 5
    ) -> list[tuple[str, float]]:
        """Top contributing features for one snippet's trigger score.

        Contribution = (feature count in the snippet) x (the model's
        per-feature log-odds toward the trigger class); the result is
        sorted by absolute contribution, largest first.  The provenance
        chain renders these as the alert's "feature evidence".
        """
        if self._model is None:
            raise RuntimeError("classifier must be fit before explain")
        weights = self._feature_weights()
        if weights is None:
            return []
        # Stay sparse: one snippet touches a handful of features, so
        # contributions are computed over the CSR row's nonzeros only.
        X = self.vectorizer.transform([self.features_of(item)]).tocsr()
        columns = X.indices
        contributions = X.data * weights[columns]
        present = contributions != 0
        if not present.any():
            return []
        columns = columns[present]
        contributions = contributions[present]
        ranked = np.argsort(-np.abs(contributions), kind="stable")[:top_n]
        names = self.vectorizer.feature_names()
        return [
            (names[columns[i]], float(contributions[i])) for i in ranked
        ]
