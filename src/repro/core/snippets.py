"""Snippet generation: groups of n consecutive sentences (section 3.1).

*"The snippet generator uses the chunker and splits the documents into
snippets, each of which is a group of n consecutive sentences.  We have
used n = 3 in our system."*

Snippets can be cut from raw text (using the rule-based sentence chunker)
or from a generated :class:`~repro.corpus.generator.Document`, in which
case the ground-truth sentence labels roll up into snippet labels for
evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.corpus.generator import Document
from repro.text.sentences import split_sentence_texts


@dataclass(frozen=True)
class Snippet:
    """A group of consecutive sentences from one document."""

    doc_id: str
    index: int
    sentences: tuple[str, ...]
    #: Ground-truth driver ids present in this snippet (evaluation only;
    #: empty for snippets cut from raw text).
    true_drivers: frozenset[str] = field(default_factory=frozenset)

    @property
    def text(self) -> str:
        return " ".join(self.sentences)

    @property
    def snippet_id(self) -> str:
        return f"{self.doc_id}#{self.index}"

    def is_positive_for(self, driver_id: str) -> bool:
        return driver_id in self.true_drivers


class SnippetGenerator:
    """Cuts documents into n-sentence snippets.

    ``window`` is the paper's n (default 3).  ``stride`` controls the
    step between consecutive windows; ``stride == window`` (default)
    yields the paper's disjoint groups, ``stride < window`` yields
    overlapping windows.  A trailing group shorter than ``window`` is
    kept — dropping it would lose trigger events near document ends.

    ``splitter`` is the sentence-splitting hook used by
    :meth:`from_text`; pass
    :meth:`repro.text.engine.AnnotationEngine.sentences` to reuse the
    pipeline-wide annotate-once cache instead of re-splitting the same
    document on every call.
    """

    def __init__(
        self,
        window: int = 3,
        stride: int | None = None,
        splitter: Callable[[str], Sequence[str]] | None = None,
    ) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self.stride = stride if stride is not None else window
        if self.stride <= 0:
            raise ValueError("stride must be positive")
        self.splitter = splitter or split_sentence_texts

    def from_sentences(
        self,
        doc_id: str,
        sentences: Sequence[str],
        labels: list[str | None] | None = None,
    ) -> list[Snippet]:
        """Window a pre-split sentence list into snippets."""
        if labels is not None and len(labels) != len(sentences):
            raise ValueError("labels must align with sentences")
        snippets: list[Snippet] = []
        index = 0
        for start in range(0, max(len(sentences), 1), self.stride):
            group = sentences[start : start + self.window]
            if not group:
                break
            drivers: frozenset[str] = frozenset()
            if labels is not None:
                drivers = frozenset(
                    label
                    for label in labels[start : start + self.window]
                    if label is not None
                )
            snippets.append(
                Snippet(
                    doc_id=doc_id,
                    index=index,
                    sentences=tuple(group),
                    true_drivers=drivers,
                )
            )
            index += 1
            if start + self.window >= len(sentences):
                break
        return snippets

    def from_text(self, doc_id: str, text: str) -> list[Snippet]:
        """Chunk raw text with the sentence chunker, then window it."""
        return self.from_sentences(doc_id, self.splitter(text))

    def from_document(self, document: Document) -> list[Snippet]:
        """Window a generated document, carrying ground-truth labels."""
        sentences = [item.text for item in document.sentences]
        labels = [item.label for item in document.sentences]
        return self.from_sentences(document.doc_id, sentences, labels)

    def from_documents(self, documents: list[Document]) -> list[Snippet]:
        snippets: list[Snippet] = []
        for document in documents:
            snippets.extend(self.from_document(document))
        return snippets
