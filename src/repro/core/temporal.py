"""Temporal association of trigger events (section 6 future work).

*"For a trigger event to be useful, it should belong to a relevant time
period ... methods need to be developed to resolve phrases such as 'last
year' and 'previous quarter'."*  And section 5.2 suggests countering
biography-style false positives "by making the score corresponding to
each snippet a function of the time period associated with the snippet."

This module implements both: resolution of absolute and relative time
expressions against a reference year, and a recency multiplier that
decays the score of snippets anchored in the past (a biography's
``from 1980-1985`` lands far below a fresh announcement).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.text.annotator import AnnotatedText

_YEAR_RE = re.compile(r"\b(19[0-9]{2}|20[0-9]{2})\b")
_RANGE_RE = re.compile(r"\b(19[0-9]{2}|20[0-9]{2})\s*-\s*(19[0-9]{2}|20[0-9]{2})\b")

_RELATIVE_OFFSETS = {
    "last year": -1,
    "previous year": -1,
    "a year earlier": -1,
    "a year ago": -1,
    "this year": 0,
    "later this year": 0,
    "earlier this year": 0,
    "next year": 1,
    "last quarter": 0,
    "previous quarter": 0,
    "this quarter": 0,
    "next quarter": 0,
    "next month": 0,
    "last month": 0,
}

_CURRENT_MARKERS = (
    "today", "yesterday", "announced", "will", "plans to", "is expected",
    "effective", "next month", "under way",
)


@dataclass(frozen=True, slots=True)
class TemporalReading:
    """Resolved temporal anchor of a snippet."""

    years: tuple[int, ...]
    resolved_year: int | None
    has_relative_reference: bool
    has_current_marker: bool


def extract_years(text: str) -> list[int]:
    """All absolute year mentions, including both ends of ranges."""
    years = [int(match.group()) for match in _YEAR_RE.finditer(text)]
    return years


def resolve(text: str, reference_year: int) -> TemporalReading:
    """Resolve the time period a snippet refers to.

    The anchor is the *most recent* mentioned year (ranges contribute
    their end), with relative phrases resolved against
    ``reference_year``.  A snippet with no temporal evidence at all gets
    ``resolved_year=None`` and is treated as current by the scorer.
    """
    lower = text.lower()
    years = extract_years(text)
    relative_years = [
        reference_year + offset
        for phrase, offset in _RELATIVE_OFFSETS.items()
        if phrase in lower
    ]
    has_relative = bool(relative_years)
    candidates = years + relative_years
    resolved = max(candidates) if candidates else None
    has_current = any(marker in lower for marker in _CURRENT_MARKERS)
    return TemporalReading(
        years=tuple(years),
        resolved_year=resolved,
        has_relative_reference=has_relative,
        has_current_marker=has_current,
    )


def recency_multiplier(
    reading: TemporalReading,
    reference_year: int,
    half_life_years: float = 2.0,
) -> float:
    """Score multiplier in (0, 1]; 1 for current events, decaying with age.

    A snippet whose only temporal anchor lies ``d`` years in the past is
    multiplied by ``0.5 ** (d / half_life_years)``.  Current markers
    ("announced", "will", ...) floor the multiplier at 0.5 since the
    snippet likely reports a fresh event alongside historical context.
    """
    if half_life_years <= 0:
        raise ValueError("half_life_years must be positive")
    if reading.resolved_year is None:
        return 1.0
    age = max(reference_year - reading.resolved_year, 0)
    multiplier = 0.5 ** (age / half_life_years)
    if reading.has_current_marker:
        multiplier = max(multiplier, 0.5)
    return multiplier


def score_with_recency(
    base_score: float,
    annotated: AnnotatedText,
    reference_year: int,
    half_life_years: float = 2.0,
) -> float:
    """Apply the section 5.2 suggestion: score x recency(snippet)."""
    reading = resolve(annotated.text, reference_year)
    return base_score * recency_multiplier(
        reading, reference_year, half_life_years
    )
