"""The ranking component (section 4): snippets, then companies.

Three scoring modes, as in the paper:

* **classification score** — the posterior probability from the trigger
  classifier (Figure 7);
* **semantic orientation** — lexicon-weighted phrase polarity, used for
  the revenue-growth driver (Figure 8);
* **company aggregation** — the mean-reciprocal-rank variant of
  Equation 2, rolling all of a company's trigger events across all
  drivers into one propensity score.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, replace
from typing import Callable, Sequence

from repro.core.company import CompanyNormalizer
from repro.core.lexicon import OrientationLexicon
from repro.core.temporal import score_with_recency
from repro.core.training import AnnotatedSnippet
from repro.gather.dedup import NearDuplicateIndex
from repro.obs.events import NULL_EVENT_LOG, AnyEventLog
from repro.obs.tracer import NULL_TRACER, AnyTracer


@dataclass(frozen=True)
class TriggerEvent:
    """A snippet flagged as a trigger event for one sales driver.

    ``url`` is the originating document's address — the provenance join
    key that lets ``repro explain`` tie an alert back to the page the
    crawler fetched.  It is populated when the event is built with a
    ``url_of`` resolver (the Etap and alert-service paths do this) and
    stays empty for events built from bare snippets.
    """

    driver_id: str
    item: AnnotatedSnippet
    score: float
    rank: int | None = None
    companies: tuple[str, ...] = ()
    url: str = ""

    @property
    def text(self) -> str:
        return self.item.snippet.text

    @property
    def snippet_id(self) -> str:
        return self.item.snippet.snippet_id

    @property
    def doc_id(self) -> str:
        """Stable id of the originating document (lineage key)."""
        return self.item.snippet.doc_id


def make_trigger_events(
    driver_id: str,
    items: Sequence[AnnotatedSnippet],
    scores: Sequence[float],
    normalizer: CompanyNormalizer | None = None,
    url_of: Callable[[str], str] | None = None,
) -> list[TriggerEvent]:
    """Pair snippets with scores and extract their company mentions.

    ``url_of`` maps a doc_id to the document's URL so every event
    carries its provenance join key; without it ``url`` stays empty.
    """
    if len(items) != len(scores):
        raise ValueError("items and scores must align")
    normalizer = normalizer or CompanyNormalizer()
    return [
        TriggerEvent(
            driver_id=driver_id,
            item=item,
            score=float(score),
            companies=tuple(normalizer.companies_in(item.annotated)),
            url=url_of(item.snippet.doc_id) if url_of else "",
        )
        for item, score in zip(items, scores)
    ]


def rank_events(events: Sequence[TriggerEvent]) -> list[TriggerEvent]:
    """Sort by score (descending) and assign 1-based ranks.

    Ties break on snippet id so ranking is deterministic.
    """
    ordered = sorted(events, key=lambda e: (-e.score, e.snippet_id))
    return [
        replace(event, rank=position)
        for position, event in enumerate(ordered, start=1)
    ]


def deduplicate_events(
    events: Sequence[TriggerEvent],
    threshold: float = 0.7,
) -> list[TriggerEvent]:
    """Collapse near-duplicate snippets in a ranked event list.

    The same wire story republished across sites yields near-identical
    snippets that would occupy several adjacent ranks; an analyst wants
    each story once.  The highest-ranked copy survives; survivors are
    re-ranked 1..n.  Events must already be ranked.
    """
    index = NearDuplicateIndex(threshold=threshold, shingle_k=2)
    survivors: list[TriggerEvent] = []
    ordered = sorted(
        events, key=lambda e: (e.rank if e.rank is not None else 1 << 30)
    )
    for event in ordered:
        if index.is_near_duplicate(event.text):
            continue
        index.add(event.snippet_id, event.text)
        survivors.append(event)
    return [
        replace(event, rank=position)
        for position, event in enumerate(survivors, start=1)
    ]


class SemanticOrientationRanker:
    """Re-scores trigger events by lexicon orientation (Figure 8).

    The *magnitude* of the orientation drives the rank — both a sharp
    decline and record profits are actionable sales signals; near-zero
    orientation means the snippet says little either way.  The signed
    orientation is preserved in the event score's sign.
    """

    def __init__(self, lexicon: OrientationLexicon) -> None:
        self.lexicon = lexicon

    def score(self, event: TriggerEvent) -> float:
        return self.lexicon.score(event.text)

    def rank(self, events: Sequence[TriggerEvent]) -> list[TriggerEvent]:
        rescored = [
            replace(event, score=self.score(event)) for event in events
        ]
        ordered = sorted(
            rescored, key=lambda e: (-abs(e.score), e.snippet_id)
        )
        return [
            replace(event, rank=position)
            for position, event in enumerate(ordered, start=1)
        ]


class RecencyAdjustedRanker:
    """Section 5.2's remedy for biography noise: score x recency."""

    def __init__(
        self, reference_year: int, half_life_years: float = 2.0
    ) -> None:
        self.reference_year = reference_year
        self.half_life_years = half_life_years

    def rank(self, events: Sequence[TriggerEvent]) -> list[TriggerEvent]:
        rescored = [
            replace(
                event,
                score=score_with_recency(
                    event.score,
                    event.item.annotated,
                    self.reference_year,
                    self.half_life_years,
                ),
            )
            for event in events
        ]
        return rank_events(rescored)


@dataclass(frozen=True, slots=True)
class CompanyScore:
    """Equation 2's MRR(c) for one company."""

    company: str
    mrr: float
    n_trigger_events: int


class CompanyRanker:
    """Aggregates ranked trigger events into company scores (Equation 2).

        MRR(c) = sum_i sum_j 1 / rank(te_j(c, sd_i))
                 -----------------------------------
                 sum_i |TE(c, sd_i)|

    where i runs over sales drivers and j over the trigger events of
    company c under driver i.  Input lists must already be ranked
    (per driver) by :func:`rank_events` or an equivalent.

    ``driver_weights`` generalizes Equation 2 to industry-specific
    driver importance (section 2: "the set of sales drivers could be
    different for different industries" — and so could their weights):
    driver i contributes ``w_i / rank`` to the numerator and ``w_i`` per
    event to the denominator.  Unit weights recover the paper's formula.
    """

    def __init__(
        self,
        driver_weights: dict[str, float] | None = None,
        tracer: AnyTracer | None = None,
        event_log: AnyEventLog | None = None,
    ) -> None:
        if driver_weights is not None:
            bad = [d for d, w in driver_weights.items() if w < 0]
            if bad:
                raise ValueError(
                    f"driver weights must be non-negative; got {bad}"
                )
        self.driver_weights = driver_weights or {}
        self.tracer = tracer or NULL_TRACER
        self.event_log = event_log or NULL_EVENT_LOG

    def _weight(self, driver_id: str) -> float:
        return self.driver_weights.get(driver_id, 1.0)

    def score_companies(
        self, ranked_by_driver: dict[str, Sequence[TriggerEvent]]
    ) -> list[CompanyScore]:
        reciprocal_sum: dict[str, float] = defaultdict(float)
        weight_sum: dict[str, float] = defaultdict(float)
        event_count: dict[str, int] = defaultdict(int)
        with self.tracer.span("rank.companies") as span:
            for driver_id, events in ranked_by_driver.items():
                weight = self._weight(driver_id)
                for event in events:
                    if event.rank is None:
                        raise ValueError(
                            "events must be ranked before company "
                            "aggregation"
                        )
                    for company in event.companies:
                        reciprocal_sum[company] += weight / event.rank
                        weight_sum[company] += weight
                        event_count[company] += 1
                span.add_items(len(events))
            scores = [
                CompanyScore(
                    company=company,
                    mrr=reciprocal_sum[company] / weight_sum[company],
                    n_trigger_events=event_count[company],
                )
                for company in reciprocal_sum
                if weight_sum[company] > 0
            ]
            self.tracer.count("rank.companies_scored", len(scores))
        ordered = sorted(scores, key=lambda s: (-s.mrr, s.company))
        if self.event_log.enabled:
            for position, lead in enumerate(ordered, start=1):
                self.event_log.emit(
                    "company_ranked",
                    company=lead.company,
                    mrr=lead.mrr,
                    position=position,
                    n_trigger_events=lead.n_trigger_events,
                )
        return ordered
