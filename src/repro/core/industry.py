"""Industry profiles: driver sets and weights per industry (section 2).

"The set of sales drivers could be different for different industries.
As an example, mergers & acquisitions could be a sales driver for the
IT industry but may not be a sales driver for the steel industry."

An :class:`IndustryProfile` names the drivers relevant to one industry
and how strongly each indicates a purchase, and turns ranked trigger
events into an industry-specific lead list via the weighted Equation 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.ranking import CompanyRanker, CompanyScore, TriggerEvent
from repro.corpus.templates import (
    CHANGE_IN_MANAGEMENT,
    MERGERS_ACQUISITIONS,
    REVENUE_GROWTH,
)


@dataclass(frozen=True)
class IndustryProfile:
    """Drivers relevant to one industry, with importance weights."""

    industry_id: str
    name: str
    driver_weights: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.driver_weights:
            raise ValueError("an industry profile needs drivers")
        bad = [d for d, w in self.driver_weights.items() if w < 0]
        if bad:
            raise ValueError(f"negative driver weights: {bad}")

    @property
    def driver_ids(self) -> list[str]:
        return [d for d, w in self.driver_weights.items() if w > 0]

    def filter_events(
        self, events_by_driver: dict[str, Sequence[TriggerEvent]]
    ) -> dict[str, Sequence[TriggerEvent]]:
        """Keep only the drivers this industry cares about."""
        return {
            driver_id: events
            for driver_id, events in events_by_driver.items()
            if self.driver_weights.get(driver_id, 0.0) > 0
        }

    def lead_list(
        self, events_by_driver: dict[str, Sequence[TriggerEvent]]
    ) -> list[CompanyScore]:
        """Weighted Equation 2 over this industry's drivers only."""
        ranker = CompanyRanker(driver_weights=self.driver_weights)
        return ranker.score_companies(
            self.filter_events(events_by_driver)
        )


def it_industry() -> IndustryProfile:
    """The paper's running example: all three drivers matter, M&A most
    (system integration after a merger drives IT purchases)."""
    return IndustryProfile(
        industry_id="it",
        name="Information technology",
        driver_weights={
            MERGERS_ACQUISITIONS: 1.5,
            CHANGE_IN_MANAGEMENT: 1.0,
            REVENUE_GROWTH: 1.0,
        },
    )


def steel_industry() -> IndustryProfile:
    """The paper's counterexample: M&A is *not* a steel sales driver."""
    return IndustryProfile(
        industry_id="steel",
        name="Steel",
        driver_weights={
            MERGERS_ACQUISITIONS: 0.0,
            CHANGE_IN_MANAGEMENT: 0.5,
            REVENUE_GROWTH: 1.5,
        },
    )


_BUILTIN = {"it": it_industry, "steel": steel_industry}


def get_industry(industry_id: str) -> IndustryProfile:
    try:
        return _BUILTIN[industry_id]()
    except KeyError:
        raise KeyError(
            f"unknown industry {industry_id!r}; "
            f"builtins: {sorted(_BUILTIN)}"
        ) from None
