"""ETAP — the Electronic Trigger Alert Program, end to end.

The facade composes the three components of Figure 1:

1. **data gathering** — crawl the (synthetic) web into a document store
   and search index;
2. **event identification** — generate training data per sales driver
   (smart queries + filters), train the noise-tolerant classifiers, and
   score every snippet in the collection;
3. **ranking** — order trigger events by classifier score (optionally by
   semantic orientation for revenue growth) and aggregate per company
   with Equation 2.

Typical use::

    etap = Etap.from_web(build_web(3000))
    etap.gather()
    etap.train()
    events = etap.extract_trigger_events()
    leads = etap.company_report(events)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.classifier import TriggerEventClassifier, TrainingSummary
from repro.core.company import CompanyNormalizer
from repro.core.drivers import SalesDriver, builtin_drivers
from repro.core.lexicon import revenue_growth_lexicon
from repro.core.ranking import (
    CompanyRanker,
    CompanyScore,
    SemanticOrientationRanker,
    TriggerEvent,
    make_trigger_events,
    rank_events,
)
from repro.core.snippets import SnippetGenerator
from repro.core.training import (
    AnnotatedSnippet,
    NoisyPositiveReport,
    TrainingDataGenerator,
)
from repro.corpus.templates import REVENUE_GROWTH

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.industry import IndustryProfile
from repro.corpus.web import SyntheticWeb
from repro.features.abstraction import AbstractionPolicy
from repro.gather.pipeline import DataGatherer, GatherReport
from repro.gather.store import DocumentStore
from repro.ml.noise import ClassifierFactory
from repro.obs.drift import DriftBaseline, DriftMonitor, DriftThresholds
from repro.obs.events import NULL_EVENT_LOG, AnyEventLog
from repro.obs.timeseries import NULL_TELEMETRY, AnyTelemetry
from repro.obs.tracer import NULL_TRACER, AnyTracer
from repro.search.engine import SearchEngine
from repro.text.engine import AnnotationEngine
from repro.text.ner import NerConfig


@dataclass
class EtapConfig:
    """Tuning knobs for the whole pipeline (paper defaults)."""

    top_k_per_query: int = 200
    negative_sample_size: int = 6000
    snippet_window: int = 3
    max_denoise_iter: int = 2
    oversample_pure: int = 3
    trigger_threshold: float = 0.5
    ner: NerConfig = field(default_factory=NerConfig)
    policy: AbstractionPolicy = field(
        default_factory=AbstractionPolicy.paper_default
    )
    classifier_factory: ClassifierFactory | None = None
    max_crawl_pages: int = 100_000
    drift_thresholds: DriftThresholds = field(
        default_factory=DriftThresholds
    )
    #: How many snippets per extraction feed the OOV drift monitor.
    drift_token_sample: int = 500
    #: Ingestion fan-out width (``--workers`` on the CLI).  With
    #: ``workers > 1`` the initial gather partitions documents by
    #: content hash and each worker *process* owns its shard
    #: end-to-end (tokenize, vectorize, build its postings slice)
    #: before a deterministic merge — see :mod:`repro.gather.ingest`.
    #: ``workers=1`` runs the same shard code inline, warming the
    #: shared annotation cache for later stages; incremental
    #: re-gathers warm it with threads instead.  Output is
    #: bit-identical for every worker count.
    workers: int = 1


class Etap:
    """The assembled pipeline; one instance per corpus."""

    def __init__(
        self,
        store: DocumentStore,
        engine: SearchEngine,
        drivers: Sequence[SalesDriver] | None = None,
        config: EtapConfig | None = None,
        web: SyntheticWeb | None = None,
        tracer: AnyTracer | None = None,
        event_log: AnyEventLog | None = None,
        text_engine: AnnotationEngine | None = None,
        telemetry: AnyTelemetry | None = None,
    ) -> None:
        self.config = config or EtapConfig()
        self.drivers = list(drivers) if drivers else builtin_drivers()
        self.store = store
        self.engine = engine
        self._web = web
        self.tracer = tracer or NULL_TRACER
        self.event_log = event_log or NULL_EVENT_LOG
        self.telemetry = telemetry or NULL_TELEMETRY
        if engine.tracer is NULL_TRACER:
            engine.tracer = self.tracer
        if engine.event_log is NULL_EVENT_LOG:
            engine.event_log = self.event_log
        #: The annotate-once engine shared by every stage: gathering,
        #: training, extraction and serve rebuilds all read annotations,
        #: sentence splits, index terms and abstracted features from its
        #: content-keyed caches instead of recomputing them per stage.
        self.text_engine = text_engine or AnnotationEngine(self.config.ner)
        self.annotator = self.text_engine.annotator
        if engine.text_engine is None:
            engine.text_engine = self.text_engine
        self.training = TrainingDataGenerator(
            store=store,
            engine=engine,
            snippet_generator=SnippetGenerator(
                window=self.config.snippet_window,
                splitter=self.text_engine.sentences,
            ),
            tracer=self.tracer,
            text_engine=self.text_engine,
        )
        self.normalizer = CompanyNormalizer()
        self.classifiers: dict[str, TriggerEventClassifier] = {}
        self.noisy_reports: dict[str, NoisyPositiveReport] = {}
        self.drift_monitors: dict[str, DriftMonitor] = {}

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_web(
        cls,
        web: SyntheticWeb,
        drivers: Sequence[SalesDriver] | None = None,
        config: EtapConfig | None = None,
        tracer: AnyTracer | None = None,
        event_log: AnyEventLog | None = None,
        fetcher=None,
        telemetry: AnyTelemetry | None = None,
    ) -> "Etap":
        """Build an ETAP whose gather step crawls the given web.

        ``web`` may be a :class:`~repro.robustness.faults.FaultyWeb`;
        the gatherer then fetches through a
        :class:`~repro.robustness.fetcher.ResilientFetcher` (pass
        ``fetcher`` to override its retry/breaker policy) and the
        pipeline degrades gracefully instead of crashing.
        """
        config = config or EtapConfig()
        text_engine = AnnotationEngine(config.ner)
        gatherer = DataGatherer(
            web,
            max_pages=config.max_crawl_pages,
            tracer=tracer,
            event_log=event_log,
            fetcher=fetcher,
            text_engine=text_engine,
            workers=config.workers,
            telemetry=telemetry,
        )
        etap = cls(
            store=gatherer.store,
            engine=gatherer.engine,
            drivers=drivers,
            config=config,
            web=web,
            tracer=tracer,
            event_log=event_log,
            text_engine=text_engine,
            telemetry=telemetry,
        )
        etap._gatherer = gatherer
        return etap

    # -- component 1: data gathering -------------------------------------------

    def gather(self) -> GatherReport:
        """Crawl and index the web (no-op when built from a store)."""
        gatherer = getattr(self, "_gatherer", None)
        if gatherer is None:
            raise RuntimeError(
                "this Etap was built from an existing store; "
                "use Etap.from_web to enable gathering"
            )
        return gatherer.gather()

    # -- component 2: event identification -------------------------------------

    def train(
        self,
        pure_positive: dict[str, Sequence[AnnotatedSnippet]] | None = None,
        negative_seed: int = 17,
    ) -> dict[str, TrainingSummary]:
        """Generate training data and fit one classifier per driver."""
        if len(self.store) == 0:
            raise RuntimeError("gather() must run before train()")
        pure_positive = pure_positive or {}
        with self.tracer.span("train") as span:
            negatives = self.training.negative_sample(
                self.config.negative_sample_size, seed=negative_seed
            )
            summaries: dict[str, TrainingSummary] = {}
            for driver in self.drivers:
                noisy, report = self.training.noisy_positive(
                    driver, top_k_per_query=self.config.top_k_per_query
                )
                self.noisy_reports[driver.driver_id] = report
                classifier = TriggerEventClassifier(
                    driver_id=driver.driver_id,
                    policy=self.config.policy,
                    classifier_factory=self.config.classifier_factory,
                    max_denoise_iter=self.config.max_denoise_iter,
                    oversample_pure=self.config.oversample_pure,
                    tracer=self.tracer,
                    event_log=self.event_log,
                    text_engine=self.text_engine,
                )
                classifier.fit(
                    noisy_positive=noisy,
                    negative=negatives,
                    pure_positive=tuple(
                        pure_positive.get(driver.driver_id, ())
                    ),
                )
                self.classifiers[driver.driver_id] = classifier
                summaries[driver.driver_id] = classifier.summary
                if self.event_log.enabled:
                    self._install_drift_monitor(
                        classifier, list(noisy) + list(negatives)
                    )
            span.add_items(
                sum(s.n_noisy_positive for s in summaries.values())
            )
        return summaries

    def score_snippets(
        self, driver_id: str, items: Sequence[AnnotatedSnippet]
    ):
        """Posterior trigger probabilities for prepared snippets."""
        return self._classifier(driver_id).score(items)

    def extract_trigger_events(
        self,
        threshold: float | None = None,
        since_day: int | None = None,
    ) -> dict[str, list[TriggerEvent]]:
        """Scan the collection and return ranked events per driver.

        ``since_day`` restricts the scan to documents published on or
        after that simulated-calendar day — a freshness window, so old
        pages don't resurface as leads.
        """
        if not self.classifiers:
            raise RuntimeError("train() must run before extraction")
        threshold = (
            self.config.trigger_threshold if threshold is None else threshold
        )
        with self.tracer.span("extract") as extract_span:
            all_items: list[AnnotatedSnippet] = []
            with self.tracer.span("extract.annotate") as annotate_span:
                for doc_id in self.store.doc_ids():
                    if since_day is not None:
                        published = self.store.get(doc_id).metadata.get(
                            "published_day"
                        )
                        if published is not None and published < since_day:
                            continue
                    snippets = self.training.snippets_of_document(doc_id)
                    all_items.extend(
                        self.training.annotate_snippets(snippets)
                    )
                annotate_span.add_items(len(all_items))

            events: dict[str, list[TriggerEvent]] = {}
            for driver in self.drivers:
                with self.tracer.span(
                    f"extract.score[{driver.driver_id}]"
                ) as score_span:
                    scores = self.score_snippets(
                        driver.driver_id, all_items
                    )
                    flagged = [
                        (item, score)
                        for item, score in zip(all_items, scores)
                        if score >= threshold
                    ]
                    driver_events = make_trigger_events(
                        driver.driver_id,
                        [item for item, _ in flagged],
                        [score for _, score in flagged],
                        normalizer=self.normalizer,
                        url_of=self.url_of,
                    )
                    events[driver.driver_id] = rank_events(driver_events)
                    score_span.add_items(len(all_items))
                self.tracer.count(
                    "extract.trigger_events", len(flagged)
                )
                self.tracer.count(
                    f"extract.scored[{driver.driver_id}]", len(all_items)
                )
                self.tracer.count(
                    f"extract.flagged[{driver.driver_id}]", len(flagged)
                )
                if self.event_log.enabled:
                    self._record_extraction(
                        driver.driver_id,
                        events[driver.driver_id],
                        scores,
                        all_items,
                    )
            extract_span.add_items(len(all_items))
        return events

    # -- component 3: ranking ----------------------------------------------------

    def rank_by_semantic_orientation(
        self, events: Sequence[TriggerEvent]
    ) -> list[TriggerEvent]:
        """Figure 8 ordering for the revenue-growth driver."""
        ranker = SemanticOrientationRanker(revenue_growth_lexicon())
        return ranker.rank(events)

    def company_report(
        self,
        events_by_driver: dict[str, list[TriggerEvent]],
        industry: "IndustryProfile | None" = None,
    ) -> list[CompanyScore]:
        """Equation 2's company-level lead list.

        With an :class:`~repro.core.industry.IndustryProfile`, drivers
        are filtered and weighted per that industry (section 2's
        IT-vs-steel distinction).
        """
        if industry is not None:
            return industry.lead_list(events_by_driver)
        return CompanyRanker(
            tracer=self.tracer, event_log=self.event_log
        ).score_companies(events_by_driver)

    # -- helpers ------------------------------------------------------------------

    def url_of(self, doc_id: str) -> str:
        """URL of a stored document; empty when unknown.

        The provenance join key threaded through every
        :class:`TriggerEvent` built by this facade.
        """
        if doc_id in self.store:
            return self.store.get(doc_id).url
        return ""

    def _install_drift_monitor(
        self,
        classifier: TriggerEventClassifier,
        training_items,
    ) -> None:
        """Freeze a train-time baseline for the drift monitors."""
        if not training_items:
            return
        baseline = DriftBaseline.from_training(
            driver_id=classifier.driver_id,
            scores=classifier.score(training_items),
            vocabulary=classifier.vectorizer.vocabulary,
            threshold=self.config.trigger_threshold,
        )
        self.drift_monitors[classifier.driver_id] = DriftMonitor(
            baseline, thresholds=self.config.drift_thresholds
        )

    def _record_extraction(
        self,
        driver_id: str,
        ranked_events: list[TriggerEvent],
        scores,
        all_items,
    ) -> None:
        """Flight-record one driver's extraction pass.

        Emits ``snippet_scored`` + ``trigger_classified`` (with feature
        evidence) per ranked event and runs the driver's drift monitor
        over the full score batch.  Only called when the recorder is on,
        so the explain/drift cost never touches the default path.
        """
        classifier = self._classifier(driver_id)
        for event in ranked_events:
            self.event_log.emit(
                "snippet_scored",
                lineage_id=event.doc_id,
                snippet_id=event.snippet_id,
                doc_id=event.doc_id,
                driver_id=driver_id,
                score=event.score,
            )
            self.event_log.emit(
                "trigger_classified",
                lineage_id=event.doc_id,
                snippet_id=event.snippet_id,
                doc_id=event.doc_id,
                driver_id=driver_id,
                score=event.score,
                rank=event.rank,
                features=classifier.explain(event.item),
                companies=list(event.companies),
                text=event.text,
                url=event.url,
            )
        monitor = self.drift_monitors.get(driver_id)
        if monitor is None:
            return
        sample = all_items[: self.config.drift_token_sample]
        token_lists = [classifier.features_of(item) for item in sample]
        for report in monitor.check(list(scores), token_lists):
            self.event_log.emit(
                "drift_warning",
                monitor=report.monitor,
                value=report.value,
                threshold=report.threshold,
                driver_id=report.driver_id,
                detail=report.detail,
            )

    def _classifier(self, driver_id: str) -> TriggerEventClassifier:
        try:
            return self.classifiers[driver_id]
        except KeyError:
            raise KeyError(
                f"no trained classifier for {driver_id!r}; "
                f"trained: {sorted(self.classifiers)}"
            ) from None

    _gatherer: DataGatherer | None = None
