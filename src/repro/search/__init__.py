"""Search substrate: inverted index, ranking, engine, focused crawler."""

from repro.search.crawler import (
    BUSINESS_KEYWORDS,
    CrawlResult,
    FocusedCrawler,
    business_relevance,
)
from repro.search.engine import (
    ParsedQuery,
    SearchEngine,
    SearchResult,
    build_engine_from_pairs,
    parse_query,
)
from repro.search.index import InvertedIndex, Posting, normalize_term
from repro.search.scoring import Bm25, TfIdf
from repro.search.snippeting import ResultSnippet, best_snippet

__all__ = [
    "BUSINESS_KEYWORDS",
    "Bm25",
    "CrawlResult",
    "FocusedCrawler",
    "InvertedIndex",
    "ParsedQuery",
    "Posting",
    "ResultSnippet",
    "SearchEngine",
    "SearchResult",
    "TfIdf",
    "best_snippet",
    "build_engine_from_pairs",
    "business_relevance",
    "normalize_term",
    "parse_query",
]
