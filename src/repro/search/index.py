"""Inverted index over the synthetic web.

The index stores, per term, a postings list of ``(doc_key, positions)``
so the engine can answer both ranked bag-of-words queries and exact
phrase queries (the paper's *smart queries* such as ``"new ceo"`` and
``"IBM Daksh"`` are phrase queries).
"""

from __future__ import annotations

import json
from collections import defaultdict
from dataclasses import dataclass, field
from pathlib import Path

from repro.text.tokenizer import tokenize_words


def normalize_term(term: str) -> str:
    """Case-fold a query/document term for indexing."""
    return term.lower()


@dataclass
class Posting:
    """Occurrences of one term in one document."""

    doc_key: str
    positions: list[int] = field(default_factory=list)

    @property
    def term_frequency(self) -> int:
        return len(self.positions)


class InvertedIndex:
    """Positional inverted index with incremental document addition."""

    def __init__(self) -> None:
        self._postings: dict[str, dict[str, Posting]] = defaultdict(dict)
        self._doc_lengths: dict[str, int] = {}
        self._titles: dict[str, str] = {}

    # -- construction --------------------------------------------------------

    def add_document(self, doc_key: str, text: str, title: str = "") -> None:
        """Index one document; re-adding a key replaces it."""
        if doc_key in self._doc_lengths:
            self.remove_document(doc_key)
        terms = [normalize_term(word) for word in tokenize_words(text)]
        self._doc_lengths[doc_key] = len(terms)
        self._titles[doc_key] = title
        for position, term in enumerate(terms):
            per_doc = self._postings[term]
            posting = per_doc.get(doc_key)
            if posting is None:
                posting = Posting(doc_key)
                per_doc[doc_key] = posting
            posting.positions.append(position)

    def remove_document(self, doc_key: str) -> None:
        """Drop one document from the index (no-op if absent)."""
        if doc_key not in self._doc_lengths:
            return
        del self._doc_lengths[doc_key]
        self._titles.pop(doc_key, None)
        empty_terms = []
        for term, per_doc in self._postings.items():
            per_doc.pop(doc_key, None)
            if not per_doc:
                empty_terms.append(term)
        for term in empty_terms:
            del self._postings[term]

    # -- statistics ------------------------------------------------------------

    @property
    def n_docs(self) -> int:
        return len(self._doc_lengths)

    @property
    def total_terms(self) -> int:
        return sum(self._doc_lengths.values())

    @property
    def average_doc_length(self) -> float:
        if not self._doc_lengths:
            return 0.0
        return self.total_terms / self.n_docs

    def document_frequency(self, term: str) -> int:
        return len(self._postings.get(normalize_term(term), {}))

    def doc_length(self, doc_key: str) -> int:
        return self._doc_lengths.get(doc_key, 0)

    def title(self, doc_key: str) -> str:
        return self._titles.get(doc_key, "")

    def doc_keys(self) -> list[str]:
        return list(self._doc_lengths)

    # -- lookups ------------------------------------------------------------

    def postings(self, term: str) -> dict[str, Posting]:
        """All postings for a term (empty dict if unseen)."""
        return self._postings.get(normalize_term(term), {})

    # -- persistence ----------------------------------------------------------

    def save_json(self, path: str | Path) -> None:
        """Write the full index (postings, lengths, titles) to JSON."""
        record = {
            "doc_lengths": self._doc_lengths,
            "titles": self._titles,
            "postings": {
                term: {
                    doc_key: posting.positions
                    for doc_key, posting in per_doc.items()
                }
                for term, per_doc in self._postings.items()
            },
        }
        Path(path).write_text(json.dumps(record), encoding="utf-8")

    @classmethod
    def load_json(cls, path: str | Path) -> "InvertedIndex":
        """Load an index written by :meth:`save_json`."""
        record = json.loads(Path(path).read_text(encoding="utf-8"))
        index = cls()
        index._doc_lengths = dict(record["doc_lengths"])
        index._titles = dict(record["titles"])
        for term, per_doc in record["postings"].items():
            index._postings[term] = {
                doc_key: Posting(doc_key, list(positions))
                for doc_key, positions in per_doc.items()
            }
        return index

    def phrase_docs(self, phrase: list[str]) -> dict[str, int]:
        """Documents containing ``phrase`` as consecutive terms.

        Returns ``doc_key -> occurrence count``.  Implemented by
        intersecting positional postings.
        """
        if not phrase:
            return {}
        terms = [normalize_term(term) for term in phrase]
        first = self.postings(terms[0])
        if len(terms) == 1:
            return {key: p.term_frequency for key, p in first.items()}
        result: dict[str, int] = {}
        rest = [self.postings(term) for term in terms[1:]]
        for doc_key, posting in first.items():
            if any(doc_key not in per_doc for per_doc in rest):
                continue
            count = 0
            follower_positions = [
                set(per_doc[doc_key].positions) for per_doc in rest
            ]
            for position in posting.positions:
                if all(
                    position + offset + 1 in positions
                    for offset, positions in enumerate(follower_positions)
                ):
                    count += 1
            if count:
                result[doc_key] = count
        return result
