"""Inverted index over the synthetic web.

The index stores, per term, a postings list of ``(doc_key, positions)``
so the engine can answer both ranked bag-of-words queries and exact
phrase queries (the paper's *smart queries* such as ``"new ceo"`` and
``"IBM Daksh"`` are phrase queries).

Ingestion-path design (the continuous-monitoring hot loop):

* **array-backed postings** — token positions live in compact
  ``array('I')`` buffers, not lists of boxed ints;
* **delta document addition** — the index keeps a per-document term
  registry, so removing or replacing one document touches only that
  document's terms instead of scanning the whole vocabulary;
* **batched rebuild** — :meth:`add_documents` /
  :meth:`from_documents` ingest ``(doc_key, text, title)`` triples in
  one pass, and :meth:`clone` makes a cheap copy-on-write-style
  duplicate (shared immutable postings) so the serve layer can build
  the next index generation from the previous one plus a delta rather
  than re-tokenizing the corpus (see
  :class:`repro.serve.shards.ShardedIndex`).

Tokenization can be delegated to a shared
:class:`~repro.text.engine.AnnotationEngine` by passing precomputed
``terms`` to :meth:`add_document`; the engine guarantees each document
is tokenized at most once across gather, serve and rebuild.
"""

from __future__ import annotations

import json
from array import array
from collections import defaultdict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro.text.tokenizer import tokenize_words


def normalize_term(term: str) -> str:
    """Case-fold a query/document term for indexing."""
    return term.lower()


def _positions_array() -> "array[int]":
    return array("I")


@dataclass
class Posting:
    """Occurrences of one term in one document.

    ``positions`` is an unsigned-int array; it is append-only while the
    owning document is being indexed and immutable afterwards (clones
    share it).
    """

    doc_key: str
    positions: "array[int]" = field(default_factory=_positions_array)

    def __post_init__(self) -> None:
        if not isinstance(self.positions, array):
            self.positions = array("I", self.positions)

    @property
    def term_frequency(self) -> int:
        return len(self.positions)


class FlatPostings:
    """Immutable flat-buffer postings over a whole corpus.

    The entire token stream lives in four numpy arrays — term ids
    sorted by ``(term, global doc order)``, the matching doc ordinals
    and in-doc positions, and per-term segment starts — plus the raw
    doc-major stream for per-document term lookups.  One stable
    ``lexsort`` over the merged shard streams replaces the per-token
    Python dict loop of :meth:`InvertedIndex.add_document`, and the
    arrays pickle as flat buffers between ingestion processes.

    An :class:`InvertedIndex` adopts a ``FlatPostings`` wholesale
    (:meth:`InvertedIndex.adopt_flat`) and materializes classic
    per-term ``{doc_key: Posting}`` dicts lazily on first access, so
    query-visible behaviour is exactly the classic index's.
    """

    __slots__ = (
        "vocab",
        "term_ids",
        "doc_keys",
        "doc_ordinals",
        "titles",
        "token_terms",
        "doc_ptr",
        "sorted_doc",
        "sorted_pos",
        "term_starts",
        "df",
    )

    def __init__(
        self,
        vocab: list[str],
        doc_keys: list[str],
        titles: list[str],
        token_terms: "np.ndarray",
        doc_ptr: "np.ndarray",
    ) -> None:
        self.vocab = vocab
        self.term_ids = {term: tid for tid, term in enumerate(vocab)}
        self.doc_keys = doc_keys
        self.doc_ordinals = {key: i for i, key in enumerate(doc_keys)}
        self.titles = titles
        self.token_terms = token_terms
        self.doc_ptr = doc_ptr
        lengths = np.diff(doc_ptr)
        token_doc = np.repeat(
            np.arange(len(doc_keys), dtype=np.int32), lengths
        )
        token_pos = np.arange(len(token_terms), dtype=np.int64)
        token_pos -= np.repeat(doc_ptr[:-1], lengths)
        # Stable sort by term: within a term, tokens keep global stream
        # order, i.e. ascending doc ordinal then ascending position —
        # exactly the order the serial per-document loop would have
        # appended them.  This is the merge-determinism contract.
        order = np.argsort(token_terms, kind="stable")
        sorted_terms = token_terms[order]
        self.sorted_doc = token_doc[order]
        self.sorted_pos = token_pos[order].astype(np.uint32)
        self.term_starts = np.searchsorted(
            sorted_terms, np.arange(len(vocab) + 1)
        )
        if len(sorted_terms):
            change = np.empty(len(sorted_terms), dtype=bool)
            change[0] = True
            change[1:] = (sorted_terms[1:] != sorted_terms[:-1]) | (
                self.sorted_doc[1:] != self.sorted_doc[:-1]
            )
            self.df = np.add.reduceat(change, self.term_starts[:-1])
        else:
            self.df = np.zeros(len(vocab), dtype=np.int64)

    @property
    def n_docs(self) -> int:
        return len(self.doc_keys)

    def doc_length(self, ordinal: int) -> int:
        return int(self.doc_ptr[ordinal + 1] - self.doc_ptr[ordinal])

    def document_frequency(self, term: str) -> int:
        tid = self.term_ids.get(term)
        return int(self.df[tid]) if tid is not None else 0

    def doc_term_ids(self, ordinal: int) -> "np.ndarray":
        """Distinct term ids of one document (sorted by id)."""
        return np.unique(
            self.token_terms[self.doc_ptr[ordinal]:self.doc_ptr[ordinal + 1]]
        )

    def materialize(self, term: str) -> dict[str, Posting]:
        """Classic ``{doc_key: Posting}`` postings for one term.

        Documents appear in global ingest order and positions ascend,
        matching the serial index bit for bit.
        """
        tid = self.term_ids.get(term)
        if tid is None:
            return {}
        start, end = self.term_starts[tid], self.term_starts[tid + 1]
        seg_doc = self.sorted_doc[start:end]
        seg_pos = self.sorted_pos[start:end]
        bounds = np.flatnonzero(seg_doc[1:] != seg_doc[:-1]) + 1
        starts = (0, *bounds.tolist(), len(seg_doc))
        per_doc: dict[str, Posting] = {}
        for i in range(len(starts) - 1):
            lo, hi = starts[i], starts[i + 1]
            positions = array("I")
            positions.frombytes(seg_pos[lo:hi].tobytes())
            doc_key = self.doc_keys[seg_doc[lo]]
            per_doc[doc_key] = Posting(doc_key, positions)
        return per_doc


class InvertedIndex:
    """Positional inverted index with incremental document addition."""

    def __init__(self) -> None:
        self._postings: dict[str, dict[str, Posting]] = defaultdict(dict)
        self._doc_lengths: dict[str, int] = {}
        self._titles: dict[str, str] = {}
        #: Distinct terms per document — the delta-removal registry:
        #: dropping a document touches exactly these postings rather
        #: than every term in the vocabulary.
        self._doc_terms: dict[str, tuple[str, ...]] = {}
        #: Flat-buffer backing adopted from sharded ingestion; terms
        #: still in ``_flat_pending`` materialize on first access.
        self._flat: FlatPostings | None = None
        self._flat_pending: set[str] = set()

    # -- construction --------------------------------------------------------

    def add_document(
        self,
        doc_key: str,
        text: str,
        title: str = "",
        terms: Sequence[str] | None = None,
    ) -> None:
        """Index one document; re-adding a key replaces it.

        ``terms`` are pre-normalized index terms (e.g. from the shared
        annotation engine); when omitted the text is tokenized here.
        """
        if doc_key in self._doc_lengths:
            self.remove_document(doc_key)
        if terms is None:
            terms = [word.lower() for word in tokenize_words(text)]
        self._doc_lengths[doc_key] = len(terms)
        self._titles[doc_key] = title
        pending = self._flat_pending
        postings = self._postings
        doc_postings: dict[str, Posting] = {}
        for position, term in enumerate(terms):
            posting = doc_postings.get(term)
            if posting is None:
                if term in pending:
                    # Flat-backed term: materialize the existing docs
                    # first so this document appends after them, same
                    # as it would have in a fully serial build.
                    self._materialize_term(term)
                posting = Posting(doc_key)
                doc_postings[term] = posting
                postings[term][doc_key] = posting
            posting.positions.append(position)
        self._doc_terms[doc_key] = tuple(doc_postings)

    def add_documents(
        self,
        documents: Iterable[tuple[str, str, str]],
        terms_of=None,
    ) -> int:
        """Batch-ingest ``(doc_key, text, title)`` triples.

        ``terms_of`` is an optional ``text -> terms`` callable (the
        annotation engine's ``index_terms``) applied per document.
        Returns the number of documents added.
        """
        n_added = 0
        for doc_key, text, title in documents:
            self.add_document(
                doc_key,
                text,
                title,
                terms=terms_of(text) if terms_of is not None else None,
            )
            n_added += 1
        return n_added

    @classmethod
    def from_documents(
        cls,
        documents: Iterable[tuple[str, str, str]],
        terms_of=None,
    ) -> "InvertedIndex":
        """Batched rebuild: a fresh index over the given documents."""
        index = cls()
        index.add_documents(documents, terms_of=terms_of)
        return index

    def adopt_flat(self, flat: FlatPostings) -> None:
        """Back an empty index with flat-buffer postings.

        Document lengths and titles install immediately (in the flat
        corpus's ingest order); per-term postings dicts materialize
        lazily on first access via :meth:`postings` — queries touching
        a handful of terms never pay for the whole vocabulary.
        """
        if self._doc_lengths:
            raise ValueError("adopt_flat requires an empty index")
        self._flat = flat
        self._flat_pending = set(flat.vocab)
        for ordinal, doc_key in enumerate(flat.doc_keys):
            self._doc_lengths[doc_key] = flat.doc_length(ordinal)
            self._titles[doc_key] = flat.titles[ordinal]

    def _materialize_term(self, term: str) -> dict[str, Posting]:
        """Materialize one flat-backed term into ``_postings``."""
        self._flat_pending.discard(term)
        per_doc = self._flat.materialize(term)  # type: ignore[union-attr]
        if per_doc:
            self._postings[term] = per_doc
        return per_doc

    def _flat_doc_terms(self, doc_key: str) -> tuple[str, ...]:
        flat = self._flat
        ordinal = flat.doc_ordinals.get(doc_key) if flat else None
        if ordinal is None:
            return ()
        return tuple(
            flat.vocab[tid] for tid in flat.doc_term_ids(ordinal)
        )

    def remove_document(self, doc_key: str) -> None:
        """Drop one document from the index (no-op if absent).

        Cost is proportional to the document's own vocabulary, not the
        index's — the per-document term registry remembers exactly
        which postings to touch.
        """
        if doc_key not in self._doc_lengths:
            return
        del self._doc_lengths[doc_key]
        self._titles.pop(doc_key, None)
        postings = self._postings
        doc_terms = self._doc_terms.pop(doc_key, None)
        if doc_terms is None:
            # Flat-backed document: materialize every term it appears
            # in before popping, so a later lazy materialization can
            # never resurrect the removed document.
            doc_terms = self._flat_doc_terms(doc_key)
            for term in doc_terms:
                if term in self._flat_pending:
                    self._materialize_term(term)
        for term in doc_terms:
            per_doc = postings.get(term)
            if per_doc is None:
                continue
            per_doc.pop(doc_key, None)
            if not per_doc:
                del postings[term]

    def clone(self) -> "InvertedIndex":
        """A structurally independent copy sharing immutable postings.

        The two-level postings mapping is copied (so adds/removes on
        either index never affect the other) while the per-(term, doc)
        :class:`Posting` objects — immutable once their document is
        indexed — are shared.  This makes "previous generation + delta"
        index builds cheap: no re-tokenization, no position copying.
        """
        twin = InvertedIndex()
        twin._postings = defaultdict(
            dict,
            {
                term: dict(per_doc)
                for term, per_doc in self._postings.items()
            },
        )
        twin._doc_lengths = dict(self._doc_lengths)
        twin._titles = dict(self._titles)
        twin._doc_terms = dict(self._doc_terms)
        # The flat backing is immutable, so clones share it; each clone
        # tracks its own not-yet-materialized term set.
        twin._flat = self._flat
        twin._flat_pending = set(self._flat_pending)
        return twin

    # -- statistics ------------------------------------------------------------

    @property
    def n_docs(self) -> int:
        return len(self._doc_lengths)

    @property
    def total_terms(self) -> int:
        return sum(self._doc_lengths.values())

    @property
    def average_doc_length(self) -> float:
        if not self._doc_lengths:
            return 0.0
        return self.total_terms / self.n_docs

    def document_frequency(self, term: str) -> int:
        term = normalize_term(term)
        if term in self._flat_pending:
            return self._flat.document_frequency(term)  # type: ignore[union-attr]
        return len(self._postings.get(term, {}))

    def doc_length(self, doc_key: str) -> int:
        return self._doc_lengths.get(doc_key, 0)

    def title(self, doc_key: str) -> str:
        return self._titles.get(doc_key, "")

    def doc_keys(self) -> list[str]:
        return list(self._doc_lengths)

    def __contains__(self, doc_key: str) -> bool:
        return doc_key in self._doc_lengths

    # -- lookups ------------------------------------------------------------

    def postings(self, term: str) -> dict[str, Posting]:
        """All postings for a term (empty dict if unseen)."""
        term = normalize_term(term)
        if term in self._flat_pending:
            return self._materialize_term(term)
        return self._postings.get(term, {})

    def _materialize_all(self) -> None:
        if not self._flat_pending:
            return
        for term in self._flat.vocab:  # type: ignore[union-attr]
            if term in self._flat_pending:
                self._materialize_term(term)

    # -- persistence ----------------------------------------------------------

    def save_json(self, path: str | Path) -> None:
        """Write the full index (postings, lengths, titles) to JSON."""
        self._materialize_all()
        record = {
            "doc_lengths": self._doc_lengths,
            "titles": self._titles,
            "postings": {
                term: {
                    doc_key: list(posting.positions)
                    for doc_key, posting in per_doc.items()
                }
                for term, per_doc in self._postings.items()
            },
        }
        Path(path).write_text(json.dumps(record), encoding="utf-8")

    @classmethod
    def load_json(cls, path: str | Path) -> "InvertedIndex":
        """Load an index written by :meth:`save_json`."""
        record = json.loads(Path(path).read_text(encoding="utf-8"))
        index = cls()
        index._doc_lengths = dict(record["doc_lengths"])
        index._titles = dict(record["titles"])
        doc_terms: dict[str, list[str]] = defaultdict(list)
        for term, per_doc in record["postings"].items():
            index._postings[term] = {
                doc_key: Posting(doc_key, array("I", positions))
                for doc_key, positions in per_doc.items()
            }
            for doc_key in per_doc:
                doc_terms[doc_key].append(term)
        index._doc_terms = {
            doc_key: tuple(terms) for doc_key, terms in doc_terms.items()
        }
        return index

    def phrase_docs(self, phrase: list[str]) -> dict[str, int]:
        """Documents containing ``phrase`` as consecutive terms.

        Returns ``doc_key -> occurrence count``.  Implemented by
        intersecting positional postings.
        """
        if not phrase:
            return {}
        terms = [normalize_term(term) for term in phrase]
        first = self.postings(terms[0])
        if len(terms) == 1:
            return {key: p.term_frequency for key, p in first.items()}
        result: dict[str, int] = {}
        rest = [self.postings(term) for term in terms[1:]]
        for doc_key, posting in first.items():
            if any(doc_key not in per_doc for per_doc in rest):
                continue
            count = 0
            follower_positions = [
                set(per_doc[doc_key].positions) for per_doc in rest
            ]
            for position in posting.positions:
                if all(
                    position + offset + 1 in positions
                    for offset, positions in enumerate(follower_positions)
                ):
                    count += 1
            if count:
                result[doc_key] = count
        return result
