"""Ranking functions for the search engine: TF-IDF and Okapi BM25.

ETAP's smart-query step only needs "a large number of highly ranked
documents, most of them relevant" (section 3.3.1); BM25 over the
synthetic corpus provides exactly that, with TF-IDF kept as a simpler
alternative for comparison in the ablation benches.
"""

from __future__ import annotations

import math
from typing import Protocol

from repro.search.index import InvertedIndex


class RankingFunction(Protocol):
    """Scores one document for one query term."""

    def score_term(
        self, index: InvertedIndex, term: str, doc_key: str, tf: int
    ) -> float:
        """Contribution of ``term`` (with frequency ``tf``) to the score."""


class TfIdf:
    """Classic lnc.ltc-style TF-IDF term scoring."""

    def score_term(
        self, index: InvertedIndex, term: str, doc_key: str, tf: int
    ) -> float:
        df = index.document_frequency(term)
        if df == 0 or tf == 0:
            return 0.0
        idf = math.log((1 + index.n_docs) / (1 + df)) + 1.0
        length = max(index.doc_length(doc_key), 1)
        return (1 + math.log(tf)) * idf / math.sqrt(length)


class Bm25:
    """Okapi BM25 with the conventional k1/b defaults."""

    def __init__(self, k1: float = 1.2, b: float = 0.75) -> None:
        if k1 < 0:
            raise ValueError("k1 must be non-negative")
        if not 0 <= b <= 1:
            raise ValueError("b must be in [0, 1]")
        self.k1 = k1
        self.b = b

    def score_term(
        self, index: InvertedIndex, term: str, doc_key: str, tf: int
    ) -> float:
        df = index.document_frequency(term)
        if df == 0 or tf == 0:
            return 0.0
        n = index.n_docs
        idf = math.log(1 + (n - df + 0.5) / (df + 0.5))
        length = index.doc_length(doc_key)
        avg_length = index.average_doc_length or 1.0
        denom = tf + self.k1 * (
            1 - self.b + self.b * length / avg_length
        )
        return idf * tf * (self.k1 + 1) / denom
