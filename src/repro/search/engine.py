"""Ranked search engine over an indexed corpus (the "Google" substitute).

Supports the query shapes ETAP's training-data generation uses
(section 3.3.1):

* quoted phrases — ``'"new ceo"'`` restricts results to documents that
  contain the exact phrase, mirroring quoted Google queries;
* plain keyword queries — ``'mergers and acquisitions'`` ranks by BM25
  over all terms (the paper's example of a *naive* query whose result
  list is noisy);
* mixed queries — phrases and loose keywords combine; phrase matches are
  required, keywords contribute to the ranking.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.obs.events import NULL_EVENT_LOG, AnyEventLog
from repro.obs.tracer import NULL_TRACER, AnyTracer
from repro.search.index import InvertedIndex, normalize_term
from repro.search.scoring import Bm25, RankingFunction
from repro.text.engine import AnnotationEngine
from repro.text.tokenizer import tokenize_words

_PHRASE_RE = re.compile(r'"([^"]+)"')


@dataclass(frozen=True, slots=True)
class SearchResult:
    """One ranked hit."""

    doc_key: str
    score: float
    title: str


@dataclass(frozen=True)
class ParsedQuery:
    """A query split into exact phrases and loose terms."""

    phrases: tuple[tuple[str, ...], ...]
    terms: tuple[str, ...]

    @property
    def all_terms(self) -> tuple[str, ...]:
        flat = [term for phrase in self.phrases for term in phrase]
        return tuple(flat) + self.terms


def parse_query(query: str) -> ParsedQuery:
    """Split a query string into quoted phrases and remaining keywords."""
    phrases: list[tuple[str, ...]] = []
    remainder = query
    for match in _PHRASE_RE.finditer(query):
        words = tuple(
            normalize_term(word) for word in tokenize_words(match.group(1))
        )
        if words:
            phrases.append(words)
    remainder = _PHRASE_RE.sub(" ", remainder)
    terms = tuple(
        normalize_term(word)
        for word in tokenize_words(remainder)
        if word.isalnum()
    )
    return ParsedQuery(tuple(phrases), terms)


class SearchEngine:
    """BM25-ranked retrieval with phrase constraints."""

    def __init__(
        self,
        index: InvertedIndex | None = None,
        ranking: RankingFunction | None = None,
        phrase_boost: float = 2.0,
        tracer: AnyTracer | None = None,
        event_log: AnyEventLog | None = None,
        text_engine: AnnotationEngine | None = None,
    ) -> None:
        self.index = index or InvertedIndex()
        self.ranking = ranking or Bm25()
        self.phrase_boost = phrase_boost
        self.tracer = tracer or NULL_TRACER
        self.event_log = event_log or NULL_EVENT_LOG
        #: Shared annotate-once engine: index terms come from its
        #: content-keyed cache, so a document tokenized anywhere in the
        #: pipeline is never re-tokenized when it reaches the index.
        self.text_engine = text_engine

    def add_document(self, doc_key: str, text: str, title: str = "") -> None:
        terms = (
            self.text_engine.index_terms(text)
            if self.text_engine is not None
            else None
        )
        self.index.add_document(doc_key, text, title, terms=terms)
        self.tracer.count("engine.documents_indexed")

    def clone(self) -> "SearchEngine":
        """A search engine over a :meth:`InvertedIndex.clone` of the index.

        Ranking, boosts and the shared text engine carry over; the
        clone's index can be extended or pruned without touching this
        engine (the serve layer builds delta generations this way).
        """
        return SearchEngine(
            index=self.index.clone(),
            ranking=self.ranking,
            phrase_boost=self.phrase_boost,
            tracer=self.tracer,
            event_log=self.event_log,
            text_engine=self.text_engine,
        )

    def search(self, query: str, top_k: int = 10) -> list[SearchResult]:
        """Run ``query`` and return the ``top_k`` ranked results.

        Degenerate queries are answered, never raised on: a query that
        normalizes to zero terms (empty/whitespace/punctuation-only
        input, or only empty quoted phrases) and a non-positive
        ``top_k`` both return an empty result list.  The serve layer
        relies on this — an analyst's garbage query must produce an
        empty page, not a 500.
        """
        if top_k <= 0:
            return []
        with self.tracer.timed("engine.search_seconds"):
            results = self._search(query, top_k)
        self.tracer.count("engine.searches")
        self.tracer.observe("engine.results_per_search", len(results))
        self.event_log.emit(
            "search_executed", query=query, n_results=len(results)
        )
        return results

    def _search(self, query: str, top_k: int) -> list[SearchResult]:
        parsed = parse_query(query)
        if not parsed.all_terms:
            return []

        candidates: set[str] | None = None
        phrase_hits: dict[str, float] = {}
        for phrase in parsed.phrases:
            matches = self.index.phrase_docs(list(phrase))
            if candidates is None:
                candidates = set(matches)
            else:
                candidates &= set(matches)
            for doc_key, count in matches.items():
                phrase_hits[doc_key] = (
                    phrase_hits.get(doc_key, 0.0)
                    + self.phrase_boost * count
                )
        if parsed.phrases and not candidates:
            return []

        scores: dict[str, float] = {}
        for term in parsed.all_terms:
            for doc_key, posting in self.index.postings(term).items():
                if candidates is not None and doc_key not in candidates:
                    continue
                scores[doc_key] = scores.get(doc_key, 0.0) + (
                    self.ranking.score_term(
                        self.index, term, doc_key, posting.term_frequency
                    )
                )
        for doc_key, bonus in phrase_hits.items():
            if candidates is None or doc_key in candidates:
                scores[doc_key] = scores.get(doc_key, 0.0) + bonus

        ranked = sorted(
            scores.items(), key=lambda item: (-item[1], item[0])
        )
        return [
            SearchResult(doc_key, score, self.index.title(doc_key))
            for doc_key, score in ranked[:top_k]
        ]


def build_engine_from_pairs(
    pairs: list[tuple[str, str]],
    ranking: RankingFunction | None = None,
) -> SearchEngine:
    """Build an engine from ``(doc_key, text)`` pairs."""
    engine = SearchEngine(ranking=ranking)
    for doc_key, text in pairs:
        engine.add_document(doc_key, text)
    return engine
