"""Focused crawler over the synthetic web (eShopMonitor substitute).

The paper's data-gathering component [2] performs a *focused* crawl: it
prioritizes links likely to lead to business-relevant pages.  This
crawler implements best-first frontier expansion with a pluggable page
scorer, plus politeness-style bounds (page budget, depth limit) so crawls
terminate predictably.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.corpus.web import FRONT_PAGE_URL, Page, SyntheticWeb
from repro.obs.events import NULL_EVENT_LOG, AnyEventLog
from repro.obs.tracer import NULL_TRACER, AnyTracer
from repro.robustness.faults import FetchError
from repro.robustness.fetcher import ResilientFetcher

#: Scores a fetched page; higher means expand its links sooner.
PageScorer = Callable[[Page], float]

#: Keywords whose presence marks a page as business-relevant.
BUSINESS_KEYWORDS = frozenset(
    """acquire acquired acquisition merger merged ceo cto cfo president
    revenue profit earnings quarter appointed named chairman growth
    income company shares""".split()
)


def business_relevance(page: Page) -> float:
    """Fraction of business keywords present in the page text."""
    words = {word.lower().strip(".,") for word in page.text.split()}
    if not words:
        return 0.0
    hits = len(BUSINESS_KEYWORDS & words)
    return hits / len(BUSINESS_KEYWORDS)


@dataclass
class CrawlResult:
    """Outcome of one crawl, including how it degraded under faults."""

    pages: list[Page] = field(default_factory=list)
    fetch_order: list[str] = field(default_factory=list)
    #: Frontier URLs that were never on the web (graph-only links).
    skipped: int = 0
    #: Total retry attempts spent recovering transient failures.
    retried: int = 0
    #: URLs that permanently failed (dead links, retry exhaustion,
    #: open circuit breakers) and were crawled *around*.
    dead: int = 0
    #: Pages served in degraded (truncated/garbled) form.
    degraded: int = 0
    degraded_urls: set[str] = field(default_factory=set)
    dead_urls: set[str] = field(default_factory=set)

    @property
    def fetched(self) -> int:
        return len(self.pages)

    @property
    def documents(self):
        return [page.document for page in self.pages if page.document]


class FocusedCrawler:
    """Best-first crawler with a page budget and depth limit."""

    def __init__(
        self,
        web: SyntheticWeb,
        scorer: PageScorer = business_relevance,
        max_pages: int = 500,
        max_depth: int = 6,
        tracer: AnyTracer | None = None,
        event_log: AnyEventLog | None = None,
        fetcher: ResilientFetcher | None = None,
    ) -> None:
        if max_pages <= 0:
            raise ValueError("max_pages must be positive")
        self.web = web
        self.scorer = scorer
        self.max_pages = max_pages
        self.max_depth = max_depth
        self.tracer = tracer or NULL_TRACER
        self.event_log = event_log or NULL_EVENT_LOG
        #: When set, all fetches go through the resilient path
        #: (retries, circuit breaking, dead-lettering).
        self.fetcher = fetcher

    def crawl(
        self, seeds: Iterable[str] = (FRONT_PAGE_URL,)
    ) -> CrawlResult:
        """Crawl from ``seeds``, expanding highest-scoring pages first."""
        result = CrawlResult()
        counter = itertools.count()  # tie-break to keep heap deterministic
        frontier: list[tuple[float, int, int, str, str | None]] = []
        seen: set[str] = set()
        for seed in seeds:
            if seed not in seen:
                seen.add(seed)
                heapq.heappush(
                    frontier, (0.0, next(counter), 0, seed, None)
                )

        with self.tracer.span("gather.crawl") as span:
            while frontier and len(result.pages) < self.max_pages:
                _, _, depth, url, via = heapq.heappop(frontier)
                if not self.web.has(url):
                    result.skipped += 1
                    continue
                page = self._fetch(url, result)
                if page is None:
                    continue  # failed permanently; crawl around it
                result.pages.append(page)
                result.fetch_order.append(url)
                self.event_log.emit(
                    "page_crawled",
                    lineage_id=(
                        page.document.doc_id if page.document else None
                    ),
                    url=url,
                    depth=depth,
                    via=via,
                    doc_id=(
                        page.document.doc_id if page.document else None
                    ),
                )
                if depth >= self.max_depth:
                    continue
                for link in page.links:
                    if link in seen:
                        continue
                    seen.add(link)
                    # Peek at the target to prioritize; a real crawler would
                    # rank by anchor text, we rank by the page itself.
                    priority = 0.0
                    if self.web.has(link):
                        priority = -self.scorer(self.web.peek(link))
                    heapq.heappush(
                        frontier,
                        (priority, next(counter), depth + 1, link, url),
                    )
            span.add_items(len(result.pages))
            self.tracer.count("crawl.pages_fetched", len(result.pages))
            self.tracer.count("crawl.dead_links_skipped", result.skipped)
            self.tracer.count("crawl.fetches_retried", result.retried)
            self.tracer.count("crawl.pages_failed", result.dead)
            self.tracer.count("crawl.pages_degraded", result.degraded)
        return result

    def _fetch(self, url: str, result: CrawlResult) -> Page | None:
        """One fetch on the resilient (or plain) path.

        Returns ``None`` for a permanent failure — the crawl records it
        and moves on instead of crashing, so a web full of dead links
        and flapping hosts still yields every reachable page.
        """
        if self.fetcher is not None:
            outcome = self.fetcher.fetch(url)
            result.retried += outcome.retries
            if outcome.page is None:
                result.dead += 1
                result.dead_urls.add(url)
                return None
            if outcome.status == "degraded":
                result.degraded += 1
                result.degraded_urls.add(url)
            return outcome.page
        try:
            page = self.web.fetch(url)
        except FetchError:
            # A faulty web without a resilient fetcher: no retries, but
            # the crawl still completes around the failure.
            result.dead += 1
            result.dead_urls.add(url)
            return None
        is_degraded = getattr(self.web, "is_degraded", None)
        if is_degraded is not None and is_degraded(url):
            result.degraded += 1
            result.degraded_urls.add(url)
        return page
