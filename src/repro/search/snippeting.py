"""Query-biased result snippets, as a search-results page shows them.

Figure 5 of the paper is literally a Google results snippet for the
query ``"new ceo"``; this module produces the equivalent for our
engine: the contiguous window of sentences that best matches the query,
with matched terms highlighted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.search.engine import parse_query
from repro.text.sentences import split_sentence_texts
from repro.text.tokenizer import tokenize_words


@dataclass(frozen=True, slots=True)
class ResultSnippet:
    """The best window of a document for one query."""

    text: str
    score: float
    highlighted: str


def _sentence_score(sentence: str, terms: set[str],
                    phrases: list[tuple[str, ...]]) -> float:
    words = [word.lower() for word in tokenize_words(sentence)]
    score = float(sum(word in terms for word in words))
    for phrase in phrases:
        n = len(phrase)
        for start in range(len(words) - n + 1):
            if tuple(words[start : start + n]) == phrase:
                score += 2.0 * n  # exact phrase hits dominate
    return score


def _highlight(text: str, terms: set[str]) -> str:
    pieces = []
    for word in text.split():
        stripped = word.strip(".,;:!?\"'()").lower()
        pieces.append(f"**{word}**" if stripped in terms else word)
    return " ".join(pieces)


def best_snippet(
    document_text: str,
    query: str,
    window: int = 2,
) -> ResultSnippet:
    """The highest-scoring ``window``-sentence span for the query.

    Scores each contiguous sentence window by query-term hits (phrase
    matches weighted up); ties go to the earliest window, like a
    results page leaning toward the lead.
    """
    if window <= 0:
        raise ValueError("window must be positive")
    parsed = parse_query(query)
    terms = set(parsed.all_terms)
    phrases = [tuple(phrase) for phrase in parsed.phrases]
    sentences = split_sentence_texts(document_text)
    if not sentences:
        return ResultSnippet(text="", score=0.0, highlighted="")

    best_start, best_score = 0, -1.0
    for start in range(max(len(sentences) - window + 1, 1)):
        span = sentences[start : start + window]
        score = sum(
            _sentence_score(sentence, terms, phrases)
            for sentence in span
        )
        if score > best_score:
            best_start, best_score = start, score
    text = " ".join(sentences[best_start : best_start + window])
    return ResultSnippet(
        text=text,
        score=best_score,
        highlighted=_highlight(text, terms),
    )
