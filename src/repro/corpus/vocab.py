"""Gazetteers and lexical resources for the synthetic business-news web.

The paper's ETAP system ran over the live Web and relied on a proprietary
named-entity annotator backed by dictionaries of company, person and place
names.  This module provides the equivalent lexical substrate for the
reproduction: curated gazetteers of organizations, people, places,
designations, products and measurement units, plus the verb/adjective
inventories the article templates draw from.

Both the document generator (:mod:`repro.corpus.generator`) and the
named-entity recognizer (:mod:`repro.text.ner`) are built on these lists.
The NER may deliberately be given only a *subset* of the gazetteers (see
``ner.NerConfig.gazetteer_coverage``) so that, as on the real Web,
annotation is imperfect and the downstream classifier must tolerate
annotation errors.
"""

from __future__ import annotations

import itertools

# ---------------------------------------------------------------------------
# Organizations
# ---------------------------------------------------------------------------

#: Single-token company stems used to build multi-word organization names.
_ORG_STEMS = [
    "Acme", "Globex", "Initech", "Umbra", "Vandelay", "Hooli", "Stark",
    "Wayne", "Wonka", "Tyrell", "Cyberdyne", "Aperture", "BlueSky",
    "RedRock", "SilverLake", "IronGate", "NorthStar", "Pinnacle", "Vertex",
    "Quantum", "Nimbus", "Zenith", "Apex", "Orion", "Helios", "Atlas",
    "Titan", "Nova", "Pulsar", "Vortex", "Cascade", "Summit", "Beacon",
    "Catalyst", "Meridian", "Paragon", "Sterling", "Crestwood", "Lakeshore",
    "Brightline", "Clearwater", "Evergreen", "Fairfield", "Granite",
    "Harborview", "Keystone", "Longbridge", "Maplewood", "Oakmont",
    "Riverbend", "Sandstone", "Thornfield", "Westbrook", "Youngston",
    "Amberly", "Birchwood", "Coralline", "Duskwood", "Eastgate", "Foxglove",
    "Goldcrest", "Hawthorne", "Ivyridge", "Juniper", "Kingsley", "Larkspur",
]

#: Suffixes that mark a token sequence as a company name.
ORG_SUFFIXES = [
    "Inc", "Corp", "Ltd", "LLC", "Group", "Holdings", "Systems",
    "Technologies", "Solutions", "Partners", "Industries", "Networks",
    "Software", "Labs", "Enterprises", "Capital", "Consulting",
]

#: Sector words optionally inserted between stem and suffix.
_ORG_SECTORS = [
    "Data", "Micro", "Tele", "Steel", "Energy", "Media", "Retail",
    "Pharma", "Auto", "Aero", "Agro", "Bio", "Cloud", "Digital",
]


def build_org_names(limit: int = 400) -> list[str]:
    """Deterministically enumerate multi-word organization names.

    The cross product stem x (sector?) x suffix is walked in a fixed order,
    so the gazetteer is stable across runs and processes.
    """
    names = []
    for stem, suffix in itertools.product(_ORG_STEMS, ORG_SUFFIXES):
        names.append(f"{stem} {suffix}")
        if len(names) >= limit:
            return names[:limit]
    return names[:limit]


def build_org_names_extended(limit: int = 300) -> list[str]:
    """Organization names with a sector word, e.g. ``Acme Data Systems``."""
    names = []
    for stem, sector in itertools.product(_ORG_STEMS, _ORG_SECTORS):
        suffix = ORG_SUFFIXES[(len(names) * 7) % len(ORG_SUFFIXES)]
        names.append(f"{stem} {sector} {suffix}")
        if len(names) >= limit:
            return names
    return names


ORGANIZATIONS: list[str] = build_org_names(400) + build_org_names_extended(300)

# ---------------------------------------------------------------------------
# People
# ---------------------------------------------------------------------------

FIRST_NAMES = [
    "James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael",
    "Linda", "David", "Elizabeth", "William", "Barbara", "Richard", "Susan",
    "Joseph", "Jessica", "Thomas", "Sarah", "Charles", "Karen", "Daniel",
    "Nancy", "Matthew", "Lisa", "Anthony", "Margaret", "Mark", "Betty",
    "Paul", "Sandra", "Steven", "Ashley", "Andrew", "Dorothy", "Kenneth",
    "Kimberly", "George", "Emily", "Joshua", "Donna", "Kevin", "Michelle",
    "Brian", "Carol", "Edward", "Amanda", "Ronald", "Melissa", "Timothy",
    "Deborah", "Arvind", "Priya", "Wei", "Mei", "Hiroshi", "Yuki",
    "Lars", "Ingrid", "Pierre", "Amelie", "Carlos", "Lucia", "Ahmed",
    "Fatima", "Olu", "Amara", "Dmitri", "Svetlana", "Rajesh", "Ananya",
]

LAST_NAMES = [
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
    "Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
    "Wilson", "Anderson", "Thompson", "Taylor", "Moore", "Jackson",
    "Martin", "Lee", "Perez", "White", "Harris", "Sanchez", "Clark",
    "Ramirez", "Lewis", "Robinson", "Walker", "Young", "Allen", "King",
    "Wright", "Scott", "Torres", "Nguyen", "Hill", "Flores", "Green",
    "Adams", "Nelson", "Baker", "Hall", "Rivera", "Campbell", "Mitchell",
    "Carter", "Roberts", "Chen", "Kumar", "Patel", "Sato", "Tanaka",
    "Mueller", "Schmidt", "Dubois", "Rossi", "Ivanov", "Petrov", "Okafor",
    "Andersen", "Larsen", "Kowalski", "Novak", "Silva", "Santos",
]

HONORIFICS = ["Mr.", "Ms.", "Mrs.", "Dr."]


def build_person_names(limit: int = 800) -> list[str]:
    """Deterministically enumerate ``First Last`` person names."""
    names = []
    for i, (first, last) in enumerate(
        itertools.product(FIRST_NAMES, LAST_NAMES)
    ):
        if i % 3 == 0:  # thin the cross product for variety per position
            names.append(f"{first} {last}")
        if len(names) >= limit:
            return names
    return names


PEOPLE: list[str] = build_person_names(800)

# ---------------------------------------------------------------------------
# Places
# ---------------------------------------------------------------------------

PLACES = [
    "New York", "London", "Tokyo", "Paris", "Berlin", "Mumbai", "Bangalore",
    "San Francisco", "Seattle", "Boston", "Chicago", "Austin", "Toronto",
    "Sydney", "Singapore", "Hong Kong", "Shanghai", "Beijing", "Seoul",
    "Dublin", "Amsterdam", "Zurich", "Stockholm", "Helsinki", "Oslo",
    "Madrid", "Barcelona", "Milan", "Rome", "Vienna", "Prague", "Warsaw",
    "Dubai", "Tel Aviv", "Sao Paulo", "Mexico City", "Buenos Aires",
    "Johannesburg", "Cairo", "Nairobi", "Washington", "Atlanta", "Dallas",
    "Denver", "Phoenix", "Portland", "Vancouver", "Montreal", "Munich",
    "Frankfurt", "Geneva", "Brussels", "Copenhagen", "Lisbon", "Athens",
    "Bangkok", "Jakarta", "Manila", "Kuala Lumpur", "Taipei", "Osaka",
    "Hyderabad", "Chennai", "Pune", "New Delhi", "Edinburgh", "Manchester",
]

# ---------------------------------------------------------------------------
# Designations (executive titles)
# ---------------------------------------------------------------------------

DESIGNATIONS = [
    "CEO", "CTO", "CFO", "COO", "CIO", "CMO", "President",
    "Vice President", "Chairman", "Managing Director", "General Manager",
    "Chief Executive Officer", "Chief Technology Officer",
    "Chief Financial Officer", "Chief Operating Officer",
    "Executive Director", "Senior Vice President", "Director",
    "Head of Sales", "Head of Engineering", "Chief Scientist",
]

# ---------------------------------------------------------------------------
# Products and objects
# ---------------------------------------------------------------------------

PRODUCTS = [
    "CloudSuite", "DataForge", "NetPilot", "StorMax", "SecureVault",
    "FlowEngine", "InsightHub", "StreamLine", "CoreStack", "EdgeRunner",
    "StackBuilder", "QueryMaster", "MeshLink", "PulseBoard", "GridWorks",
    "VisionKit", "AutoScale", "DeepIndex", "FastTrack", "OmniSync",
    "ProxyWave", "RapidDeploy", "SignalPath", "TrueNorth", "UnityBase",
]

OBJECTS = [
    "database", "server", "mainframe", "router", "firewall", "laptop",
    "workstation", "storage array", "switch", "middleware", "platform",
    "application suite", "data center", "call center", "supply chain",
]

# ---------------------------------------------------------------------------
# Units of measurement (LNGTH in the paper's tag set)
# ---------------------------------------------------------------------------

MEASUREMENT_UNITS = [
    "meters", "kilometers", "miles", "feet", "tons", "kilograms", "pounds",
    "gigabytes", "terabytes", "petabytes", "megawatts", "gigahertz",
    "square feet", "barrels", "units", "seats", "nodes",
]

CURRENCY_UNITS = ["million", "billion", "thousand", "crore", "lakh"]
CURRENCY_SYMBOLS = ["$", "USD", "EUR", "GBP", "Rs."]

MONTHS = [
    "January", "February", "March", "April", "May", "June", "July",
    "August", "September", "October", "November", "December",
]

WEEKDAYS = [
    "Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday",
    "Sunday",
]

QUARTERS = [
    "first quarter", "second quarter", "third quarter", "fourth quarter",
    "Q1", "Q2", "Q3", "Q4",
]

# ---------------------------------------------------------------------------
# Event verb/adjective inventories used by the templates
# ---------------------------------------------------------------------------

ACQUISITION_VERBS = [
    "acquired", "acquires", "will acquire", "plans to acquire",
    "agreed to acquire", "completed the acquisition of", "bought",
    "is buying", "agreed to buy", "will merge with", "merged with",
    "announced a merger with", "took over", "is taking over",
    "signed a definitive agreement to acquire", "snapped up",
]

APPOINTMENT_VERBS = [
    "appointed", "named", "hired", "promoted", "has appointed",
    "announced the appointment of", "elevated", "tapped", "recruited",
    "selected", "brought in", "has named", "welcomed",
]

DEPARTURE_VERBS = [
    "resigned", "stepped down", "retired", "departed", "was ousted",
    "left the company", "announced his resignation",
    "announced her resignation",
]

GROWTH_VERBS = [
    "reported", "posted", "announced", "recorded", "registered",
    "delivered", "achieved", "unveiled", "disclosed",
]

GROWTH_NOUNS = [
    "revenue growth", "revenue", "profit", "net income", "earnings",
    "quarterly revenue", "annual revenue", "sales", "turnover",
    "operating income",
]

FUNDING_VERBS = [
    "raised", "has raised", "secured", "closed", "announced",
    "completed", "landed", "banked", "pulled in", "locked in",
]

FUNDING_ROUND_NAMES = [
    "seed", "Series A", "Series B", "Series C", "Series D",
    "growth", "bridge", "mezzanine",
]

INVESTOR_NAMES = [
    "Meridian Ventures", "Blue Harbor Capital", "Northgate Partners",
    "Ridgeline Growth Equity", "Cobalt Venture Partners",
    "Summit Crest Capital", "Ironwood Investments", "Vantage Point Fund",
    "Clearwater Growth Partners", "Atlas Horizon Capital",
]

LAYOFF_VERBS = [
    "will cut", "is cutting", "plans to eliminate", "will eliminate",
    "is laying off", "will lay off", "announced it will shed",
    "is shedding", "will slash", "plans to cut",
]

LAYOFF_NOUNS = [
    "jobs", "positions", "roles", "staff positions", "employees",
]

POSITIVE_ORIENTATION_PHRASES = [
    "significant growth", "solid quarter", "record profits",
    "strong performance", "robust demand", "impressive gains",
    "stellar results", "healthy margins", "remarkable turnaround",
    "substantial increase",
]

NEGATIVE_ORIENTATION_PHRASES = [
    "severe losses", "sharp decline", "worst losses", "steep drop",
    "significant downturn", "disappointing results", "weak demand",
    "heavy losses", "dismal quarter", "substantial decrease",
]

NEUTRAL_BUSINESS_NOUNS = [
    "market", "industry", "sector", "strategy", "partnership", "contract",
    "product line", "workforce", "operations", "infrastructure",
    "portfolio", "roadmap", "initiative", "campaign", "division",
]

BACKGROUND_TOPICS = [
    "weather patterns", "local sports", "travel destinations",
    "restaurant reviews", "gardening tips", "movie releases",
    "music festivals", "health advice", "school events",
    "community fundraisers", "art exhibitions", "hiking trails",
    "cooking recipes", "book clubs", "photography workshops",
]


def canonical_org_key(name: str) -> str:
    """Normalize an organization name for identity comparisons.

    Lower-cases and strips a trailing legal suffix so ``Acme Inc`` and
    ``Acme Corp`` map to different keys but ``Acme Inc`` and ``acme inc.``
    map to the same key.  Full variation handling lives in
    :mod:`repro.core.company`.
    """
    cleaned = name.strip().rstrip(".").lower()
    return " ".join(cleaned.split())
