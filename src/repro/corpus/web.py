"""The synthetic Web: documents wired into a hyperlinked site graph.

The paper's data-gathering component [2] performs "a focused crawl of the
Web".  To exercise that code path, the reproduction materializes the
generated corpus as a small web: each site gets hub (index) pages that
link to its articles, articles cross-link to related articles about the
same company, and a front page links to every hub.  The link structure is
a :class:`networkx.DiGraph`, and :class:`SyntheticWeb` serves pages by
URL the way an HTTP fetcher would.
"""

from __future__ import annotations

import random
from collections import defaultdict
from dataclasses import dataclass
from urllib.parse import urlparse

import networkx as nx

from repro.corpus.generator import CorpusConfig, CorpusGenerator, Document

FRONT_PAGE_URL = "http://www.example.com/index.html"


@dataclass(frozen=True)
class Page:
    """One fetchable web page."""

    url: str
    title: str
    text: str
    links: tuple[str, ...]
    document: Document | None = None

    @property
    def is_hub(self) -> bool:
        return self.document is None


class SyntheticWeb:
    """An in-memory web of pages plus its hyperlink graph."""

    def __init__(self, pages: dict[str, Page], graph: nx.DiGraph) -> None:
        self._pages = pages
        self.graph = graph

    # -- HTTP-like access ----------------------------------------------------

    def fetch(self, url: str) -> Page:
        """Fetch a page by URL; raises ``KeyError`` for a 404."""
        return self._pages[url]

    def peek(self, url: str) -> Page:
        """Look at a page without "fetching" it.

        Identical to :meth:`fetch` here; fault-injecting wrappers
        (:class:`~repro.robustness.faults.FaultyWeb`) override ``fetch``
        with failures but keep ``peek`` transparent, so simulation
        conveniences like the crawler's link-prioritization peek do not
        consume fault attempts.
        """
        return self._pages[url]

    def add_page(self, page: Page) -> None:
        """Publish (or replace) a page, updating the link graph."""
        previous = self._pages.get(page.url)
        if previous is not None:
            for target in previous.links:
                if self.graph.has_edge(page.url, target):
                    self.graph.remove_edge(page.url, target)
        self._pages[page.url] = page
        self.graph.add_node(page.url)
        for target in page.links:
            self.graph.add_edge(page.url, target)

    def has(self, url: str) -> bool:
        return url in self._pages

    @property
    def urls(self) -> list[str]:
        return list(self._pages)

    @property
    def documents(self) -> list[Document]:
        return [
            page.document
            for page in self._pages.values()
            if page.document is not None
        ]

    def __len__(self) -> int:
        return len(self._pages)


def _site_of(url: str) -> str:
    return urlparse(url).netloc


def build_web(
    n_docs: int = 2000, config: CorpusConfig | None = None
) -> SyntheticWeb:
    """Generate a corpus and assemble it into a crawlable synthetic web."""
    config = config or CorpusConfig()
    generator = CorpusGenerator(config)
    documents = generator.generate(n_docs)
    rng = random.Random(config.seed + 1)

    by_site: dict[str, list[Document]] = defaultdict(list)
    by_company: dict[str, list[Document]] = defaultdict(list)
    for document in documents:
        by_site[_site_of(document.url)].append(document)
        for company in document.companies:
            by_company[company].append(document)

    pages: dict[str, Page] = {}
    graph = nx.DiGraph()

    # Article pages with "related story" cross-links.
    for document in documents:
        related: list[str] = []
        for company in document.companies:
            candidates = [
                other.url
                for other in by_company[company]
                if other.url != document.url
            ]
            related.extend(rng.sample(candidates, min(2, len(candidates))))
        seen: set[str] = set()
        links = tuple(
            url for url in related if not (url in seen or seen.add(url))
        )
        pages[document.url] = Page(
            url=document.url,
            title=document.title,
            text=document.text,
            links=links,
            document=document,
        )

    # Hub pages: one index per site, paginated every 50 articles.
    hub_urls: list[str] = []
    for site, site_docs in sorted(by_site.items()):
        for page_no in range(0, len(site_docs), 50):
            batch = site_docs[page_no : page_no + 50]
            hub_url = f"http://{site}/index-{page_no // 50}.html"
            hub_urls.append(hub_url)
            summary = " ".join(doc.title + "." for doc in batch)
            pages[hub_url] = Page(
                url=hub_url,
                title=f"{site} index {page_no // 50}",
                text=summary,
                links=tuple(doc.url for doc in batch),
            )

    pages[FRONT_PAGE_URL] = Page(
        url=FRONT_PAGE_URL,
        title="Example Web front page",
        text="Directory of sites.",
        links=tuple(hub_urls),
    )

    for page in pages.values():
        graph.add_node(page.url)
        for target in page.links:
            graph.add_edge(page.url, target)

    return SyntheticWeb(pages, graph)
