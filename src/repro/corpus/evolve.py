"""Web evolution: new pages appear between crawl cycles.

ETAP is an *alert* program — its value is noticing trigger events soon
after they are published.  :class:`WebEvolver` simulates the passage of
time on a :class:`~repro.corpus.web.SyntheticWeb`: each call to
:meth:`advance` publishes a batch of fresh documents and wires them into
a "latest news" hub that the front page links to, so an incremental
re-crawl discovers them.
"""

from __future__ import annotations

import dataclasses

from repro.corpus.generator import CorpusConfig, CorpusGenerator, Document
from repro.corpus.web import FRONT_PAGE_URL, Page, SyntheticWeb

LATEST_HUB_URL = "http://news.example.com/latest.html"


#: Doc-id offset for evolved documents; seed corpora count from 0, so
#: evolved ids never collide with a seed corpus below a million pages.
EVOLVED_START_ID = 1_000_000


class WebEvolver:
    """Publishes new documents onto an existing synthetic web."""

    def __init__(
        self,
        web: SyntheticWeb,
        config: CorpusConfig | None = None,
        start_id: int = EVOLVED_START_ID,
    ) -> None:
        self.web = web
        config = config or CorpusConfig()
        # Never collide with doc-ids already on the web: evolved ids
        # count from their own offset namespace.
        self._generator = CorpusGenerator(config, start_id=start_id)
        self.cycle = 0

    def advance(self, n_new_docs: int = 20) -> list[Document]:
        """One time step: publish ``n_new_docs`` fresh documents.

        New pages are stamped with a publication day after the initial
        corpus's timeline: day ``timeline_days + cycle``.
        """
        if n_new_docs <= 0:
            raise ValueError("n_new_docs must be positive")
        self.cycle += 1
        today = self._generator.config.timeline_days + self.cycle
        documents = [
            dataclasses.replace(document, published_day=today)
            for document in self._generator.generate(n_new_docs)
        ]
        for document in documents:
            self.web.add_page(
                Page(
                    url=document.url,
                    title=document.title,
                    text=document.text,
                    links=(),
                    document=document,
                )
            )
        self._refresh_latest_hub(documents)
        return documents

    def _refresh_latest_hub(self, documents: list[Document]) -> None:
        existing: tuple[str, ...] = ()
        if self.web.has(LATEST_HUB_URL):
            existing = self.web.fetch(LATEST_HUB_URL).links
        links = tuple(doc.url for doc in documents) + existing
        self.web.add_page(
            Page(
                url=LATEST_HUB_URL,
                title="Latest news",
                text=" ".join(doc.title + "." for doc in documents),
                links=links[:500],  # a real hub paginates; we cap
            )
        )
        front = self.web.fetch(FRONT_PAGE_URL)
        if LATEST_HUB_URL not in front.links:
            self.web.add_page(
                Page(
                    url=front.url,
                    title=front.title,
                    text=front.text,
                    links=(LATEST_HUB_URL,) + front.links,
                )
            )
