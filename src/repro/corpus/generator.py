"""Synthetic business-news document generator.

This is the reproduction's stand-in for the 2005 Web that ETAP crawled.
It emits :class:`Document` objects with per-sentence ground-truth labels,
covering the document populations the paper's evaluation depends on:

* ``ma_news`` — articles about a current merger or acquisition;
* ``cim_news`` — articles about a current executive change;
* ``rg_news`` — quarterly/annual earnings articles;
* ``biography`` — executive biography pages, the misleading near-
  positives of section 5.2;
* ``retrospective`` — historical M&A mentions, near-positive noise;
* ``product_review`` — ORG/PROD-rich pages without trigger events;
* ``background`` — off-topic web pages (the random negative class).

Every document interleaves trigger sentences with noise sentences, so
that — exactly as in Figures 5 and 6 of the paper — even a relevant page
yields both trigger snippets and non-trigger snippets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.corpus import templates, vocab
from repro.corpus.templates import (
    ALL_DRIVERS,
    CHANGE_IN_MANAGEMENT,
    FUNDING_ROUNDS,
    LAYOFFS,
    MERGERS_ACQUISITIONS,
    REVENUE_GROWTH,
    EntityPool,
    TemplateSentence,
)

DOC_TYPES = (
    "ma_news", "cim_news", "rg_news", "biography", "retrospective",
    "product_review", "company_profile", "background",
    # Extended-driver doc types: absent from the default mix, so the
    # paper-faithful corpus is unchanged unless a recipe opts in.
    "funding_news", "layoff_news",
)

#: Doc types whose trigger sentences are genuine current events.
TRIGGER_DOC_TYPES = {
    "ma_news", "cim_news", "rg_news", "funding_news", "layoff_news",
}

_DRIVER_FOR_DOC_TYPE = {
    "ma_news": MERGERS_ACQUISITIONS,
    "cim_news": CHANGE_IN_MANAGEMENT,
    "rg_news": REVENUE_GROWTH,
    "funding_news": FUNDING_ROUNDS,
    "layoff_news": LAYOFFS,
}

#: Inverse of :data:`_DRIVER_FOR_DOC_TYPE` — the trigger doc type that
#: carries positives for each driver (used as query-evaluation ground
#: truth by :mod:`repro.queries`).
DOC_TYPE_FOR_DRIVER = {
    driver: doc_type for doc_type, driver in _DRIVER_FOR_DOC_TYPE.items()
}


@dataclass(frozen=True, slots=True)
class LabeledSentence:
    """One sentence with its ground-truth driver label (or ``None``)."""

    text: str
    label: str | None


@dataclass(frozen=True)
class Document:
    """A generated web document with ground truth attached."""

    doc_id: str
    url: str
    title: str
    doc_type: str
    sentences: tuple[LabeledSentence, ...]
    companies: tuple[str, ...]
    #: Day (on the simulated calendar) this page was published.
    published_day: int = 0

    @property
    def text(self) -> str:
        return " ".join(sentence.text for sentence in self.sentences)

    def driver_labels(self) -> set[str]:
        """All drivers for which this document carries a trigger event."""
        return {s.label for s in self.sentences if s.label is not None}


@dataclass(frozen=True)
class CorpusConfig:
    """Knobs for corpus generation.

    ``mix`` maps doc type -> relative weight; the default mix makes
    trigger documents a small minority of the web, as in reality.
    ``mirror_rate`` is the probability that a generated news article is
    followed by a lightly edited syndicated copy on another site — the
    near-duplicate pressure real wire stories create.
    """

    seed: int = 7
    mirror_rate: float = 0.0
    #: Length of the simulated publication calendar, in days; each
    #: generated document gets a ``published_day`` in [0, timeline_days).
    timeline_days: int = 90
    mix: dict[str, float] = field(
        default_factory=lambda: {
            # The collection D mirrors what ETAP's data-gathering
            # component assembles: "documents related to companies and
            # financial news" (section 2) — business-heavy, with trigger
            # articles a minority and a residue of off-topic pages the
            # focused crawl picked up anyway.
            "ma_news": 0.07,
            "cim_news": 0.07,
            "rg_news": 0.07,
            "biography": 0.03,
            "retrospective": 0.02,
            "product_review": 0.13,
            "company_profile": 0.38,
            "background": 0.23,
        }
    )
    min_sentences: int = 6
    max_sentences: int = 14


class CorpusGenerator:
    """Deterministic generator for the synthetic web corpus.

    ``start_id`` offsets the doc-id counter, so two generators can share
    a web without colliding: a seed corpus starts at 0 while an evolver
    publishing fresh pages starts at 1,000,000 (see
    :class:`~repro.corpus.evolve.WebEvolver`).  Ids keep their
    ``doc-NNNNNN`` shape — the field simply grows past six digits.
    """

    def __init__(
        self,
        config: CorpusConfig | None = None,
        start_id: int = 0,
    ) -> None:
        if start_id < 0:
            raise ValueError("start_id must be >= 0")
        self.config = config or CorpusConfig()
        self._rng = random.Random(self.config.seed)
        self._counter = start_id

    # -- per-type article builders ------------------------------------------

    def _article_sentences(
        self,
        pool: EntityPool,
        trigger,
        near_positive,
        trigger_ratio: float,
    ) -> list[TemplateSentence]:
        """News articles follow the inverted pyramid: the lead sentences
        report the event, then context (business noise, and for some
        drivers near-positive history such as biography lines) follows.
        The body still occasionally restates the event, so trigger
        sentences are not confined to the first window."""
        rng = self._rng
        count = rng.randint(
            self.config.min_sentences, self.config.max_sentences
        )
        lead = [trigger(pool, rng) for _ in range(rng.randint(1, 2))]
        body: list[TemplateSentence] = []
        for _ in range(count - len(lead)):
            roll = rng.random()
            if roll < trigger_ratio * 0.5:
                body.append(trigger(pool, rng))
            elif roll < trigger_ratio * 0.5 + 0.15 and near_positive:
                body.append(near_positive(pool, rng))
            else:
                body.append(templates.business_noise(pool, rng))
        rng.shuffle(body)
        return lead + body

    def _build_ma_news(self, pool: EntityPool) -> list[TemplateSentence]:
        return self._article_sentences(
            pool, templates.ma_trigger, templates.ma_retrospective, 0.30
        )

    def _build_cim_news(self, pool: EntityPool) -> list[TemplateSentence]:
        return self._article_sentences(
            pool, templates.cim_trigger, templates.biography_sentence, 0.30
        )

    def _build_rg_news(self, pool: EntityPool) -> list[TemplateSentence]:
        return self._article_sentences(
            pool, templates.rg_trigger, None, 0.35
        )

    def _build_funding_news(
        self, pool: EntityPool
    ) -> list[TemplateSentence]:
        return self._article_sentences(
            pool, templates.funding_trigger,
            templates.funding_retrospective, 0.30,
        )

    def _build_layoff_news(
        self, pool: EntityPool
    ) -> list[TemplateSentence]:
        return self._article_sentences(
            pool, templates.layoff_trigger, templates.layoff_rumor, 0.30
        )

    def _build_biography(self, pool: EntityPool) -> list[TemplateSentence]:
        rng = self._rng
        count = rng.randint(
            self.config.min_sentences, self.config.max_sentences
        )
        sentences = [
            templates.biography_sentence(pool, rng) for _ in range(count - 2)
        ]
        sentences += [templates.business_noise(pool, rng) for _ in range(2)]
        rng.shuffle(sentences)
        return sentences

    def _build_retrospective(self, pool: EntityPool) -> list[TemplateSentence]:
        rng = self._rng
        count = rng.randint(self.config.min_sentences, 10)
        sentences = []
        for _ in range(count):
            if rng.random() < 0.5:
                sentences.append(templates.ma_retrospective(pool, rng))
            else:
                sentences.append(templates.business_noise(pool, rng))
        return sentences

    def _build_product_review(
        self, pool: EntityPool
    ) -> list[TemplateSentence]:
        rng = self._rng
        count = rng.randint(self.config.min_sentences, 10)
        return [
            templates.product_review_sentence(pool, rng)
            for _ in range(count)
        ]

    def _build_company_profile(
        self, pool: EntityPool
    ) -> list[TemplateSentence]:
        """Corporate boilerplate: about-us pages, press contacts, catalog
        copy — business vocabulary with no trigger events.  These pages
        keep the negative class honest: without them, generic business
        words become spurious positive evidence."""
        rng = self._rng
        count = rng.randint(
            self.config.min_sentences, self.config.max_sentences
        )
        return [
            templates.business_noise(pool, rng) for _ in range(count)
        ]

    def _build_background(self, pool: EntityPool) -> list[TemplateSentence]:
        rng = self._rng
        count = rng.randint(
            self.config.min_sentences, self.config.max_sentences
        )
        return [templates.background_sentence(rng) for _ in range(count)]

    # -- public API ----------------------------------------------------------

    def generate_document(self, doc_type: str) -> Document:
        """Generate one document of the given type."""
        if doc_type not in DOC_TYPES:
            raise ValueError(f"unknown doc type: {doc_type!r}")
        pool = EntityPool(self._rng)
        builder = getattr(self, f"_build_{doc_type}")
        sentences = builder(pool)
        self._counter += 1
        doc_id = f"doc-{self._counter:06d}"
        title = self._title_for(doc_type, pool)
        url = self._url_for(doc_type, doc_id)
        companies: tuple[str, ...] = ()
        if doc_type != "background":
            companies = (pool.company, pool.other_company)
        return Document(
            doc_id=doc_id,
            url=url,
            title=title,
            doc_type=doc_type,
            sentences=tuple(
                LabeledSentence(item.text, item.label) for item in sentences
            ),
            companies=companies,
            published_day=self._rng.randrange(
                max(self.config.timeline_days, 1)
            ),
        )

    def generate(self, n_docs: int) -> list[Document]:
        """Generate ``n_docs`` documents following the configured mix.

        With ``mirror_rate`` > 0, news articles may be followed by a
        syndicated near-copy (same sentences, one lead-in swapped,
        hosted on a mirror site).
        """
        types = list(self.config.mix)
        weights = [self.config.mix[name] for name in types]
        documents: list[Document] = []
        while len(documents) < n_docs:
            doc_type = self._rng.choices(types, weights)[0]
            document = self.generate_document(doc_type)
            documents.append(document)
            if (
                len(documents) < n_docs
                and doc_type in TRIGGER_DOC_TYPES
                and self._rng.random() < self.config.mirror_rate
            ):
                documents.append(self._mirror_of(document))
        return documents

    def _mirror_of(self, original: Document) -> Document:
        """A syndicated near-copy: one boilerplate line swapped in."""
        self._counter += 1
        doc_id = f"doc-{self._counter:06d}"
        sentences = list(original.sentences)
        # Swap the final sentence for a syndication credit so the copy
        # is near- but not byte-identical.
        sentences[-1] = LabeledSentence(
            "This story was syndicated from a newswire report.", None
        )
        return Document(
            doc_id=doc_id,
            url=f"http://mirror.example.com/{original.doc_type}/"
                f"{doc_id}.html",
            title=original.title,
            doc_type=original.doc_type,
            sentences=tuple(sentences),
            companies=original.companies,
            # Syndication lags the original by up to two days.
            published_day=original.published_day
            + self._rng.randint(0, 2),
        )

    def _title_for(self, doc_type: str, pool: EntityPool) -> str:
        titles = {
            "ma_news": f"{pool.company} to acquire {pool.other_company}",
            "cim_news": f"{pool.company} names new {pool.designation}",
            "rg_news": f"{pool.company} reports quarterly results",
            "funding_news": f"{pool.company} raises new funding",
            "layoff_news": f"{pool.company} announces job cuts",
            "biography": f"Profile: {pool.person}",
            "retrospective": f"A history of deals at {pool.company}",
            "product_review": f"Review: {pool.product}",
            "company_profile": f"About {pool.company}",
            "background": f"{self._rng.choice(vocab.BACKGROUND_TOPICS)}"
            f" in {pool.place}".capitalize(),
        }
        return titles[doc_type]

    def _url_for(self, doc_type: str, doc_id: str) -> str:
        site = {
            "ma_news": "news.example.com",
            "cim_news": "news.example.com",
            "rg_news": "finance.example.com",
            "funding_news": "venture.example.com",
            "layoff_news": "news.example.com",
            "biography": "people.example.com",
            "retrospective": "archive.example.com",
            "product_review": "reviews.example.com",
            "company_profile": "corporate.example.com",
            "background": "blog.example.com",
        }[doc_type]
        return f"http://{site}/{doc_type}/{doc_id}.html"


def driver_for_doc_type(doc_type: str) -> str | None:
    """The sales driver a trigger doc type corresponds to, else ``None``."""
    return _DRIVER_FOR_DOC_TYPE.get(doc_type)
