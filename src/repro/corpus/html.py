"""HTML serving layer: pages as a real fetcher would see them.

The synthetic web stores clean text for speed, but a real crawl sees
markup: tags, escaped entities, navigation chrome.  :func:`page_html`
renders a page the way a 2005-era news site would serve it, and
:func:`extract_text` is the fetcher-side inverse built on
:mod:`repro.text.normalize` — the round trip recovers the page text
exactly, which is what licenses the pipeline to operate on the stored
text directly.
"""

from __future__ import annotations

import html as _html
import re

from repro.corpus.web import Page
from repro.text.normalize import normalize_crawl_text

_HEAD_RE = re.compile(r"<head>.*?</head>", re.DOTALL | re.IGNORECASE)
_NAV_RE = re.compile(
    r"<nav>.*?</nav>|<footer>.*?</footer>", re.DOTALL | re.IGNORECASE
)


def page_html(page: Page) -> str:
    """Render a page as served HTML: head, nav chrome, escaped body."""
    body = _html.escape(page.text)
    title = _html.escape(page.title)
    links = "".join(
        f'<li><a href="{_html.escape(link)}">related</a></li>'
        for link in page.links[:10]
    )
    return (
        "<!DOCTYPE html>\n"
        "<html>\n"
        f"<head><title>{title}</title>"
        '<meta charset="utf-8"></head>\n'
        "<body>\n"
        f"<nav><ul>{links}</ul></nav>\n"
        f"<h1>{title}</h1>\n"
        f"<p>{body}</p>\n"
        "<footer>Copyright the publisher. All rights reserved."
        "</footer>\n"
        "</body>\n"
        "</html>"
    )


def extract_text(document_html: str) -> str:
    """Fetcher-side extraction: drop head/nav/footer chrome, strip
    markup, unescape entities, normalize whitespace.

    For pages rendered by :func:`page_html`, the result is the page's
    title followed by its text.
    """
    stripped = _HEAD_RE.sub(" ", document_html)
    stripped = _NAV_RE.sub(" ", stripped)
    return normalize_crawl_text(stripped)


def extract_body_text(document_html: str) -> str:
    """Like :func:`extract_text` but without the headline line."""
    text = extract_text(document_html)
    lines = [line for line in text.splitlines() if line.strip()]
    if len(lines) >= 2:
        return "\n".join(lines[1:]).strip()
    return text
