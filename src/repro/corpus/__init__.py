"""Synthetic business-news web: vocabularies, templates, generator, web."""

from repro.corpus.generator import (
    CorpusConfig,
    CorpusGenerator,
    Document,
    LabeledSentence,
    driver_for_doc_type,
)
from repro.corpus.templates import (
    ALL_DRIVERS,
    CHANGE_IN_MANAGEMENT,
    MERGERS_ACQUISITIONS,
    REVENUE_GROWTH,
)
from repro.corpus.evolve import LATEST_HUB_URL, WebEvolver
from repro.corpus.html import extract_body_text, extract_text, page_html
from repro.corpus.stats import CorpusStats, compute_stats, render_stats
from repro.corpus.web import FRONT_PAGE_URL, Page, SyntheticWeb, build_web

__all__ = [
    "ALL_DRIVERS",
    "CHANGE_IN_MANAGEMENT",
    "CorpusConfig",
    "CorpusGenerator",
    "CorpusStats",
    "compute_stats",
    "render_stats",
    "Document",
    "FRONT_PAGE_URL",
    "LATEST_HUB_URL",
    "LabeledSentence",
    "MERGERS_ACQUISITIONS",
    "Page",
    "REVENUE_GROWTH",
    "SyntheticWeb",
    "WebEvolver",
    "build_web",
    "extract_body_text",
    "extract_text",
    "page_html",
    "driver_for_doc_type",
]
