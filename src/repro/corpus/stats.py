"""Corpus statistics: the numbers behind the reproduction's claims.

DESIGN.md asserts the synthetic web has certain statistical properties
(head-heavy entity mentions, minority trigger documents, noise inside
relevant pages).  This module measures them on an actual generated
corpus so the claims are checkable, and so EXPERIMENTS.md can cite real
figures.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Sequence

from repro.corpus.generator import TRIGGER_DOC_TYPES, Document


@dataclass(frozen=True)
class CorpusStats:
    """Summary statistics of a generated document collection."""

    n_documents: int
    n_sentences: int
    n_trigger_documents: int
    n_trigger_sentences: int
    doc_type_counts: dict[str, int]
    company_mention_counts: dict[str, int]

    @property
    def trigger_document_fraction(self) -> float:
        if self.n_documents == 0:
            return 0.0
        return self.n_trigger_documents / self.n_documents

    @property
    def noise_fraction_in_trigger_docs(self) -> float:
        """Fraction of sentences inside trigger documents that are NOT
        trigger sentences — the Figure 6 phenomenon, quantified."""
        trigger_doc_sentences = self._trigger_doc_sentence_count
        if trigger_doc_sentences == 0:
            return 0.0
        return 1.0 - self.n_trigger_sentences / trigger_doc_sentences

    _trigger_doc_sentence_count: int = 0

    def mention_share_of_top(self, k: int = 10) -> float:
        """Share of all company mentions taken by the top-k companies —
        the head-heaviness DESIGN.md relies on for Figures 3/4."""
        total = sum(self.company_mention_counts.values())
        if total == 0:
            return 0.0
        top = sum(
            count
            for _, count in Counter(
                self.company_mention_counts
            ).most_common(k)
        )
        return top / total


def compute_stats(documents: Sequence[Document]) -> CorpusStats:
    """Measure a generated collection."""
    doc_types: Counter = Counter()
    mentions: Counter = Counter()
    n_sentences = 0
    n_trigger_docs = 0
    n_trigger_sentences = 0
    trigger_doc_sentences = 0
    for document in documents:
        doc_types[document.doc_type] += 1
        n_sentences += len(document.sentences)
        for company in document.companies:
            occurrences = document.text.count(company)
            mentions[company] += max(occurrences, 1)
        if document.doc_type in TRIGGER_DOC_TYPES:
            n_trigger_docs += 1
            trigger_doc_sentences += len(document.sentences)
            n_trigger_sentences += sum(
                1 for s in document.sentences if s.label is not None
            )
    return CorpusStats(
        n_documents=len(documents),
        n_sentences=n_sentences,
        n_trigger_documents=n_trigger_docs,
        n_trigger_sentences=n_trigger_sentences,
        doc_type_counts=dict(doc_types),
        company_mention_counts=dict(mentions),
        _trigger_doc_sentence_count=trigger_doc_sentences,
    )


def render_stats(stats: CorpusStats) -> str:
    """Human-readable summary."""
    lines = [
        f"documents:           {stats.n_documents}",
        f"sentences:           {stats.n_sentences}",
        f"trigger documents:   {stats.n_trigger_documents} "
        f"({stats.trigger_document_fraction:.1%})",
        f"noise inside trigger docs: "
        f"{stats.noise_fraction_in_trigger_docs:.1%} of sentences",
        f"top-10 companies' mention share: "
        f"{stats.mention_share_of_top(10):.1%}",
        "doc types:",
    ]
    for doc_type, count in sorted(
        stats.doc_type_counts.items(), key=lambda kv: -kv[1]
    ):
        lines.append(f"  {doc_type:<18s} {count}")
    return "\n".join(lines)
