"""Sentence templates for the synthetic business-news web.

Each factory renders one sentence from the vocabulary in
:mod:`repro.corpus.vocab` and returns it together with its ground-truth
label: the sales-driver identifier when the sentence expresses a trigger
event, or ``None`` for noise.  The templates deliberately cover the
phenomena the paper calls out:

* many surface variations per event type (the training set "must capture
  all variations that express trigger events", section 3.3.1);
* *misleading* near-positive sentences — biography lines such as
  ``Mr. Andersen was the CEO of XYZ Inc. from 1980-1985`` that "deceive
  the classifier because of its features" (section 5.2);
* in-document noise: even a relevant page contains sentences that are not
  trigger events (Figure 6).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.corpus import vocab

#: Canonical sales-driver identifiers used throughout the library.
MERGERS_ACQUISITIONS = "mergers_acquisitions"
CHANGE_IN_MANAGEMENT = "change_in_management"
REVENUE_GROWTH = "revenue_growth"

ALL_DRIVERS = (MERGERS_ACQUISITIONS, CHANGE_IN_MANAGEMENT, REVENUE_GROWTH)

#: Drivers beyond the paper's three, opened by the query-planner rig
#: (ROADMAP item 3).  They are additive: nothing in the default corpus
#: mix or ``builtin_drivers()`` changes unless a recipe asks for them.
FUNDING_ROUNDS = "funding_rounds"
LAYOFFS = "layoffs"

EXTENDED_DRIVERS = ALL_DRIVERS + (FUNDING_ROUNDS, LAYOFFS)


@dataclass(frozen=True, slots=True)
class TemplateSentence:
    """A rendered sentence with its ground-truth driver label."""

    text: str
    label: str | None


def _zipf_weights(n: int, s: float = 1.15) -> list[float]:
    """Zipfian popularity weights: rank r gets weight 1 / r**s."""
    return [1.0 / (rank**s) for rank in range(1, n + 1)]


#: Real news coverage is extremely head-heavy: a small set of companies,
#: executives and places dominates mentions across *all* page types.
#: Without this, specific entity instances would spuriously predict the
#: trigger class in a finite corpus, inverting the paper's Figure 3/4
#: finding that entity categories are best represented by presence-
#: absence rather than instance values.
_ORG_WEIGHTS = _zipf_weights(len(vocab.ORGANIZATIONS))
_PEOPLE_WEIGHTS = _zipf_weights(len(vocab.PEOPLE))
_PLACE_WEIGHTS = _zipf_weights(len(vocab.PLACES))


def zipf_choice(rng: random.Random, items: list[str],
                weights: list[float]) -> str:
    """Popularity-weighted choice."""
    return rng.choices(items, weights=weights, k=1)[0]


class EntityPool:
    """Samples coherent entity mentions for one document.

    A document talks about a small, consistent cast: the same company is
    the acquirer throughout an M&A article, the same person is appointed
    throughout an appointment article.
    """

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self.company = zipf_choice(rng, vocab.ORGANIZATIONS, _ORG_WEIGHTS)
        self.other_company = self.company
        while self.other_company == self.company:
            self.other_company = zipf_choice(
                rng, vocab.ORGANIZATIONS, _ORG_WEIGHTS
            )
        # Most executives in the news are "known" (in the NER gazetteer);
        # a minority are novel first+last combinations the annotator can
        # only catch via patterns — realistic out-of-vocabulary pressure.
        if rng.random() < 0.7:
            self.person = zipf_choice(rng, vocab.PEOPLE, _PEOPLE_WEIGHTS)
        else:
            first = rng.choice(vocab.FIRST_NAMES)
            last = rng.choice(vocab.LAST_NAMES)
            self.person = f"{first} {last}"
        self.person_last = self.person.split()[-1]
        # C-suite titles dominate real executive-change news; weight them
        # up so smart queries like "new CEO" behave as in the paper.
        common = ["CEO", "CTO", "CFO", "COO", "President"]
        if rng.random() < 0.6:
            self.designation = rng.choice(common)
        else:
            self.designation = rng.choice(vocab.DESIGNATIONS)
        self.place = zipf_choice(rng, vocab.PLACES, _PLACE_WEIGHTS)
        self.product = rng.choice(vocab.PRODUCTS)

    def year(self, low: int = 2002, high: int = 2006) -> int:
        return self._rng.randint(low, high)

    def old_year(self) -> int:
        return self._rng.randint(1975, 1999)

    def amount(self) -> str:
        value = self._rng.choice(
            ["1.2", "2.5", "3", "4.8", "5", "7.5", "10", "12", "150", "320",
             "480", "600", "750", "900"]
        )
        unit = self._rng.choice(["million", "billion"])
        return f"${value} {unit}"

    def percent(self) -> str:
        return f"{self._rng.randint(2, 48)}%"

    def quarter(self) -> str:
        return self._rng.choice(
            ["the first quarter", "the second quarter", "the third quarter",
             "the fourth quarter"]
        )


# ---------------------------------------------------------------------------
# Mergers & acquisitions trigger sentences
# ---------------------------------------------------------------------------

def ma_trigger(pool: EntityPool, rng: random.Random) -> TemplateSentence:
    """A current mergers & acquisitions trigger event."""
    verb = rng.choice(vocab.ACQUISITION_VERBS)
    a, b = pool.company, pool.other_company
    forms = [
        f"{a} {verb} {b} for {pool.amount()}.",
        f"{a} announced on {rng.choice(vocab.WEEKDAYS)} that it {verb} "
        f"{b} in a deal valued at {pool.amount()}.",
        f"{a} {verb} {pool.place}-based {b} later this year.",
        f"In a move to expand its {rng.choice(vocab.NEUTRAL_BUSINESS_NOUNS)},"
        f" {a} {verb} {b}.",
        f"{a} said it {verb} {b}, its largest rival in the "
        f"{rng.choice(vocab.NEUTRAL_BUSINESS_NOUNS)}.",
        f"Shareholders of {b} approved the merger with {a} announced "
        f"in {rng.choice(vocab.MONTHS)}.",
        f"The acquisition of {b} by {a} is expected to be finalized in "
        f"{pool.quarter()} of {pool.year()}.",
        f"{a} and {b} announced a definitive merger agreement worth "
        f"{pool.amount()}.",
        f"{a} launched a tender offer for all outstanding shares of "
        f"{b}.",
        f"Regulators cleared the proposed combination of {a} and {b} "
        f"on {rng.choice(vocab.WEEKDAYS)}.",
        f"{a} {verb} {b} in an all-stock transaction, the companies "
        f"said in a joint statement.",
        f"Under the terms announced today, {a} will pay "
        f"{pool.amount()} for {b}.",
    ]
    return TemplateSentence(rng.choice(forms), MERGERS_ACQUISITIONS)


def ma_retrospective(pool: EntityPool, rng: random.Random) -> TemplateSentence:
    """A historical M&A mention — near-positive noise, not a fresh lead."""
    forms = [
        f"Back in {pool.old_year()}, {pool.company} had acquired "
        f"{pool.other_company} in a much smaller deal.",
        f"The company's last major acquisition, {pool.other_company}, "
        f"dates back to {pool.old_year()}.",
        f"Analysts recalled the failed merger between {pool.company} and "
        f"{pool.other_company} in {pool.old_year()}.",
    ]
    return TemplateSentence(rng.choice(forms), None)


# ---------------------------------------------------------------------------
# Change-in-management trigger sentences
# ---------------------------------------------------------------------------

def cim_trigger(pool: EntityPool, rng: random.Random) -> TemplateSentence:
    """A current change-in-management trigger event."""
    verb = rng.choice(vocab.APPOINTMENT_VERBS)
    company, person, designation = (
        pool.company, pool.person, pool.designation,
    )
    forms = [
        f"{company} {verb} {person} as its new {designation}.",
        f"{company} today {verb} {person} {designation}, effective "
        f"{rng.choice(vocab.MONTHS)} {rng.randint(1, 28)}.",
        f"{person} joins {company} as {designation} after a long tenure "
        f"at {pool.other_company}.",
        f"{company} announced that {person} will assume the role of "
        f"{designation} next month.",
        f"The board of {company} {verb} {person} to the post of "
        f"{designation}.",
        f"{person} has been {verb} {designation} of {company}, the "
        f"company said on {rng.choice(vocab.WEEKDAYS)}.",
        f"{company} has a new {designation}: {person}, formerly of "
        f"{pool.other_company}.",
        f"The new {designation} of {company}, {person}, will start in "
        f"{rng.choice(vocab.MONTHS)}.",
        f"{company} introduced {person} as its new {designation} at a "
        f"press conference in {pool.place}.",
        f"{company} appointed {person} interim {designation} while the"
        f" board conducts a permanent search.",
        f"Effective immediately, {person} becomes {designation} of "
        f"{company}, succeeding a long-serving predecessor.",
        f"In a leadership shakeup, {company} named {person} "
        f"{designation} and reshuffled its senior team.",
    ]
    departure_forms = [
        f"{person}, {designation} of {company}, "
        f"{rng.choice(vocab.DEPARTURE_VERBS)} after {rng.randint(2, 15)} "
        f"years at the helm.",
        f"{company} said its {designation} {person} "
        f"{rng.choice(vocab.DEPARTURE_VERBS)}, and a search for a "
        f"successor is under way.",
    ]
    if rng.random() < 0.25:
        return TemplateSentence(rng.choice(departure_forms),
                                CHANGE_IN_MANAGEMENT)
    return TemplateSentence(rng.choice(forms), CHANGE_IN_MANAGEMENT)


def biography_sentence(pool: EntityPool, rng: random.Random) -> TemplateSentence:
    """A biography line — the paper's canonical misleading near-positive."""
    start = pool.old_year()
    end = start + rng.randint(2, 9)
    honorific = rng.choice(vocab.HONORIFICS)
    forms = [
        f"{honorific} {pool.person_last} was the {pool.designation} of "
        f"{pool.company} from {start}-{end}.",
        f"{pool.person} served as {pool.designation} of {pool.company} "
        f"between {start} and {end}.",
        f"Before that, {pool.person} spent {rng.randint(3, 12)} years as "
        f"{pool.designation} at {pool.other_company}.",
        f"{pool.person} began his career at {pool.company} in {start}.",
        f"{pool.person} holds a degree from the University of "
        f"{pool.place} and was formerly {pool.designation} of "
        f"{pool.other_company}.",
    ]
    return TemplateSentence(rng.choice(forms), None)


# ---------------------------------------------------------------------------
# Revenue-growth trigger sentences
# ---------------------------------------------------------------------------

def rg_trigger(pool: EntityPool, rng: random.Random) -> TemplateSentence:
    """A current revenue-growth trigger event."""
    verb = rng.choice(vocab.GROWTH_VERBS)
    noun = rng.choice(vocab.GROWTH_NOUNS)
    company = pool.company
    orientation = rng.choice(
        vocab.POSITIVE_ORIENTATION_PHRASES
        + vocab.NEGATIVE_ORIENTATION_PHRASES
    )
    forms = [
        f"{company} {verb} a {noun} of {pool.percent()} in "
        f"{pool.quarter()}.",
        f"{company} {verb} {noun} of {pool.amount()} for {pool.year()}, "
        f"up {pool.percent()} from a year earlier.",
        f"{company} {verb} {orientation}, with {noun} rising "
        f"{pool.percent()} to {pool.amount()}.",
        f"Quarterly {noun} at {company} rose {pool.percent()} to "
        f"{pool.amount()}, the company {verb.split()[0]} on "
        f"{rng.choice(vocab.WEEKDAYS)}.",
        f"{company} {verb} {noun} of {pool.amount()} in {pool.quarter()},"
        f" citing {orientation}.",
        f"Net income at {company} climbed {pool.percent()} as the company"
        f" saw {orientation}.",
        # Declines are trigger events for the revenue-growth driver too
        # (Figure 8 ranks negative-orientation snippets): a struggling
        # account is also a sales opportunity.
        f"{company} {verb} that quarterly {noun} fell {pool.percent()}"
        f" amid {rng.choice(vocab.NEGATIVE_ORIENTATION_PHRASES)}.",
        f"Revenue at {company} declined {pool.percent()} to "
        f"{pool.amount()}, missing analyst expectations.",
        f"{company} raised its full-year guidance after {noun} grew "
        f"{pool.percent()} in {pool.quarter()}.",
    ]
    return TemplateSentence(rng.choice(forms), REVENUE_GROWTH)


# ---------------------------------------------------------------------------
# Funding-round trigger sentences (extended driver)
# ---------------------------------------------------------------------------

def funding_trigger(pool: EntityPool, rng: random.Random) -> TemplateSentence:
    """A current funding-round trigger event."""
    verb = rng.choice(vocab.FUNDING_VERBS)
    round_name = rng.choice(vocab.FUNDING_ROUND_NAMES)
    investor = rng.choice(vocab.INVESTOR_NAMES)
    company = pool.company
    forms = [
        f"{company} {verb} {pool.amount()} in {round_name} funding led "
        f"by {investor}.",
        f"{company} announced a {pool.amount()} {round_name} funding "
        f"round on {rng.choice(vocab.WEEKDAYS)}.",
        f"{company} {verb} a {round_name} round of {pool.amount()} to "
        f"expand its {rng.choice(vocab.NEUTRAL_BUSINESS_NOUNS)}.",
        f"Investors led by {investor} put {pool.amount()} into "
        f"{company} in its latest {round_name} round.",
        f"{company} closed its {round_name} financing at "
        f"{pool.amount()}, the company said.",
        f"{company} {verb} {pool.amount()} in new funding from "
        f"{investor} and existing backers.",
        f"The {round_name} round brings total capital raised by "
        f"{company} to {pool.amount()}.",
        f"{company} {verb} {pool.amount()} at a valuation of "
        f"{pool.amount()}, with {investor} participating.",
        f"Fresh off a {round_name} funding round, {company} plans to "
        f"hire aggressively in {pool.place}.",
    ]
    return TemplateSentence(rng.choice(forms), FUNDING_ROUNDS)


def funding_retrospective(
    pool: EntityPool, rng: random.Random
) -> TemplateSentence:
    """A historical funding mention — near-positive noise, not a lead."""
    round_name = rng.choice(vocab.FUNDING_ROUND_NAMES)
    forms = [
        f"{pool.company} last raised money in {pool.old_year()}, a "
        f"{round_name} round few investors remember.",
        f"The company's early backers from its {pool.old_year()} "
        f"{round_name} round have long since exited.",
        f"Back in {pool.old_year()}, {pool.company} struggled to close "
        f"its {round_name} round.",
    ]
    return TemplateSentence(rng.choice(forms), None)


# ---------------------------------------------------------------------------
# Layoff trigger sentences (extended driver)
# ---------------------------------------------------------------------------

def layoff_trigger(pool: EntityPool, rng: random.Random) -> TemplateSentence:
    """A current layoff trigger event."""
    verb = rng.choice(vocab.LAYOFF_VERBS)
    noun = rng.choice(vocab.LAYOFF_NOUNS)
    company = pool.company
    headcount = rng.randint(40, 5000)
    forms = [
        f"{company} {verb} {headcount} {noun}, about {pool.percent()} "
        f"of its workforce.",
        f"{company} said it {verb} {pool.percent()} of its workforce "
        f"as part of a restructuring.",
        f"{company} announced layoffs affecting {headcount} {noun} in "
        f"{pool.place}.",
        f"In a cost-cutting move, {company} {verb} {headcount} {noun} "
        f"across its {rng.choice(vocab.NEUTRAL_BUSINESS_NOUNS)} "
        f"division.",
        f"{company} will reduce headcount by {headcount}, citing "
        f"{rng.choice(vocab.NEGATIVE_ORIENTATION_PHRASES)}.",
        f"The job cuts at {company} will hit {headcount} {noun} by "
        f"{rng.choice(vocab.MONTHS)}.",
        f"{company} {verb} up to {pool.percent()} of staff, the "
        f"company said on {rng.choice(vocab.WEEKDAYS)}.",
        f"{company} confirmed job cuts of {headcount} {noun} after "
        f"{rng.choice(vocab.NEGATIVE_ORIENTATION_PHRASES)}.",
        f"{company} {verb} {headcount} {noun} and will close its "
        f"{pool.place} office.",
    ]
    return TemplateSentence(rng.choice(forms), LAYOFFS)


def layoff_rumor(pool: EntityPool, rng: random.Random) -> TemplateSentence:
    """Layoff-adjacent noise: denials and old rounds, not fresh leads."""
    forms = [
        f"{pool.company} denied rumors of layoffs circulating in "
        f"{pool.place}.",
        f"{pool.company} weathered the {pool.old_year()} downturn "
        f"without layoffs, executives like to note.",
        f"A spokesperson said {pool.company} has no plans to cut jobs "
        f"this year.",
    ]
    return TemplateSentence(rng.choice(forms), None)


# ---------------------------------------------------------------------------
# Noise sentences
# ---------------------------------------------------------------------------

def business_noise(pool: EntityPool, rng: random.Random) -> TemplateSentence:
    """Business-flavoured filler that is not a trigger event (Figure 6)."""
    forms = [
        f"{pool.company} is headquartered in {pool.place} and employs "
        f"{rng.randint(200, 90000)} people.",
        f"Shares of {pool.company} closed at ${rng.randint(5, 180)} on "
        f"{rng.choice(vocab.WEEKDAYS)}.",
        f"The {rng.choice(vocab.NEUTRAL_BUSINESS_NOUNS)} remains "
        f"competitive, analysts said.",
        f"{pool.company} sells the {pool.product} "
        f"{rng.choice(vocab.OBJECTS)} to customers in {pool.place}.",
        f"A spokesperson for {pool.company} declined to comment.",
        f"For more information, visit the company's website or contact "
        f"its {pool.place} office.",
        f"{pool.company} was founded in {pool.old_year()} and is listed "
        f"on the stock exchange.",
        f"Industry observers expect the "
        f"{rng.choice(vocab.NEUTRAL_BUSINESS_NOUNS)} to consolidate.",
        f"The company also announced a new "
        f"{rng.choice(vocab.NEUTRAL_BUSINESS_NOUNS)} for its "
        f"{pool.product} line.",
        f"Customers can register for the {pool.place} user conference in "
        f"{rng.choice(vocab.MONTHS)}.",
        f"Analysts at a {pool.place} brokerage kept their rating on "
        f"{pool.company} unchanged.",
        f"{pool.company} opened a support center in {pool.place} "
        f"staffed around the clock.",
        f"The {pool.product} line is available through resellers in "
        f"{rng.randint(5, 80)} countries.",
        f"{pool.company} renewed its sponsorship of the {pool.place} "
        f"technology fair.",
        f"A panel discussion on the {rng.choice(vocab.NEUTRAL_BUSINESS_NOUNS)}"
        f" drew attendees from across the industry.",
    ]
    return TemplateSentence(rng.choice(forms), None)


def background_sentence(rng: random.Random) -> TemplateSentence:
    """Entirely off-topic web text (the random negative class)."""
    topic = rng.choice(vocab.BACKGROUND_TOPICS)
    place = rng.choice(vocab.PLACES)
    month = rng.choice(vocab.MONTHS)
    forms = [
        f"Our guide to {topic} has been updated for {month}.",
        f"Residents of {place} gathered for an afternoon of {topic}.",
        f"The {topic} season opens in {month} this year.",
        f"Here are ten tips for enjoying {topic} on a budget.",
        f"Local volunteers organized {topic} events across {place}.",
        f"Read reviews and ratings about {topic} from our community.",
        f"The weather in {place} stayed mild through the weekend.",
        f"Sign up for our newsletter to get updates about {topic}.",
        f"A new exhibition devoted to {topic} opened in {place}.",
        f"Experts shared advice on {topic} at the {place} fair.",
    ]
    return TemplateSentence(rng.choice(forms), None)


def product_review_sentence(
    pool: EntityPool, rng: random.Random
) -> TemplateSentence:
    """Product-review text: mentions ORG/PROD but carries no trigger."""
    forms = [
        f"We tested the {pool.product} {rng.choice(vocab.OBJECTS)} from "
        f"{pool.company} for two weeks.",
        f"The {pool.product} ships with {rng.randint(2, 64)} gigabytes of "
        f"memory.",
        f"Setup of the {pool.product} took about {rng.randint(5, 45)} "
        f"minutes.",
        f"At ${rng.randint(99, 4999)}, the {pool.product} is priced above "
        f"rivals.",
        f"Overall, the {pool.product} earns {rng.randint(2, 5)} out of 5 "
        f"stars.",
    ]
    return TemplateSentence(rng.choice(forms), None)
