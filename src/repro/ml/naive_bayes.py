"""Naive Bayes classifiers (the paper's workhorse, section 3.3.2).

Two standard variants over sparse document-term matrices:

* :class:`MultinomialNaiveBayes` — word-count event model, the model
  behind Weka's text NB setups and the natural fit for snippet counts;
* :class:`BernoulliNaiveBayes` — binary presence model, the natural fit
  for presence-absence abstracted features.

Both support per-instance sample weights (needed for the oversampling of
pure positives by a factor of 3, section 3.3.2) and Laplace smoothing.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.ml.base import check_fit_inputs, check_is_fitted


class MultinomialNaiveBayes:
    """Multinomial NB with Laplace smoothing and sample weights."""

    def __init__(self, alpha: float = 1.0) -> None:
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        self.alpha = alpha
        self._fitted = False
        self.class_log_prior_: np.ndarray | None = None
        self.feature_log_prob_: np.ndarray | None = None

    def fit(
        self,
        X: sparse.spmatrix,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "MultinomialNaiveBayes":
        X, y = check_fit_inputs(X, y)
        n_features = X.shape[1]
        if sample_weight is None:
            sample_weight = np.ones(X.shape[0])
        sample_weight = np.asarray(sample_weight, dtype=np.float64)

        class_counts = np.zeros(2)
        feature_counts = np.zeros((2, n_features))
        for label in (0, 1):
            mask = y == label
            weights = sample_weight[mask]
            class_counts[label] = weights.sum()
            if weights.size:
                weighted = sparse.diags(weights) @ X[mask]
                feature_counts[label] = np.asarray(
                    weighted.sum(axis=0)
                ).ravel()

        total = class_counts.sum()
        if total <= 0:
            raise ValueError("all sample weights are zero")
        # An absent class keeps -inf prior: it can never win prediction.
        with np.errstate(divide="ignore"):
            self.class_log_prior_ = np.log(class_counts / total)
        smoothed = feature_counts + self.alpha
        self.feature_log_prob_ = np.log(
            smoothed / smoothed.sum(axis=1, keepdims=True)
        )
        self._fitted = True
        return self

    def joint_log_likelihood(self, X: sparse.spmatrix) -> np.ndarray:
        check_is_fitted(self._fitted, "MultinomialNaiveBayes")
        X = sparse.csr_matrix(X)
        return X @ self.feature_log_prob_.T + self.class_log_prior_

    def predict_proba(self, X: sparse.spmatrix) -> np.ndarray:
        return _softmax_rows(self.joint_log_likelihood(X))

    def predict(self, X: sparse.spmatrix) -> np.ndarray:
        return np.argmax(self.joint_log_likelihood(X), axis=1)


class BernoulliNaiveBayes:
    """Bernoulli NB: models presence/absence of every feature."""

    def __init__(self, alpha: float = 1.0) -> None:
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        self.alpha = alpha
        self._fitted = False
        self.class_log_prior_: np.ndarray | None = None
        self._log_p: np.ndarray | None = None  # log P(f=1 | class)
        self._log_q: np.ndarray | None = None  # log P(f=0 | class)

    def fit(
        self,
        X: sparse.spmatrix,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "BernoulliNaiveBayes":
        X, y = check_fit_inputs(X, y)
        X = X.copy()
        X.data = np.ones_like(X.data)  # binarize
        if sample_weight is None:
            sample_weight = np.ones(X.shape[0])
        sample_weight = np.asarray(sample_weight, dtype=np.float64)

        n_features = X.shape[1]
        class_counts = np.zeros(2)
        presence = np.zeros((2, n_features))
        for label in (0, 1):
            mask = y == label
            weights = sample_weight[mask]
            class_counts[label] = weights.sum()
            if weights.size:
                weighted = sparse.diags(weights) @ X[mask]
                presence[label] = np.asarray(weighted.sum(axis=0)).ravel()

        total = class_counts.sum()
        if total <= 0:
            raise ValueError("all sample weights are zero")
        with np.errstate(divide="ignore"):
            self.class_log_prior_ = np.log(class_counts / total)
        denom = class_counts[:, None] + 2 * self.alpha
        prob = (presence + self.alpha) / denom
        self._log_p = np.log(prob)
        self._log_q = np.log(1.0 - prob)
        self._fitted = True
        return self

    def joint_log_likelihood(self, X: sparse.spmatrix) -> np.ndarray:
        check_is_fitted(self._fitted, "BernoulliNaiveBayes")
        X = sparse.csr_matrix(X).copy()
        X.data = np.ones_like(X.data)
        base = self._log_q.sum(axis=1) + self.class_log_prior_
        delta = X @ (self._log_p - self._log_q).T
        return delta + base

    def predict_proba(self, X: sparse.spmatrix) -> np.ndarray:
        return _softmax_rows(self.joint_log_likelihood(X))

    def predict(self, X: sparse.spmatrix) -> np.ndarray:
        return np.argmax(self.joint_log_likelihood(X), axis=1)


def _softmax_rows(log_likelihood: np.ndarray) -> np.ndarray:
    shifted = log_likelihood - log_likelihood.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)
