"""EM with naive Bayes over labeled + unlabeled data (Nigam et al. [10]).

The paper cites "Using EM to classify text from labeled and unlabeled
documents" as one of the classifiers usable once training data exists.
The algorithm: train NB on the labeled set; E-step: soft-label the
unlabeled documents with class posteriors; M-step: retrain NB on labeled
plus fractionally-weighted unlabeled documents; iterate to convergence.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.ml.base import check_is_fitted
from repro.ml.naive_bayes import MultinomialNaiveBayes


class EmNaiveBayes:
    """Semi-supervised multinomial NB via expectation-maximization."""

    def __init__(
        self,
        alpha: float = 1.0,
        max_iter: int = 10,
        tol: float = 1e-4,
        unlabeled_weight: float = 1.0,
    ) -> None:
        if max_iter <= 0:
            raise ValueError("max_iter must be positive")
        if not 0 < unlabeled_weight <= 1:
            raise ValueError("unlabeled_weight must be in (0, 1]")
        self.alpha = alpha
        self.max_iter = max_iter
        self.tol = tol
        self.unlabeled_weight = unlabeled_weight
        self._fitted = False
        self.model_: MultinomialNaiveBayes | None = None
        self.n_iter_: int = 0

    def fit(
        self,
        X_labeled: sparse.spmatrix,
        y_labeled: np.ndarray,
        X_unlabeled: sparse.spmatrix | None = None,
    ) -> "EmNaiveBayes":
        X_labeled = sparse.csr_matrix(X_labeled)
        y_labeled = np.asarray(y_labeled, dtype=np.int64)
        model = MultinomialNaiveBayes(alpha=self.alpha)
        model.fit(X_labeled, y_labeled)

        if X_unlabeled is None or X_unlabeled.shape[0] == 0:
            self.model_ = model
            self.n_iter_ = 0
            self._fitted = True
            return self

        X_unlabeled = sparse.csr_matrix(X_unlabeled)
        X_all = sparse.vstack([X_labeled, X_unlabeled])
        n_labeled = X_labeled.shape[0]
        n_unlabeled = X_unlabeled.shape[0]
        previous = None
        for iteration in range(1, self.max_iter + 1):
            # E-step: posterior responsibility of class 1 on unlabeled docs.
            posterior = model.predict_proba(X_unlabeled)[:, 1]
            self.n_iter_ = iteration
            if previous is not None:
                shift = float(np.abs(posterior - previous).mean())
                if shift < self.tol:
                    break
            previous = posterior

            # M-step: duplicate the unlabeled block once per class with
            # fractional weights equal to the responsibilities.
            X_em = sparse.vstack([X_all, X_unlabeled])
            y_em = np.concatenate(
                [
                    y_labeled,
                    np.ones(n_unlabeled, dtype=np.int64),
                    np.zeros(n_unlabeled, dtype=np.int64),
                ]
            )
            weights = np.concatenate(
                [
                    np.ones(n_labeled),
                    self.unlabeled_weight * posterior,
                    self.unlabeled_weight * (1.0 - posterior),
                ]
            )
            model = MultinomialNaiveBayes(alpha=self.alpha)
            model.fit(X_em, y_em, sample_weight=weights)

        self.model_ = model
        self._fitted = True
        return self

    def predict_proba(self, X: sparse.spmatrix) -> np.ndarray:
        check_is_fitted(self._fitted, "EmNaiveBayes")
        return self.model_.predict_proba(X)

    def predict(self, X: sparse.spmatrix) -> np.ndarray:
        check_is_fitted(self._fitted, "EmNaiveBayes")
        return self.model_.predict(X)
