"""Noise-tolerant training: ETAP's iterative denoiser + Brodley-Friedl.

Section 3.3.2 trains from three sets — noisy positives ``Pn``, pure
positives ``Pp`` (oversampled 3x when available) and negatives ``N`` —
with an iterative scheme "similar to that proposed in [3]":

1. train the classifier with ``Pn + Pp`` as the positive class, ``N`` as
   the negative class;
2. reclassify ``Pn`` with the trained model and keep only the snippets it
   calls positive;
3. repeat "until the noisy positive data does not change considerably".

:class:`IterativeNoiseReducer` implements that loop.
:func:`brodley_friedl_filter` implements the cited method itself
(Brodley & Friedl 1996): cross-validated ensemble filtering that removes
training instances the ensemble disagrees with.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np
from scipy import sparse

from repro.ml.naive_bayes import MultinomialNaiveBayes

#: Builds a fresh, unfitted classifier for each (re)training round.
ClassifierFactory = Callable[[], object]


def _default_factory() -> MultinomialNaiveBayes:
    return MultinomialNaiveBayes()


@dataclass
class DenoiseIteration:
    """Book-keeping for one round of the iterative scheme."""

    iteration: int
    kept_noisy: int
    dropped_noisy: int
    changed_fraction: float


@dataclass
class DenoiseResult:
    """Final model plus the per-iteration history."""

    model: object
    kept_mask: np.ndarray
    history: list[DenoiseIteration] = field(default_factory=list)

    @property
    def n_iterations(self) -> int:
        return len(self.history)


class IterativeNoiseReducer:
    """The iterative noisy-positive reduction of section 3.3.2.

    ``oversample_pure`` replicates the weight of pure positives (the
    paper uses a factor of 3).  ``min_change`` is the convergence
    threshold: iteration stops when the fraction of noisy positives whose
    keep/drop status changed falls below it (or after ``max_iter``).
    """

    def __init__(
        self,
        classifier_factory: ClassifierFactory = _default_factory,
        max_iter: int = 10,
        min_change: float = 0.01,
        oversample_pure: int = 3,
        min_kept: int = 5,
    ) -> None:
        if max_iter <= 0:
            raise ValueError("max_iter must be positive")
        if oversample_pure < 1:
            raise ValueError("oversample_pure must be >= 1")
        self.classifier_factory = classifier_factory
        self.max_iter = max_iter
        self.min_change = min_change
        self.oversample_pure = oversample_pure
        self.min_kept = min_kept

    def fit(
        self,
        X_noisy_positive: sparse.spmatrix,
        X_negative: sparse.spmatrix,
        X_pure_positive: sparse.spmatrix | None = None,
    ) -> DenoiseResult:
        """Run the loop; the returned model is trained on the final sets."""
        Pn = sparse.csr_matrix(X_noisy_positive)
        N = sparse.csr_matrix(X_negative)
        Pp = (
            sparse.csr_matrix(X_pure_positive)
            if X_pure_positive is not None and X_pure_positive.shape[0] > 0
            else None
        )
        if Pn.shape[0] == 0:
            raise ValueError("noisy positive set is empty")

        kept = np.ones(Pn.shape[0], dtype=bool)
        history: list[DenoiseIteration] = []
        model = None
        for iteration in range(1, self.max_iter + 1):
            model = self._train(Pn[kept], N, Pp)
            predictions = np.asarray(model.predict(Pn)).astype(bool)
            # Never keep fewer than min_kept: degenerate collapse guard.
            if predictions.sum() < self.min_kept:
                scores = model.predict_proba(Pn)[:, 1]
                top = np.argsort(-scores)[: self.min_kept]
                predictions = np.zeros_like(predictions)
                predictions[top] = True
            changed = float((predictions != kept).mean())
            kept = predictions
            history.append(
                DenoiseIteration(
                    iteration=iteration,
                    kept_noisy=int(kept.sum()),
                    dropped_noisy=int((~kept).sum()),
                    changed_fraction=changed,
                )
            )
            if changed < self.min_change:
                break
        # Final model reflects the converged noisy-positive set.
        model = self._train(Pn[kept], N, Pp)
        return DenoiseResult(model=model, kept_mask=kept, history=history)

    def _train(
        self,
        Pn_kept: sparse.csr_matrix,
        N: sparse.csr_matrix,
        Pp: sparse.csr_matrix | None,
    ):
        blocks = [Pn_kept]
        weights = [np.ones(Pn_kept.shape[0])]
        if Pp is not None:
            blocks.append(Pp)
            weights.append(
                np.full(Pp.shape[0], float(self.oversample_pure))
            )
        n_positive_rows = sum(block.shape[0] for block in blocks)
        blocks.append(N)
        weights.append(np.ones(N.shape[0]))
        X = sparse.vstack(blocks)
        y = np.concatenate(
            [
                np.ones(n_positive_rows, dtype=np.int64),
                np.zeros(N.shape[0], dtype=np.int64),
            ]
        )
        sample_weight = np.concatenate(weights)
        model = self.classifier_factory()
        try:
            model.fit(X, y, sample_weight=sample_weight)
        except TypeError:
            # Classifier without weight support: replicate pure positives.
            model.fit(*_replicate(X, y, sample_weight))
        return model


def _replicate(
    X: sparse.csr_matrix, y: np.ndarray, sample_weight: np.ndarray
) -> tuple[sparse.csr_matrix, np.ndarray]:
    """Materialize integer sample weights by row replication."""
    reps = np.maximum(np.round(sample_weight).astype(int), 1)
    rows = np.repeat(np.arange(X.shape[0]), reps)
    return X[rows], y[rows]


def brodley_friedl_filter(
    X: sparse.spmatrix,
    y: np.ndarray,
    classifier_factories: list[ClassifierFactory] | None = None,
    n_folds: int = 4,
    consensus: bool = False,
    seed: int = 29,
) -> np.ndarray:
    """Cross-validated ensemble filtering of mislabeled instances [3].

    Each fold is held out; an ensemble trained on the remaining folds
    votes on the held-out labels.  An instance is flagged as mislabeled
    when the majority (or, with ``consensus=True``, every member) of the
    ensemble disagrees with its recorded label.  Returns a boolean keep
    mask.
    """
    X = sparse.csr_matrix(X)
    y = np.asarray(y, dtype=np.int64)
    if X.shape[0] != y.shape[0]:
        raise ValueError("X and y disagree on sample count")
    if n_folds < 2:
        raise ValueError("n_folds must be >= 2")
    if classifier_factories is None:
        classifier_factories = [_default_factory]

    n = X.shape[0]
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    fold_of = np.empty(n, dtype=int)
    for position, row in enumerate(order):
        fold_of[row] = position % n_folds

    votes_against = np.zeros(n, dtype=int)
    for fold in range(n_folds):
        test_mask = fold_of == fold
        train_mask = ~test_mask
        if train_mask.sum() == 0 or test_mask.sum() == 0:
            continue
        if len(np.unique(y[train_mask])) < 2:
            continue  # cannot train a two-class model on one class
        for factory in classifier_factories:
            model = factory()
            model.fit(X[train_mask], y[train_mask])
            predicted = np.asarray(model.predict(X[test_mask]))
            disagreement = predicted != y[test_mask]
            votes_against[np.where(test_mask)[0][disagreement]] += 1

    threshold = (
        len(classifier_factories)
        if consensus
        else (len(classifier_factories) // 2) + 1
    )
    return votes_against < threshold
