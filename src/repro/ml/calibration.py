"""Probability calibration: Platt scaling and reliability measurement.

Naive Bayes posteriors are notoriously overconfident — scores pile up
at 0 and 1 (visible in the threshold bench), which makes ETAP's
"confidence" column misleading for analysts.  Platt scaling fits a
one-dimensional logistic regression on a held-out set, mapping raw
scores to calibrated probabilities; the Brier score and reliability
bins quantify the improvement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


def brier_score(y_true: Sequence[int], probs: Sequence[float]) -> float:
    """Mean squared error of predicted probabilities; lower is better."""
    y_true = np.asarray(y_true, dtype=np.float64)
    probs = np.asarray(probs, dtype=np.float64)
    if y_true.shape != probs.shape:
        raise ValueError("y_true and probs must align")
    if y_true.size == 0:
        raise ValueError("empty input")
    return float(np.mean((probs - y_true) ** 2))


@dataclass(frozen=True, slots=True)
class ReliabilityBin:
    """One bin of a reliability diagram."""

    lower: float
    upper: float
    mean_predicted: float
    observed_rate: float
    count: int


def reliability_bins(
    y_true: Sequence[int],
    probs: Sequence[float],
    n_bins: int = 10,
) -> list[ReliabilityBin]:
    """Equal-width reliability diagram bins (empty bins omitted)."""
    if n_bins <= 0:
        raise ValueError("n_bins must be positive")
    y_true = np.asarray(y_true, dtype=np.float64)
    probs = np.asarray(probs, dtype=np.float64)
    edges = np.linspace(0.0, 1.0, n_bins + 1)
    bins = []
    for lower, upper in zip(edges, edges[1:]):
        mask = (probs >= lower) & (
            (probs < upper) if upper < 1.0 else (probs <= upper)
        )
        count = int(mask.sum())
        if count == 0:
            continue
        bins.append(
            ReliabilityBin(
                lower=float(lower),
                upper=float(upper),
                mean_predicted=float(probs[mask].mean()),
                observed_rate=float(y_true[mask].mean()),
                count=count,
            )
        )
    return bins


def expected_calibration_error(
    y_true: Sequence[int],
    probs: Sequence[float],
    n_bins: int = 10,
) -> float:
    """Count-weighted |confidence - accuracy| across reliability bins."""
    bins = reliability_bins(y_true, probs, n_bins)
    total = sum(b.count for b in bins)
    if total == 0:
        return 0.0
    return sum(
        b.count * abs(b.mean_predicted - b.observed_rate) for b in bins
    ) / total


class PlattScaler:
    """Logistic map p' = sigmoid(a * logit_clip(p) + b), fit by Newton
    iterations on held-out labels.

    Fitting on raw *scores* in [0, 1]: scores are first squashed away
    from exactly 0/1, then logit-transformed, giving the classic Platt
    sigmoid over the decision value.
    """

    def __init__(self, max_iter: int = 2000, tol: float = 1e-9) -> None:
        self.max_iter = max_iter
        self.tol = tol
        self.a_: float = 1.0
        self.b_: float = 0.0
        self._fitted = False

    @staticmethod
    def _logit(probs: np.ndarray) -> np.ndarray:
        clipped = np.clip(probs, 1e-7, 1 - 1e-7)
        return np.log(clipped / (1 - clipped))

    def fit(
        self, scores: Sequence[float], y_true: Sequence[int]
    ) -> "PlattScaler":
        from scipy import sparse

        from repro.ml.logreg import LogisticRegression

        scores = np.asarray(scores, dtype=np.float64)
        y = np.asarray(y_true, dtype=np.float64)
        if scores.shape != y.shape:
            raise ValueError("scores and y_true must align")
        if len(np.unique(y)) < 2:
            raise ValueError("calibration needs both classes")
        x = self._logit(scores)
        # Standardize for conditioning; fold the scale back afterwards.
        scale = float(x.std()) or 1.0
        x_std = x / scale

        # Platt's target smoothing avoids overfitting tiny held-out
        # sets; realized through sample weights on duplicated rows so
        # the plain weighted logistic regression can fit it.
        n_pos = float(y.sum())
        n_neg = float(len(y) - n_pos)
        t = np.where(
            y == 1, (n_pos + 1) / (n_pos + 2), 1 / (n_neg + 2)
        )
        X = sparse.csr_matrix(
            np.concatenate([x_std, x_std])[:, None]
        )
        targets = np.concatenate(
            [np.ones_like(y, dtype=np.int64),
             np.zeros_like(y, dtype=np.int64)]
        )
        weights = np.concatenate([t, 1.0 - t])
        model = LogisticRegression(
            l2=1e-6, learning_rate=0.5, max_iter=self.max_iter,
            tol=self.tol,
        )
        model.fit(X, targets, sample_weight=weights)
        self.a_ = float(model.weights_[0]) / scale
        self.b_ = float(model.bias_)
        self._fitted = True
        return self

    def transform(self, scores: Sequence[float]) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("PlattScaler must be fit first")
        x = self._logit(np.asarray(scores, dtype=np.float64))
        z = np.clip(self.a_ * x + self.b_, -35, 35)
        return 1 / (1 + np.exp(-z))

    def fit_transform(
        self, scores: Sequence[float], y_true: Sequence[int]
    ) -> np.ndarray:
        return self.fit(scores, y_true).transform(scores)
