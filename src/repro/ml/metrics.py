"""Evaluation metrics: precision/recall/F1 (Table 1), AP, and ranking MRR.

The F1 measure "is computed as the harmonic mean of the precision and
recall measures" (section 5.1); the mean-reciprocal-rank variant of
Equation 2 lives in :mod:`repro.core.ranking` (it aggregates trigger
events per company), while the classic query-level MRR is provided here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True, slots=True)
class ConfusionMatrix:
    """Binary confusion counts (positive class = 1)."""

    tp: int
    fp: int
    fn: int
    tn: int

    @property
    def n(self) -> int:
        return self.tp + self.fp + self.fn + self.tn


@dataclass(frozen=True, slots=True)
class PrecisionRecallF1:
    """The Table 1 triple."""

    precision: float
    recall: float
    f1: float


def confusion_matrix(
    y_true: Sequence[int], y_pred: Sequence[int]
) -> ConfusionMatrix:
    y_true = np.asarray(y_true, dtype=np.int64)
    y_pred = np.asarray(y_pred, dtype=np.int64)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same length")
    tp = int(((y_true == 1) & (y_pred == 1)).sum())
    fp = int(((y_true == 0) & (y_pred == 1)).sum())
    fn = int(((y_true == 1) & (y_pred == 0)).sum())
    tn = int(((y_true == 0) & (y_pred == 0)).sum())
    return ConfusionMatrix(tp=tp, fp=fp, fn=fn, tn=tn)


def precision_recall_f1(
    y_true: Sequence[int], y_pred: Sequence[int]
) -> PrecisionRecallF1:
    """Precision, recall and their harmonic mean for the positive class."""
    cm = confusion_matrix(y_true, y_pred)
    precision = cm.tp / (cm.tp + cm.fp) if (cm.tp + cm.fp) else 0.0
    recall = cm.tp / (cm.tp + cm.fn) if (cm.tp + cm.fn) else 0.0
    if precision + recall == 0:
        f1 = 0.0
    else:
        f1 = 2 * precision * recall / (precision + recall)
    return PrecisionRecallF1(precision=precision, recall=recall, f1=f1)


def accuracy(y_true: Sequence[int], y_pred: Sequence[int]) -> float:
    cm = confusion_matrix(y_true, y_pred)
    return (cm.tp + cm.tn) / cm.n if cm.n else 0.0


def average_precision(
    y_true: Sequence[int], scores: Sequence[float]
) -> float:
    """Area under the precision-recall curve (step interpolation)."""
    y_true = np.asarray(y_true, dtype=np.int64)
    scores = np.asarray(scores, dtype=np.float64)
    if y_true.shape != scores.shape:
        raise ValueError("y_true and scores must have the same length")
    n_pos = int((y_true == 1).sum())
    if n_pos == 0:
        return 0.0
    order = np.argsort(-scores, kind="stable")
    hits = 0
    total = 0.0
    for rank, row in enumerate(order, start=1):
        if y_true[row] == 1:
            hits += 1
            total += hits / rank
    return total / n_pos


def precision_at_k(
    y_true: Sequence[int], scores: Sequence[float], k: int
) -> float:
    """Fraction of the top-k ranked items that are positive."""
    if k <= 0:
        raise ValueError("k must be positive")
    y_true = np.asarray(y_true, dtype=np.int64)
    scores = np.asarray(scores, dtype=np.float64)
    order = np.argsort(-scores, kind="stable")[:k]
    if order.size == 0:
        return 0.0
    return float(y_true[order].mean())


def reciprocal_rank(relevant: Sequence[bool]) -> float:
    """1/rank of the first relevant item in a ranked list (0 if none)."""
    for rank, is_relevant in enumerate(relevant, start=1):
        if is_relevant:
            return 1.0 / rank
    return 0.0


def mean_reciprocal_rank(ranked_lists: Sequence[Sequence[bool]]) -> float:
    """Classic query-set MRR over per-query relevance lists."""
    if not ranked_lists:
        return 0.0
    return float(
        np.mean([reciprocal_rank(items) for items in ranked_lists])
    )
