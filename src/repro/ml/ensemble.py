"""Soft-voting ensemble over heterogeneous classifiers.

Averaging the posteriors of diverse models (multinomial NB, Bernoulli
NB, linear SVM) smooths each family's failure modes; the ensemble plugs
into the iterative denoiser anywhere a single classifier does — it
exposes the same ``fit``/``predict``/``predict_proba`` surface and
forwards ``sample_weight`` to members that accept it.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np
from scipy import sparse

from repro.ml.base import check_is_fitted
from repro.ml.naive_bayes import BernoulliNaiveBayes, MultinomialNaiveBayes
from repro.ml.svm import LinearSvm


class VotingEnsemble:
    """Weighted average of member ``predict_proba`` outputs."""

    def __init__(
        self,
        member_factories: Sequence[Callable[[], object]] | None = None,
        weights: Sequence[float] | None = None,
    ) -> None:
        if member_factories is None:
            member_factories = [
                MultinomialNaiveBayes,
                BernoulliNaiveBayes,
                lambda: LinearSvm(epochs=3),
            ]
        if not member_factories:
            raise ValueError("ensemble needs at least one member")
        if weights is not None:
            if len(weights) != len(member_factories):
                raise ValueError("weights must match member count")
            if any(w < 0 for w in weights) or sum(weights) <= 0:
                raise ValueError(
                    "weights must be non-negative with positive sum"
                )
        self.member_factories = list(member_factories)
        self.weights = (
            list(weights)
            if weights is not None
            else [1.0] * len(member_factories)
        )
        self.members_: list[object] = []
        self._fitted = False

    def fit(
        self,
        X: sparse.spmatrix,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "VotingEnsemble":
        self.members_ = []
        for factory in self.member_factories:
            member = factory()
            try:
                member.fit(X, y, sample_weight=sample_weight)
            except TypeError:
                member.fit(X, y)
            self.members_.append(member)
        self._fitted = True
        return self

    def predict_proba(self, X: sparse.spmatrix) -> np.ndarray:
        check_is_fitted(self._fitted, "VotingEnsemble")
        total = np.zeros((X.shape[0], 2))
        for member, weight in zip(self.members_, self.weights):
            total += weight * member.predict_proba(X)
        return total / sum(self.weights)

    def predict(self, X: sparse.spmatrix) -> np.ndarray:
        return (self.predict_proba(X)[:, 1] >= 0.5).astype(np.int64)
