"""Linear SVM trained with Pegasos (primal stochastic sub-gradient).

The paper cites Joachims' SVM text classification [7] as the alternative
to naive Bayes when enough pure positive data exists.  This is a compact
linear SVM on sparse counts: hinge loss, L2 regularization, Pegasos
learning-rate schedule, optional class-balanced weighting (essential
here, since the negative class dwarfs the positive one).  ``predict_proba``
applies a Platt-style sigmoid to the margin so the ranking component can
treat SVM scores like posteriors.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.ml.base import check_fit_inputs, check_is_fitted


class LinearSvm:
    """Pegasos-trained linear SVM for two-class sparse data."""

    def __init__(
        self,
        lam: float = 1e-4,
        epochs: int = 5,
        seed: int = 13,
        balance_classes: bool = True,
    ) -> None:
        if lam <= 0:
            raise ValueError("lam must be positive")
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        self.lam = lam
        self.epochs = epochs
        self.seed = seed
        self.balance_classes = balance_classes
        self._fitted = False
        self.weights_: np.ndarray | None = None
        self.bias_: float = 0.0

    def fit(self, X: sparse.spmatrix, y: np.ndarray) -> "LinearSvm":
        X, y = check_fit_inputs(X, y)
        n_samples, n_features = X.shape
        signs = np.where(y == 1, 1.0, -1.0)

        class_weight = np.ones(n_samples)
        if self.balance_classes:
            n_pos = max(int((y == 1).sum()), 1)
            n_neg = max(int((y == 0).sum()), 1)
            class_weight = np.where(
                y == 1, n_samples / (2.0 * n_pos), n_samples / (2.0 * n_neg)
            )

        rng = np.random.default_rng(self.seed)
        weights = np.zeros(n_features)
        bias = 0.0
        step = 0
        # Tail averaging: the average of the last epoch's iterates
        # converges far better than the noisy final iterate.
        averaged_weights = np.zeros(n_features)
        averaged_bias = 0.0
        averaged_count = 0
        last_epoch = self.epochs - 1
        for epoch in range(self.epochs):
            order = rng.permutation(n_samples)
            for row in order:
                step += 1
                eta = 1.0 / (self.lam * step)
                xi = X.getrow(row)
                margin = signs[row] * (xi @ weights + bias)
                # The intercept is regularized along with the weights;
                # an unregularized bias would keep the huge early-step
                # contributions (eta = 1/(lam*t)) forever.
                weights *= 1.0 - eta * self.lam
                bias *= 1.0 - eta * self.lam
                if margin < 1.0:
                    scale = eta * class_weight[row] * signs[row]
                    weights[xi.indices] += scale * xi.data
                    bias += scale
                if epoch == last_epoch:
                    averaged_weights += weights
                    averaged_bias += bias
                    averaged_count += 1
        self.weights_ = averaged_weights / averaged_count
        self.bias_ = averaged_bias / averaged_count
        self._fitted = True
        return self

    def decision_function(self, X: sparse.spmatrix) -> np.ndarray:
        check_is_fitted(self._fitted, "LinearSvm")
        X = sparse.csr_matrix(X)
        return np.asarray(X @ self.weights_).ravel() + self.bias_

    def predict(self, X: sparse.spmatrix) -> np.ndarray:
        return (self.decision_function(X) >= 0).astype(np.int64)

    def predict_proba(self, X: sparse.spmatrix) -> np.ndarray:
        """Sigmoid-calibrated margins, shaped like NB's predict_proba."""
        margins = self.decision_function(X)
        p_pos = 1.0 / (1.0 + np.exp(-np.clip(margins, -35, 35)))
        return np.column_stack([1.0 - p_pos, p_pos])
