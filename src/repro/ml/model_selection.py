"""Model selection: stratified k-fold CV and grid search.

The paper fixes its hyper-parameters (two denoising iterations, 3x
oversampling); a downstream user tuning ETAP for a new industry needs
the standard machinery to do so honestly: stratified folds over the
(heavily imbalanced) snippet data, cross-validated F1, and a small grid
searcher over classifier settings.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Callable, Iterator, Mapping, Sequence

import numpy as np
from scipy import sparse

from repro.ml.metrics import precision_recall_f1


def stratified_kfold_indices(
    y: Sequence[int], n_folds: int = 5, seed: int = 31
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield (train_idx, test_idx) with per-class proportions preserved.

    Every fold receives every class that has at least ``n_folds``
    members; smaller classes are spread as evenly as possible.
    """
    y = np.asarray(y, dtype=np.int64)
    if n_folds < 2:
        raise ValueError("n_folds must be >= 2")
    if len(y) < n_folds:
        raise ValueError("more folds than samples")
    rng = np.random.default_rng(seed)
    fold_of = np.empty(len(y), dtype=int)
    for label in np.unique(y):
        members = np.where(y == label)[0]
        members = rng.permutation(members)
        for position, index in enumerate(members):
            fold_of[index] = position % n_folds
    for fold in range(n_folds):
        test_mask = fold_of == fold
        yield np.where(~test_mask)[0], np.where(test_mask)[0]


@dataclass(frozen=True)
class CvResult:
    """Cross-validation outcome for one configuration."""

    mean_f1: float
    std_f1: float
    fold_f1: tuple[float, ...]


def cross_validate_f1(
    factory: Callable[[], object],
    X: sparse.spmatrix,
    y: Sequence[int],
    n_folds: int = 5,
    seed: int = 31,
) -> CvResult:
    """Stratified-CV F1 of classifiers built by ``factory``."""
    X = sparse.csr_matrix(X)
    y = np.asarray(y, dtype=np.int64)
    scores = []
    for train_idx, test_idx in stratified_kfold_indices(
        y, n_folds=n_folds, seed=seed
    ):
        if len(np.unique(y[train_idx])) < 2:
            continue  # cannot train two-class model on one class
        model = factory()
        model.fit(X[train_idx], y[train_idx])
        predictions = np.asarray(model.predict(X[test_idx]))
        scores.append(
            precision_recall_f1(y[test_idx], predictions).f1
        )
    if not scores:
        raise ValueError("no valid folds (degenerate class balance)")
    scores_arr = np.array(scores)
    return CvResult(
        mean_f1=float(scores_arr.mean()),
        std_f1=float(scores_arr.std()),
        fold_f1=tuple(round(s, 6) for s in scores),
    )


@dataclass(frozen=True)
class GridSearchResult:
    """Best configuration found plus the full result table."""

    best_params: dict
    best: CvResult
    table: tuple[tuple[dict, CvResult], ...]


def grid_search(
    factory: Callable[..., object],
    param_grid: Mapping[str, Sequence],
    X: sparse.spmatrix,
    y: Sequence[int],
    n_folds: int = 5,
    seed: int = 31,
) -> GridSearchResult:
    """Exhaustive CV search: ``factory(**params)`` per grid point."""
    if not param_grid:
        raise ValueError("param_grid must not be empty")
    names = list(param_grid)
    table = []
    for values in product(*(param_grid[name] for name in names)):
        params = dict(zip(names, values))
        result = cross_validate_f1(
            lambda p=params: factory(**p), X, y,
            n_folds=n_folds, seed=seed,
        )
        table.append((params, result))
    best_params, best = max(
        table, key=lambda item: (item[1].mean_f1, -item[1].std_f1)
    )
    return GridSearchResult(
        best_params=best_params, best=best, table=tuple(table)
    )
