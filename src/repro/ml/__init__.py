"""From-scratch ML: NB, SVM, logistic regression, EM-NB, noise handling."""

from repro.ml.base import Classifier, check_fit_inputs
from repro.ml.calibration import (
    PlattScaler,
    ReliabilityBin,
    brier_score,
    expected_calibration_error,
    reliability_bins,
)
from repro.ml.em_nb import EmNaiveBayes
from repro.ml.ensemble import VotingEnsemble
from repro.ml.logreg import LogisticRegression, fit_pu_weighted
from repro.ml.model_selection import (
    CvResult,
    GridSearchResult,
    cross_validate_f1,
    grid_search,
    stratified_kfold_indices,
)
from repro.ml.metrics import (
    ConfusionMatrix,
    PrecisionRecallF1,
    accuracy,
    average_precision,
    confusion_matrix,
    mean_reciprocal_rank,
    precision_at_k,
    precision_recall_f1,
    reciprocal_rank,
)
from repro.ml.naive_bayes import BernoulliNaiveBayes, MultinomialNaiveBayes
from repro.ml.noise import (
    DenoiseIteration,
    DenoiseResult,
    IterativeNoiseReducer,
    brodley_friedl_filter,
)
from repro.ml.svm import LinearSvm

__all__ = [
    "BernoulliNaiveBayes",
    "Classifier",
    "ConfusionMatrix",
    "CvResult",
    "DenoiseIteration",
    "DenoiseResult",
    "EmNaiveBayes",
    "GridSearchResult",
    "IterativeNoiseReducer",
    "LinearSvm",
    "LogisticRegression",
    "MultinomialNaiveBayes",
    "PlattScaler",
    "PrecisionRecallF1",
    "ReliabilityBin",
    "VotingEnsemble",
    "accuracy",
    "brier_score",
    "average_precision",
    "brodley_friedl_filter",
    "check_fit_inputs",
    "confusion_matrix",
    "cross_validate_f1",
    "expected_calibration_error",
    "fit_pu_weighted",
    "grid_search",
    "mean_reciprocal_rank",
    "precision_at_k",
    "precision_recall_f1",
    "reciprocal_rank",
    "reliability_bins",
    "stratified_kfold_indices",
]
