"""Common estimator interface for the from-scratch classifiers.

All classifiers consume a ``scipy.sparse`` document-term matrix and a
numpy integer label vector (0 = negative/background, 1 = positive/
trigger), mirroring the two-class formulation of section 3.3.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np
from scipy import sparse


@runtime_checkable
class Classifier(Protocol):
    """fit / predict / predict_proba over sparse count matrices."""

    def fit(self, X: sparse.spmatrix, y: np.ndarray) -> "Classifier":
        """Train on the given matrix and labels; returns self."""

    def predict(self, X: sparse.spmatrix) -> np.ndarray:
        """Hard 0/1 labels for each row of X."""

    def predict_proba(self, X: sparse.spmatrix) -> np.ndarray:
        """(n_rows, 2) array of class probabilities [p(0), p(1)]."""


def check_fit_inputs(
    X: sparse.spmatrix, y: np.ndarray
) -> tuple[sparse.csr_matrix, np.ndarray]:
    """Validate and canonicalize training inputs."""
    X = sparse.csr_matrix(X)
    y = np.asarray(y, dtype=np.int64)
    if X.shape[0] != y.shape[0]:
        raise ValueError(
            f"X has {X.shape[0]} rows but y has {y.shape[0]} labels"
        )
    if X.shape[0] == 0:
        raise ValueError("cannot fit on an empty matrix")
    unknown = set(np.unique(y)) - {0, 1}
    if unknown:
        raise ValueError(f"labels must be 0/1; got extras {sorted(unknown)}")
    return X, y


def check_is_fitted(flag: bool, name: str) -> None:
    if not flag:
        raise RuntimeError(f"{name} must be fit before prediction")
