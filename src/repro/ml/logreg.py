"""Logistic regression, including the weighted PU-learning variant.

Section 3.3.2 points to Lee & Liu [8] — *learning with positive and
unlabeled examples using weighted logistic regression* — as one of the
noise-tolerant alternatives to the iterative NB scheme.
:class:`LogisticRegression` is a plain L2-regularized model trained by
full-batch gradient descent with per-sample weights;
:func:`fit_pu_weighted` applies the Lee-Liu recipe: treat the unlabeled
set as negative but down-weight it relative to the (noisy) positives.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.ml.base import check_fit_inputs, check_is_fitted


class LogisticRegression:
    """L2-regularized logistic regression with sample weights."""

    def __init__(
        self,
        l2: float = 1e-3,
        learning_rate: float = 0.5,
        max_iter: int = 300,
        tol: float = 1e-6,
    ) -> None:
        if l2 < 0:
            raise ValueError("l2 must be non-negative")
        if max_iter <= 0:
            raise ValueError("max_iter must be positive")
        self.l2 = l2
        self.learning_rate = learning_rate
        self.max_iter = max_iter
        self.tol = tol
        self._fitted = False
        self.weights_: np.ndarray | None = None
        self.bias_: float = 0.0
        self.n_iter_: int = 0

    def fit(
        self,
        X: sparse.spmatrix,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "LogisticRegression":
        X, y = check_fit_inputs(X, y)
        n_samples, n_features = X.shape
        if sample_weight is None:
            sample_weight = np.ones(n_samples)
        sample_weight = np.asarray(sample_weight, dtype=np.float64)
        total_weight = sample_weight.sum()
        if total_weight <= 0:
            raise ValueError("all sample weights are zero")

        targets = y.astype(np.float64)
        weights = np.zeros(n_features)
        bias = 0.0
        previous_loss = np.inf
        Xt = X.T.tocsr()
        for iteration in range(1, self.max_iter + 1):
            logits = np.asarray(X @ weights).ravel() + bias
            probs = _sigmoid(logits)
            residual = sample_weight * (probs - targets)
            grad_w = (
                np.asarray(Xt @ residual).ravel() / total_weight
                + self.l2 * weights
            )
            grad_b = residual.sum() / total_weight
            weights -= self.learning_rate * grad_w
            bias -= self.learning_rate * grad_b

            loss = _weighted_log_loss(probs, targets, sample_weight)
            loss += 0.5 * self.l2 * float(weights @ weights)
            self.n_iter_ = iteration
            if abs(previous_loss - loss) < self.tol:
                break
            previous_loss = loss

        self.weights_ = weights
        self.bias_ = bias
        self._fitted = True
        return self

    def decision_function(self, X: sparse.spmatrix) -> np.ndarray:
        check_is_fitted(self._fitted, "LogisticRegression")
        X = sparse.csr_matrix(X)
        return np.asarray(X @ self.weights_).ravel() + self.bias_

    def predict_proba(self, X: sparse.spmatrix) -> np.ndarray:
        p_pos = _sigmoid(self.decision_function(X))
        return np.column_stack([1.0 - p_pos, p_pos])

    def predict(self, X: sparse.spmatrix) -> np.ndarray:
        return (self.decision_function(X) >= 0).astype(np.int64)


def fit_pu_weighted(
    X_positive: sparse.spmatrix,
    X_unlabeled: sparse.spmatrix,
    positive_weight: float = 1.0,
    unlabeled_weight: float = 0.5,
    **kwargs,
) -> LogisticRegression:
    """Lee & Liu [8] weighted PU learning.

    The unlabeled set is treated as negative with a reduced weight
    (it contains hidden positives, so its "negative" evidence is
    discounted); the noisy positive set keeps full weight.
    """
    if positive_weight <= 0 or unlabeled_weight <= 0:
        raise ValueError("class weights must be positive")
    X = sparse.vstack(
        [sparse.csr_matrix(X_positive), sparse.csr_matrix(X_unlabeled)]
    )
    y = np.concatenate(
        [
            np.ones(X_positive.shape[0], dtype=np.int64),
            np.zeros(X_unlabeled.shape[0], dtype=np.int64),
        ]
    )
    sample_weight = np.concatenate(
        [
            np.full(X_positive.shape[0], positive_weight),
            np.full(X_unlabeled.shape[0], unlabeled_weight),
        ]
    )
    model = LogisticRegression(**kwargs)
    return model.fit(X, y, sample_weight=sample_weight)


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -35, 35)))


def _weighted_log_loss(
    probs: np.ndarray, targets: np.ndarray, weights: np.ndarray
) -> float:
    eps = 1e-12
    per_sample = -(
        targets * np.log(probs + eps)
        + (1 - targets) * np.log(1 - probs + eps)
    )
    return float((weights * per_sample).sum() / weights.sum())
