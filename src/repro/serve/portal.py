"""The ETAP portal: analyst-facing serving facade.

The paper's ETAP delivers ranked trigger events to sales analysts
through a portal.  :class:`AlertPortal` is that layer for this repo:
an in-process request/response front over the batch pipeline's
artifacts, assembled from the serve substrate —

* a :class:`~repro.serve.shards.ShardedIndex` (immutable snapshots,
  atomic swap) answers ad-hoc analyst queries without ever blocking on
  re-indexing;
* a :class:`~repro.serve.cache.QueryCache` absorbs repeated queries
  and is invalidated generation-wise on every snapshot swap;
* a :class:`~repro.serve.workers.WorkerPool` bounds concurrency and
  coalesces identical in-flight queries;
* an :class:`~repro.serve.admission.AdmissionController` applies
  per-client rate limits and queue backpressure, degrading to stale
  cached results under overload instead of failing.

Alert delivery is multi-tenant: analysts :meth:`subscribe` with
company and driver filters (the paper's driver taxonomy);
:meth:`poll_alerts` returns each matching alert exactly once per
subscription, keyed by the :class:`~repro.core.alerts.AlertService`
idempotency key, so re-polls and alert re-publication never duplicate.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field

from repro.core.alerts import Alert
from repro.obs.events import NULL_EVENT_LOG, AnyEventLog
from repro.obs.timeseries import NULL_TELEMETRY, AnyTelemetry
from repro.obs.tracer import NULL_TRACER, AnyTracer
from repro.search.engine import SearchResult
from repro.serve.admission import AdmissionController
from repro.serve.cache import MISS, QueryCache, cache_key
from repro.serve.replication import ReplicaSet
from repro.serve.router import HedgedRouter, RouteResult
from repro.serve.shards import ShardedIndex
from repro.serve.timebase import clock_now, default_clock
from repro.serve.workers import OK, WorkerPool

#: QueryResponse.status values.
STATUS_OK = "ok"
STATUS_STALE = "stale"
STATUS_REJECTED = "rejected"
STATUS_DEADLINE = "deadline_exceeded"
STATUS_ERROR = "error"

#: Simulated ticks a replicated portal charges for answers that never
#: reach the router (cache hits, rejections): the in-process hop.
_LOCAL_COST = 0.0005


@dataclass(frozen=True)
class QueryResponse:
    """One portal answer; every field a value, never an exception.

    ``degraded`` tags every answer built from anything but a fresh,
    fully-replicated read — stale cache serves and replica-group
    fallbacks — so a consumer can always tell; nothing is ever
    silently stale.  ``hedged`` counts hedge requests the router
    issued while answering.
    """

    status: str
    results: tuple[SearchResult, ...] = ()
    generation: int = 0
    cached: bool = False
    reason: str = ""
    latency: float = 0.0
    degraded: bool = False
    hedged: int = 0

    @property
    def ok(self) -> bool:
        return self.status in (STATUS_OK, STATUS_STALE)


@dataclass
class Subscription:
    """One analyst's standing alert filter (a tenant of the portal)."""

    subscription_id: str
    analyst: str
    companies: frozenset[str] = frozenset()
    drivers: frozenset[str] = frozenset()
    #: Alert ids already delivered to this subscription.
    delivered: set[str] = field(default_factory=set)

    def matches(self, alert: Alert) -> bool:
        if self.drivers and alert.driver_id not in self.drivers:
            return False
        if self.companies:
            mentioned = {
                company.lower() for company in alert.event.companies
            }
            if not (self.companies & mentioned):
                return False
        return True


class AlertPortal:
    """Concurrent query/alert serving over a gathered collection."""

    def __init__(
        self,
        store,
        alert_service=None,
        n_shards: int = 4,
        cache: QueryCache | None = None,
        admission: AdmissionController | None = None,
        max_workers: int = 4,
        serve_stale_on_overload: bool = True,
        clock=None,
        tracer: AnyTracer | None = None,
        event_log: AnyEventLog | None = None,
        text_engine=None,
        telemetry: AnyTelemetry | None = None,
        n_replicas: int = 1,
        hedge_after: float = 0.05,
        fail_after: float = 0.8,
        hedging: bool = True,
        replica_fault_profile=None,
        fault_seed: int = 0,
        replica_failure_threshold: int = 3,
        replica_cool_off: float = 2.0,
        quotas=None,
    ) -> None:
        self.store = store
        self.alert_service = alert_service
        self.clock = clock or default_clock()
        self.tracer = tracer or NULL_TRACER
        self.event_log = event_log or NULL_EVENT_LOG
        self.telemetry = telemetry or NULL_TELEMETRY
        self.serve_stale_on_overload = serve_stale_on_overload
        self.shards = ShardedIndex(
            n_shards=n_shards,
            tracer=self.tracer,
            event_log=self.event_log,
            text_engine=text_engine,
        )
        #: Doc ids present in the currently installed snapshot — what
        #: :meth:`refresh` diffs against to index only the delta.
        self._indexed_doc_ids: set[str] = set()
        self.cache = cache or QueryCache(
            clock=self.clock, event_log=self.event_log
        )
        self.admission = admission or AdmissionController(
            clock=self.clock, tracer=self.tracer, quotas=quotas
        )
        #: The simulated cluster: present only with ``n_replicas > 1``
        #: (a single-replica portal keeps the direct snapshot path and
        #: pays no routing overhead).
        self.replicas: ReplicaSet | None = None
        self.router: HedgedRouter | None = None
        if n_replicas > 1:
            self.replicas = ReplicaSet(
                n_shards=n_shards,
                n_replicas=n_replicas,
                failure_threshold=replica_failure_threshold,
                cool_off=replica_cool_off,
                event_log=self.event_log,
                tracer=self.tracer,
            )
            self.router = HedgedRouter(
                self.replicas,
                hedge_after=hedge_after,
                fail_after=fail_after,
                hedging=hedging,
                fault_profile=replica_fault_profile,
                seed=fault_seed,
                clock=self.clock,
                event_log=self.event_log,
                tracer=self.tracer,
            )
        self.workers = WorkerPool(
            self._execute_query,
            max_workers=max_workers,
            clock=self.clock,
            tracer=self.tracer,
        )
        self._subscriptions: dict[str, Subscription] = {}
        self._alert_log: list[Alert] = []
        self._known_alert_ids: set[str] = set()
        self._sub_counter = itertools.count(1)
        self._lock = threading.Lock()

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_etap(cls, etap, alert_service=None, **kwargs) -> "AlertPortal":
        """Build a portal over an Etap's store (and optional service)."""
        kwargs.setdefault("tracer", etap.tracer)
        kwargs.setdefault("event_log", etap.event_log)
        kwargs.setdefault(
            "text_engine", getattr(etap, "text_engine", None)
        )
        kwargs.setdefault(
            "telemetry", getattr(etap, "telemetry", None)
        )
        portal = cls(etap.store, alert_service=alert_service, **kwargs)
        portal.refresh()
        return portal

    # -- index lifecycle -------------------------------------------------------

    @property
    def generation(self) -> int:
        return self.shards.generation

    def refresh(self) -> int:
        """Index the store into a new snapshot; swap atomically.

        Incremental by default: when the store has only *grown* since
        the last refresh (the continuous-monitoring steady state), the
        new generation is built with :meth:`ShardedIndex.extend` —
        previous postings carried over, only the delta indexed.  If any
        previously indexed document vanished from the store, falls back
        to a full rebuild.  Either way queries in flight finish against
        the generation they started on, and the cache drops every
        older-generation entry so nothing stale is ever served as
        fresh.  Returns the new generation.
        """
        current_ids = set(self.store.doc_ids())
        if self._indexed_doc_ids and self._indexed_doc_ids <= current_ids:
            new_ids = sorted(current_ids - self._indexed_doc_ids)
            snapshot = self.shards.extend(
                (document.doc_id, document.text, document.title)
                for document in map(self.store.get, new_ids)
            )
        else:
            snapshot = self.shards.rebuild_from_store(self.store)
        self._indexed_doc_ids = current_ids
        if self.replicas is not None:
            # Ship the new generation to every up replica; down
            # replicas catch up on restore.
            self.replicas.install_snapshot(snapshot)
        self.cache.invalidate_other_generations(snapshot.generation)
        return snapshot.generation

    # -- the query path --------------------------------------------------------

    def query(
        self,
        client_id: str,
        query: str,
        top_k: int = 10,
        timeout: float | None = None,
    ) -> QueryResponse:
        """Answer one analyst query; never raises.

        ``timeout`` is a per-request deadline in clock seconds; a
        request picked up past its deadline returns
        ``deadline_exceeded`` instead of a late answer.
        """
        started = clock_now(self.clock)
        self.tracer.count("serve.queries")
        key = cache_key(query, top_k)

        decision = self.admission.admit(client_id)
        if not decision:
            return self._overload_response(
                client_id, key, decision.reason, started
            )
        try:
            snapshot_generation = self.shards.generation
            cached = self.cache.get(key, snapshot_generation)
            if cached is not MISS:
                self.tracer.count("serve.cache_hits")
                return self._respond(
                    client_id,
                    key,
                    STATUS_OK,
                    results=cached,
                    generation=snapshot_generation,
                    cached=True,
                    started=started,
                    latency_override=self._local_latency(),
                )
            self.tracer.count("serve.cache_misses")
            deadline = (
                None if timeout is None else started + timeout
            )
            outcome = self.workers.execute(key, deadline=deadline)
            if outcome.status != OK:
                return self._respond(
                    client_id,
                    key,
                    outcome.status,
                    reason=outcome.error,
                    started=started,
                    latency_override=self._local_latency(),
                )
            if isinstance(outcome.value, RouteResult):
                routed = outcome.value
                if not routed.degraded:
                    # A degraded answer is correct for its pinned
                    # generation but must never become a fresh hit.
                    self.cache.put(
                        key,
                        routed.results,
                        routed.generation,
                        cost=1.0 + len(routed.results),
                    )
                return self._respond(
                    client_id,
                    key,
                    STATUS_OK,
                    results=routed.results,
                    generation=routed.generation,
                    started=started,
                    degraded=routed.degraded,
                    hedged=routed.hedges,
                    latency_override=routed.latency,
                )
            generation, results = outcome.value
            self.cache.put(
                key,
                results,
                generation,
                cost=1.0 + len(results),
            )
            return self._respond(
                client_id,
                key,
                STATUS_OK,
                results=results,
                generation=generation,
                started=started,
            )
        finally:
            self.admission.release(client_id)

    def _execute_query(self, key):
        """Worker-side search: one snapshot grabbed once, used fully.

        With replicas attached the read goes through the hedged
        router instead of the local snapshot; the
        :class:`~repro.serve.router.RouteResult` carries the pinned
        generation, the degraded flag, and the simulated latency.
        """
        if self.router is not None:
            return self.router.route(key.query, top_k=key.top_k)
        snapshot = self.shards.snapshot
        results = tuple(snapshot.search(key.query, top_k=key.top_k))
        return snapshot.generation, results

    def _local_latency(self) -> float | None:
        """Latency override for answers that never left the portal.

        A replicated portal measures simulated ticks, and its shared
        clock advances as *other* threads route — so a cache hit must
        charge its own fixed in-process cost rather than a wall-clock
        difference polluted by concurrent queries.  Single-replica
        portals keep real elapsed time (``None`` = no override).
        """
        return _LOCAL_COST if self.router is not None else None

    def _overload_response(
        self, client_id: str, key, reason: str, started: float
    ) -> QueryResponse:
        """Rejected by admission: degrade to stale cache if allowed."""
        self.event_log.emit(
            "query_rejected", client_id=client_id, reason=reason
        )
        if self.serve_stale_on_overload:
            stale = self.cache.get_stale(key)
            if stale is not MISS:
                self.tracer.count("serve.stale_served")
                return self._respond(
                    client_id,
                    key,
                    STATUS_STALE,
                    results=stale,
                    generation=self.shards.generation,
                    cached=True,
                    reason=reason,
                    started=started,
                    degraded=True,
                    latency_override=self._local_latency(),
                )
        return self._respond(
            client_id, key, STATUS_REJECTED, reason=reason,
            started=started,
            latency_override=self._local_latency(),
        )

    def _respond(
        self,
        client_id: str,
        key,
        status: str,
        results=(),
        generation: int = 0,
        cached: bool = False,
        reason: str = "",
        started: float = 0.0,
        degraded: bool = False,
        hedged: int = 0,
        latency_override: float | None = None,
    ) -> QueryResponse:
        if latency_override is not None:
            latency = latency_override
        else:
            latency = max(0.0, clock_now(self.clock) - started)
        self.tracer.observe("serve.latency_seconds", latency)
        if self.telemetry.enabled:
            # One windowed request per response, whatever the status:
            # serve-availability = serve.ok / serve.requests.
            self.telemetry.record("serve.requests")
            if status in (STATUS_OK, STATUS_STALE):
                self.telemetry.record("serve.ok")
            elif status == STATUS_REJECTED:
                self.telemetry.record("serve.rejected")
            if cached:
                self.telemetry.record("serve.cache_hits")
            if degraded:
                self.telemetry.record("serve.degraded")
            self.telemetry.observe("serve.latency", latency)
        self.event_log.emit(
            "query_served",
            client_id=client_id,
            query=key.query,
            status=status,
            n_results=len(results),
        )
        return QueryResponse(
            status=status,
            results=tuple(results),
            generation=generation,
            cached=cached,
            reason=reason,
            latency=latency,
            degraded=degraded,
            hedged=hedged,
        )

    # -- replica lifecycle -----------------------------------------------------

    def kill_replica(self, shard: int, index: int):
        """Take one replica down (chaos drills, ``--kill-replica``)."""
        if self.replicas is None:
            raise RuntimeError("portal has no replicas (n_replicas=1)")
        return self.replicas.kill(shard, index)

    def restore_replica(self, shard: int, index: int, catch_up: bool = True):
        """Bring one replica back, catching it up by default."""
        if self.replicas is None:
            raise RuntimeError("portal has no replicas (n_replicas=1)")
        return self.replicas.restore(shard, index, catch_up=catch_up)

    # -- alert delivery --------------------------------------------------------

    def subscribe(
        self,
        analyst: str,
        companies=(),
        drivers=(),
    ) -> str:
        """Register a standing filter; returns the subscription id."""
        with self._lock:
            subscription_id = f"sub-{next(self._sub_counter):04d}"
            self._subscriptions[subscription_id] = Subscription(
                subscription_id=subscription_id,
                analyst=analyst,
                companies=frozenset(c.lower() for c in companies),
                drivers=frozenset(drivers),
            )
        self.tracer.count("serve.subscriptions")
        return subscription_id

    def unsubscribe(self, subscription_id: str) -> None:
        with self._lock:
            self._subscriptions.pop(subscription_id, None)

    def publish(self, alerts) -> int:
        """Feed alerts into the portal's log; idempotent on alert id.

        The :class:`~repro.core.alerts.AlertService` idempotency key is
        the alert id, so republishing a poll report (or overlapping
        reports) adds each alert once, ever.
        """
        added = 0
        with self._lock:
            for alert in alerts:
                if alert.alert_id in self._known_alert_ids:
                    continue
                self._known_alert_ids.add(alert.alert_id)
                self._alert_log.append(alert)
                added += 1
        if added:
            self.tracer.count("serve.alerts_published", added)
        return added

    def pump(self) -> int:
        """Run one AlertService poll cycle and publish its alerts."""
        if self.alert_service is None:
            raise RuntimeError("no AlertService attached to this portal")
        report = self.alert_service.poll()
        return self.publish(report.alerts)

    def poll_alerts(self, subscription_id: str) -> list[Alert]:
        """New matching alerts for one subscription (each id once)."""
        with self._lock:
            subscription = self._subscriptions.get(subscription_id)
            if subscription is None:
                raise KeyError(
                    f"unknown subscription {subscription_id!r}"
                )
            fresh = [
                alert
                for alert in self._alert_log
                if alert.alert_id not in subscription.delivered
                and subscription.matches(alert)
            ]
            subscription.delivered.update(
                alert.alert_id for alert in fresh
            )
        self.event_log.emit(
            "subscription_polled",
            subscription_id=subscription_id,
            n_alerts=len(fresh),
        )
        return fresh

    # -- reporting -------------------------------------------------------------

    def stats(self) -> dict:
        """One-call portal health snapshot (bench + gauges source)."""
        cache = self.cache.stats()
        snapshot = self.shards.snapshot
        stats = {
            "generation": snapshot.generation,
            "n_docs": snapshot.n_docs,
            "shard_docs": snapshot.shard_sizes(),
            "cache_hits": cache.hits,
            "cache_misses": cache.misses,
            "cache_hit_rate": cache.hit_rate,
            "cache_evictions": cache.evictions,
            "cache_stale_reads": cache.stale_reads,
            "queue_depth": self.admission.pending,
            "subscriptions": len(self._subscriptions),
            "alerts_held": len(self._alert_log),
        }
        if self.replicas is not None:
            stats["replicas"] = self.replicas.stats()
        return stats

    def close(self) -> None:
        self.workers.shutdown()

    def __enter__(self) -> "AlertPortal":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
