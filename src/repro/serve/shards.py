"""Sharded, snapshot-swapped search index for concurrent serving.

The batch pipeline owns one mutable :class:`~repro.search.index.
InvertedIndex`; a serving layer cannot query that while ingestion
mutates it.  :class:`ShardedIndex` fixes both problems at once:

* **sharding** — documents are partitioned by a stable hash of the doc
  key into N :class:`~repro.search.engine.SearchEngine` shards, so a
  rebuild parallelizes naturally and per-shard postings stay small;
* **immutable snapshots** — readers only ever see an
  :class:`IndexSnapshot`, a frozen generation of all N shards.
  :meth:`ShardedIndex.rebuild` constructs the next generation off to
  the side and installs it with one atomic reference assignment, so
  queries in flight keep the generation they started on and new
  queries see the new one.  Reads never block ingestion and never
  observe a half-built index (the zero-downtime re-index contract the
  serve tests pin down).

BM25 statistics (document frequency, average length) are per shard,
not global — with hash partitioning the shards are statistically
similar, so merged rankings track the unsharded engine closely; the
exact same *document set* is returned either way.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass
from typing import Iterable

from repro.obs.events import NULL_EVENT_LOG, AnyEventLog
from repro.obs.tracer import NULL_TRACER, AnyTracer
from repro.search.engine import SearchEngine, SearchResult
from repro.search.scoring import RankingFunction
from repro.text.engine import AnnotationEngine


def shard_of(doc_key: str, n_shards: int) -> int:
    """Stable shard assignment: sha256 of the doc key, mod N.

    Uses a cryptographic digest rather than :func:`hash` so the
    placement is identical across processes and Python versions
    (``PYTHONHASHSEED`` never reshuffles a corpus).
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    digest = hashlib.sha256(doc_key.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") % n_shards


@dataclass(frozen=True)
class IndexSnapshot:
    """One immutable generation of the sharded index.

    Holds every shard engine of a single rebuild.  Nothing mutates a
    snapshot after construction; a query resolves entirely within the
    snapshot it grabbed, which is what makes the swap tear-free.
    """

    generation: int
    engines: tuple[SearchEngine, ...]
    n_docs: int

    @property
    def n_shards(self) -> int:
        return len(self.engines)

    def shard_sizes(self) -> list[int]:
        """Documents per shard (the balance the bench reports)."""
        return [engine.index.n_docs for engine in self.engines]

    def search(self, query: str, top_k: int = 10) -> list[SearchResult]:
        """Scatter the query to every shard and merge the rankings."""
        if top_k <= 0:
            return []
        merged: list[SearchResult] = []
        for engine in self.engines:
            merged.extend(engine.search(query, top_k=top_k))
        merged.sort(key=lambda result: (-result.score, result.doc_key))
        return merged[:top_k]


def _empty_snapshot() -> IndexSnapshot:
    return IndexSnapshot(generation=0, engines=(SearchEngine(),), n_docs=0)


class ShardedIndex:
    """N hash-partitioned engines behind an atomic snapshot pointer.

    ``rebuild`` is the only writer; it may run concurrently with any
    number of readers.  Concurrent rebuilds are serialized by a lock so
    generations advance monotonically.
    """

    def __init__(
        self,
        n_shards: int = 4,
        ranking_factory=None,
        tracer: AnyTracer | None = None,
        event_log: AnyEventLog | None = None,
        text_engine: AnnotationEngine | None = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.n_shards = n_shards
        #: Called once per shard per rebuild, so shards never share
        #: mutable ranking state (a RankingFunction is stateless today,
        #: but the snapshot contract should not depend on that).
        self.ranking_factory = ranking_factory
        self.tracer = tracer or NULL_TRACER
        self.event_log = event_log or NULL_EVENT_LOG
        #: Shared annotate-once engine: every rebuild re-tokenizes the
        #: same document texts, so with the pipeline's engine attached a
        #: full rebuild is served from the content-keyed term cache.
        self.text_engine = text_engine
        self._snapshot = _empty_snapshot()
        self._rebuild_lock = threading.Lock()

    # -- reads -----------------------------------------------------------------

    @property
    def snapshot(self) -> IndexSnapshot:
        """The current generation (atomic reference read)."""
        return self._snapshot

    @property
    def generation(self) -> int:
        return self._snapshot.generation

    def search(self, query: str, top_k: int = 10) -> list[SearchResult]:
        """Search the current snapshot (grabbed once, used throughout)."""
        return self._snapshot.search(query, top_k=top_k)

    # -- writes ----------------------------------------------------------------

    def _ranking(self) -> RankingFunction | None:
        return self.ranking_factory() if self.ranking_factory else None

    def rebuild(
        self, documents: Iterable[tuple[str, str, str]]
    ) -> IndexSnapshot:
        """Index ``(doc_key, text, title)`` triples into a new generation.

        The new shard engines are fully built before the snapshot
        pointer moves, so readers see either the old generation or the
        complete new one — never a mix.
        """
        with self._rebuild_lock:
            with self.tracer.timed("serve.rebuild_seconds"):
                engines = tuple(
                    SearchEngine(
                        ranking=self._ranking(),
                        text_engine=self.text_engine,
                    )
                    for _ in range(self.n_shards)
                )
                n_docs = 0
                for doc_key, text, title in documents:
                    shard = shard_of(doc_key, self.n_shards)
                    engines[shard].add_document(doc_key, text, title)
                    n_docs += 1
                snapshot = IndexSnapshot(
                    generation=self._snapshot.generation + 1,
                    engines=engines,
                    n_docs=n_docs,
                )
            self._snapshot = snapshot  # the atomic swap
        self._announce_swap(snapshot)
        return snapshot

    def extend(
        self, documents: Iterable[tuple[str, str, str]]
    ) -> IndexSnapshot:
        """Delta-build the next generation: previous snapshot + new docs.

        Only the shards that receive documents are cloned (via
        :meth:`~repro.search.index.InvertedIndex.clone`, which shares
        the immutable postings of untouched documents); shards with no
        new documents carry over to the new generation as-is.  Readers
        get the same tear-free swap as :meth:`rebuild` at a cost
        proportional to the delta, not the corpus — the batched-rebuild
        path for continuous monitoring, where each revisit adds a few
        pages to a large standing index.
        """
        with self._rebuild_lock:
            with self.tracer.timed("serve.extend_seconds"):
                current = self._snapshot
                by_shard: dict[int, list[tuple[str, str, str]]] = {}
                for doc_key, text, title in documents:
                    shard = shard_of(doc_key, self.n_shards)
                    by_shard.setdefault(shard, []).append(
                        (doc_key, text, title)
                    )
                if current.n_shards == self.n_shards:
                    engines = list(current.engines)
                else:
                    # Shard-count mismatch (e.g. extending the empty
                    # generation 0): start from fresh empty shards.
                    engines = [
                        SearchEngine(
                            ranking=self._ranking(),
                            text_engine=self.text_engine,
                        )
                        for _ in range(self.n_shards)
                    ]
                for shard, delta in by_shard.items():
                    engine = engines[shard].clone()
                    for doc_key, text, title in delta:
                        engine.add_document(doc_key, text, title)
                    engines[shard] = engine
                snapshot = IndexSnapshot(
                    generation=current.generation + 1,
                    engines=tuple(engines),
                    n_docs=sum(
                        engine.index.n_docs for engine in engines
                    ),
                )
            self._snapshot = snapshot  # the atomic swap
        self.tracer.count(
            "serve.docs_delta_indexed",
            sum(len(delta) for delta in by_shard.values()),
        )
        self._announce_swap(snapshot)
        return snapshot

    def restore(
        self,
        documents: Iterable[tuple[str, str, str]],
        generation: int,
    ) -> IndexSnapshot:
        """Rebuild at an *explicit* generation (checkpoint recovery).

        A resumed stream processor re-indexes the checkpointed document
        set but must land on the generation number the checkpoint
        recorded, so that replayed :meth:`extend` deltas advance the
        counter to exactly what an uninterrupted run would have reached
        — the recovery fuzz suite pins generation equality.
        """
        if generation < 0:
            raise ValueError("generation must be >= 0")
        with self._rebuild_lock:
            engines = tuple(
                SearchEngine(
                    ranking=self._ranking(),
                    text_engine=self.text_engine,
                )
                for _ in range(self.n_shards)
            )
            n_docs = 0
            for doc_key, text, title in documents:
                shard = shard_of(doc_key, self.n_shards)
                engines[shard].add_document(doc_key, text, title)
                n_docs += 1
            snapshot = IndexSnapshot(
                generation=generation,
                engines=engines,
                n_docs=n_docs,
            )
            self._snapshot = snapshot  # the atomic swap
        self._announce_swap(snapshot)
        return snapshot

    def _announce_swap(self, snapshot: IndexSnapshot) -> None:
        self.tracer.count("serve.snapshot_swaps")
        self.event_log.emit(
            "snapshot_swapped",
            generation=snapshot.generation,
            n_docs=snapshot.n_docs,
            n_shards=snapshot.n_shards,
        )

    def rebuild_from_store(self, store) -> IndexSnapshot:
        """Re-index a :class:`~repro.gather.store.DocumentStore`."""
        return self.rebuild(
            (document.doc_id, document.text, document.title)
            for document in store
        )
