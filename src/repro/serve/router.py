"""Hedged query fan-out over replica groups, on simulated ticks.

:class:`HedgedRouter` is the read path of the simulated cluster in
:mod:`repro.serve.replication`: every query scatters to one replica
per shard group and the per-shard rankings merge exactly as
:meth:`~repro.serve.shards.IndexSnapshot.search` does.  What the
router adds is *tail-latency discipline* under faults:

* **generation pinning** — before dispatch, the router picks one
  target generation every group can serve (the minimum over groups of
  the newest generation an up replica holds) and answers entirely from
  it, so a response is never a mix of generations even while replicas
  crash and catch up mid-query;
* **circuit breaking** — each replica carries a
  :class:`~repro.robustness.fetcher.CircuitBreaker`; the router only
  dispatches where the breaker allows, records every outcome, and a
  down replica therefore stops costing timeouts after
  ``failure_threshold`` discoveries;
* **hedged requests** — when the chosen primary has not answered
  within ``hedge_after`` ticks, one (and only one) hedge is issued to
  the next candidate; the response is whichever answers first.  At
  most two requests are ever in flight for one query (the property
  suite pins this), and fast failures fail over serially without
  spending the hedge;
* **degraded-but-correct reads** — when a whole group is down (or
  breakered out, or cannot serve the target generation), the router
  answers that shard from the group's shipping log at the *same*
  pinned generation, flags the response ``degraded=True``, and emits a
  ``degraded_read`` event.  Degraded responses are never silently
  stale: any response whose generation trails the latest ship is
  flagged too.

Time is simulated: replica service times are deterministic sha256
draws (a pure function of ``(seed, replica, query)``), optionally
shaped by a :class:`~repro.robustness.faults.FaultProfile`
(``dead_rate``/``transient_rate``/``slow_rate`` become per-request
server faults), and a down replica times out after ``fail_after``
ticks.  The router advances its injected clock by each query's
simulated latency, which is what drives chaos schedules, breaker
cool-offs, and the SLO engine's windows in the acceptance bench.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.obs.events import NULL_EVENT_LOG, AnyEventLog
from repro.obs.tracer import NULL_TRACER, AnyTracer
from repro.robustness.fetcher import CircuitBreaker
from repro.robustness.faults import FaultProfile, _unit
from repro.search.engine import SearchResult
from repro.serve.replication import Replica, ReplicaGroup, ReplicaSet
from repro.serve.timebase import clock_now, default_clock

#: Simulated ticks for replica service times: a healthy replica
#: answers in ``[_BASE_COST, _BASE_COST + _COST_SPREAD)``.
_BASE_COST = 0.002
_COST_SPREAD = 0.006
#: Fast-failure costs: an error response is quick, a wrong-generation
#: NACK quicker still (neither counts against the breaker the way a
#: timeout does — a NACK is not a health signal).
_ERROR_COST = 0.004
_NACK_COST = 0.002


@dataclass(frozen=True)
class RouteResult:
    """One routed answer plus how the cluster produced it."""

    results: tuple[SearchResult, ...]
    generation: int
    degraded: bool = False
    hedges: int = 0
    attempts: int = 0
    max_inflight: int = 1
    latency: float = 0.0


@dataclass(frozen=True)
class _GroupServe:
    """One group's contribution to a routed query."""

    engine: object | None  # None -> every candidate failed
    duration: float
    attempts: int
    hedges: int
    max_inflight: int


@dataclass(frozen=True)
class _Attempt:
    """Simulated outcome of one request to one replica."""

    ok: bool
    duration: float
    #: Whether a failure should count against the replica's breaker.
    breaker_failure: bool = False


class HedgedRouter:
    """Fan-out with hedging, breakers, and pinned generations."""

    def __init__(
        self,
        replicas: ReplicaSet,
        hedge_after: float = 0.05,
        fail_after: float = 0.8,
        hedging: bool = True,
        fault_profile: FaultProfile | None = None,
        seed: int = 0,
        clock=None,
        event_log: AnyEventLog | None = None,
        tracer: AnyTracer | None = None,
        chaos=None,
    ) -> None:
        if hedge_after <= 0:
            raise ValueError("hedge_after must be positive")
        if fail_after <= hedge_after:
            raise ValueError("fail_after must exceed hedge_after")
        self.replicas = replicas
        self.hedge_after = hedge_after
        self.fail_after = fail_after
        self.hedging = hedging
        self.fault_profile = fault_profile
        self.seed = seed
        self.clock = clock or default_clock()
        self.event_log = event_log or NULL_EVENT_LOG
        self.tracer = tracer or NULL_TRACER
        #: Optional :class:`~repro.serve.replication.ChaosMonkey`,
        #: ticked inline before each route.
        self.chaos = chaos
        #: (replica_id, query) -> request count, for first-request
        #: transient faults.
        self._tries: dict[tuple[str, str], int] = {}
        #: Serializes routing: breaker state, chaos schedule, and the
        #: simulated clock advance must move together.
        self._lock = threading.Lock()

    # -- the read path ---------------------------------------------------------

    def route(self, query: str, top_k: int = 10) -> RouteResult:
        """Answer one query from the cluster; never raises."""
        with self._lock:
            now = clock_now(self.clock)
            if self.chaos is not None:
                self.chaos.tick(now)
            latest = self.replicas.latest_generation
            target = self._target_generation(latest)
            degraded = 0 < target < latest
            if degraded:
                self.event_log.emit(
                    "degraded_read", source="stale_replica"
                )

            merged: list[SearchResult] = []
            duration = 0.0
            attempts = hedges = 0
            max_inflight = 1
            for group in self.replicas.groups:
                serve = self._serve_group(group, query, target, now)
                attempts += serve.attempts
                hedges += serve.hedges
                max_inflight = max(max_inflight, serve.max_inflight)
                duration = max(duration, serve.duration)
                engine = serve.engine
                if engine is None:
                    # The group gave no answer: serve its shard from
                    # the shipping log at the same pinned generation.
                    engine = group.shipped_engine(target)
                    degraded = True
                    self.tracer.count("serve.degraded_reads")
                    self.event_log.emit(
                        "degraded_read",
                        source="replica_group",
                        shard=group.shard,
                    )
                if engine is not None and top_k > 0:
                    merged.extend(engine.search(query, top_k=top_k))
            merged.sort(key=lambda result: (-result.score, result.doc_key))

            if hedges:
                self.tracer.count("serve.hedged_queries")
            advance = getattr(self.clock, "advance", None)
            if advance is not None:
                advance(duration)
            return RouteResult(
                results=tuple(merged[:top_k]),
                generation=target,
                degraded=degraded,
                hedges=hedges,
                attempts=attempts,
                max_inflight=max_inflight,
                latency=duration,
            )

    # -- target selection ------------------------------------------------------

    def _target_generation(self, latest: int) -> int:
        """Newest generation every group can serve consistently.

        Groups with no up replica do not lower the target — they are
        served from the shipping log, which holds every recent
        generation.
        """
        target = latest
        for group in self.replicas.groups:
            if group.up_replicas():
                target = min(target, group.best_generation())
        return target

    # -- one group -------------------------------------------------------------

    def _serve_group(
        self, group: ReplicaGroup, query: str, target: int, now: float
    ) -> _GroupServe:
        candidates = [
            replica
            for replica in group.replicas
            if replica.breaker.allow(now)
        ]
        if candidates:
            rotation = int(
                _unit(self.seed, "primary", group.shard, query)
                * len(candidates)
            ) % len(candidates)
            candidates = candidates[rotation:] + candidates[:rotation]
        if self.hedging:
            return self._serve_hedged(
                group, candidates, query, target, now
            )
        return self._serve_serial(candidates, query, target, now)

    def _serve_serial(
        self,
        candidates: list[Replica],
        query: str,
        target: int,
        now: float,
    ) -> _GroupServe:
        """Unhedged dispatch: one request at a time, failover on error."""
        elapsed = 0.0
        attempts = 0
        for replica in candidates:
            outcome = self._attempt(replica, query, target)
            attempts += 1
            elapsed += outcome.duration
            if outcome.ok:
                self._record_success(replica)
                return _GroupServe(
                    engine=replica.engine_at(target),
                    duration=elapsed,
                    attempts=attempts,
                    hedges=0,
                    max_inflight=1,
                )
            self._record_failure(
                replica, now + elapsed, outcome.breaker_failure
            )
        return _GroupServe(
            engine=None,
            duration=elapsed,
            attempts=attempts,
            hedges=0,
            max_inflight=1,
        )

    def _serve_hedged(
        self,
        group: ReplicaGroup,
        candidates: list[Replica],
        query: str,
        target: int,
        now: float,
    ) -> _GroupServe:
        """Dispatch with one hedge: at most two requests in flight.

        Fast failures (error responses quicker than the hedge
        deadline) fail over serially without spending the hedge; only
        a *silent* primary — still pending at ``hedge_after`` — opens
        the second in-flight slot.
        """
        started = 0.0
        attempts = 0
        index = 0
        primary = None
        primary_outcome = None
        while index < len(candidates):
            replica = candidates[index]
            outcome = self._attempt(replica, query, target)
            attempts += 1
            index += 1
            if outcome.ok and outcome.duration <= self.hedge_after:
                self._record_success(replica)
                return _GroupServe(
                    engine=replica.engine_at(target),
                    duration=started + outcome.duration,
                    attempts=attempts,
                    hedges=0,
                    max_inflight=1,
                )
            if not outcome.ok and outcome.duration <= self.hedge_after:
                started += outcome.duration
                self._record_failure(
                    replica, now + started, outcome.breaker_failure
                )
                continue
            primary = replica
            primary_outcome = outcome
            break
        if primary is None:
            # Every candidate failed fast (or there were none).
            return _GroupServe(
                engine=None,
                duration=started,
                attempts=attempts,
                hedges=0,
                max_inflight=1,
            )

        primary_done = started + primary_outcome.duration
        rest = candidates[index:]
        if not rest:
            # Nobody to hedge to: wait the primary out.
            if primary_outcome.ok:
                self._record_success(primary)
                engine = primary.engine_at(target)
            else:
                self._record_failure(
                    primary, now + primary_done,
                    primary_outcome.breaker_failure,
                )
                engine = None
            return _GroupServe(
                engine=engine,
                duration=primary_done,
                attempts=attempts,
                hedges=0,
                max_inflight=1,
            )

        # The primary is slow: launch exactly one hedge track at the
        # deadline.  The track fails over serially, so in-flight
        # requests never exceed primary + one hedge.
        hedge_started = started + self.hedge_after
        self.event_log.emit(
            "query_hedged",
            query=query,
            shard=group.shard,
            primary=primary.replica_id,
            hedge=rest[0].replica_id,
        )
        hedge_done = hedge_started
        hedge_engine = None
        for replica in rest:
            outcome = self._attempt(replica, query, target)
            attempts += 1
            hedge_done += outcome.duration
            if outcome.ok:
                self._record_success(replica)
                hedge_engine = replica.engine_at(target)
                break
            self._record_failure(
                replica, now + hedge_done, outcome.breaker_failure
            )

        if primary_outcome.ok:
            self._record_success(primary)
        else:
            self._record_failure(
                primary, now + primary_done,
                primary_outcome.breaker_failure,
            )

        finishes = []
        if primary_outcome.ok:
            finishes.append((primary_done, primary.engine_at(target)))
        if hedge_engine is not None:
            finishes.append((hedge_done, hedge_engine))
        if not finishes:
            return _GroupServe(
                engine=None,
                duration=max(primary_done, hedge_done),
                attempts=attempts,
                hedges=1,
                max_inflight=2,
            )
        duration, engine = min(finishes, key=lambda pair: pair[0])
        return _GroupServe(
            engine=engine,
            duration=duration,
            attempts=attempts,
            hedges=1,
            max_inflight=2,
        )

    # -- one replica -----------------------------------------------------------

    def _attempt(
        self, replica: Replica, query: str, target: int
    ) -> _Attempt:
        """Deterministic simulated outcome of one replica request."""
        if replica.down:
            # The router cannot see process state; it discovers a dead
            # replica the expensive way, by timing out.
            return _Attempt(
                ok=False,
                duration=self.fail_after,
                breaker_failure=True,
            )
        if not replica.serves(target):
            return _Attempt(ok=False, duration=_NACK_COST)
        tries_key = (replica.replica_id, query)
        tries = self._tries.get(tries_key, 0)
        self._tries[tries_key] = tries + 1
        profile = self.fault_profile
        if profile is not None:
            if (
                _unit(self.seed, "replica_dead", replica.replica_id, query)
                < profile.dead_rate
            ):
                return _Attempt(
                    ok=False,
                    duration=_ERROR_COST,
                    breaker_failure=True,
                )
            if tries == 0 and (
                _unit(
                    self.seed,
                    "replica_transient",
                    replica.replica_id,
                    query,
                )
                < profile.transient_rate
            ):
                return _Attempt(
                    ok=False,
                    duration=_ERROR_COST,
                    breaker_failure=True,
                )
        duration = _BASE_COST + _COST_SPREAD * _unit(
            self.seed, "replica_lat", replica.replica_id, query
        )
        if profile is not None and (
            _unit(self.seed, "replica_slow", replica.replica_id, query)
            < profile.slow_rate
        ):
            duration = min(
                max(duration, 4.0 * self.hedge_after), self.fail_after
            )
        return _Attempt(ok=True, duration=duration)

    # -- breaker bookkeeping ---------------------------------------------------

    def _record_success(self, replica: Replica) -> None:
        was = replica.breaker.state
        replica.breaker.record_success()
        if was != CircuitBreaker.CLOSED:
            self.event_log.emit(
                "breaker_close", host=replica.replica_id
            )

    def _record_failure(
        self, replica: Replica, at: float, counts: bool
    ) -> None:
        if not counts:
            return
        was = replica.breaker.state
        replica.breaker.record_failure(at)
        if (
            replica.breaker.state == CircuitBreaker.OPEN
            and was != CircuitBreaker.OPEN
        ):
            self.tracer.count("serve.replica_breaker_opens")
            self.event_log.emit(
                "breaker_open",
                host=replica.replica_id,
                failures=replica.breaker.failures,
            )
