"""Admission control: per-client token buckets + a bounded queue.

Overload must degrade, never cascade.  Requests pass two gates before
touching the index:

1. a per-client :class:`TokenBucket` (``rate`` tokens/second on the
   injected clock, ``burst`` capacity) — one hot client cannot starve
   the rest;
2. a global bounded admission count (``max_pending`` requests admitted
   but not yet released) — the explicit backpressure valve.  When the
   queue is full, the decision is a *value* (``Rejected`` with reason
   ``queue_full``), never an exception and never an unbounded queue.

The portal turns a rejection into a ``429``-style response, serving a
stale cached result instead when one exists.  Counters
(``serve.admitted``, ``serve.rejected``, ``serve.rejected[reason]``)
feed the Prometheus export so overload is visible from outside.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass
from typing import Mapping

from repro.obs.tracer import NULL_TRACER, AnyTracer
from repro.serve.timebase import clock_now, default_clock

RATE_LIMITED = "rate_limited"
QUEUE_FULL = "queue_full"


class TokenBucket:
    """Classic token bucket on an injected (possibly simulated) clock.

    Starts full.  ``try_acquire`` refills ``rate * elapsed`` tokens
    (capped at ``burst``) and admits iff at least one whole token is
    available — so over any window the bucket admits at most
    ``burst + rate * window`` requests, the bound the property suite
    pins down.
    """

    def __init__(
        self, rate: float, burst: float, clock=None
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self.clock = clock or default_clock()
        self._tokens = self.burst
        self._last_refill = clock_now(self.clock)
        self._lock = threading.Lock()

    @property
    def tokens(self) -> float:
        """Current balance (refilled to now); for tests/reports."""
        with self._lock:
            self._refill(clock_now(self.clock))
            return self._tokens

    def try_acquire(self, n: float = 1.0) -> bool:
        """Take ``n`` tokens if available; never blocks."""
        now = clock_now(self.clock)
        with self._lock:
            self._refill(now)
            if self._tokens >= n:
                self._tokens -= n
                return True
            return False

    def _refill(self, now: float) -> None:
        elapsed = now - self._last_refill
        if elapsed > 0:
            self._tokens = min(
                self.burst, self._tokens + elapsed * self.rate
            )
        self._last_refill = max(self._last_refill, now)


@dataclass(frozen=True)
class AdmissionDecision:
    """The outcome of one admission attempt — a value, not a raise."""

    admitted: bool
    reason: str = ""  # RATE_LIMITED | QUEUE_FULL when rejected

    def __bool__(self) -> bool:
        return self.admitted


ADMITTED = AdmissionDecision(admitted=True)


class AdmissionController:
    """Per-client rate limiting plus a global bounded pending count.

    ``quotas`` layers per-tenant fairness over the shared queue: a
    quota of ``0.25`` for client ``"a"`` *reserves* ``0.25 *
    max_pending`` queue slots that only ``"a"`` can occupy.  Clients
    first fill their reservation, then compete for the unreserved
    remainder — so a bursting tenant can exhaust the shared slots but
    can never push another tenant below its reserved floor (the
    fairness regression test pins the admitted shares).
    """

    def __init__(
        self,
        rate: float = 50.0,
        burst: float = 20.0,
        max_pending: int = 64,
        clock=None,
        tracer: AnyTracer | None = None,
        quotas: Mapping[str, float] | None = None,
    ) -> None:
        if max_pending < 0:
            raise ValueError("max_pending must be >= 0")
        self.rate = rate
        self.burst = burst
        self.max_pending = max_pending
        self.clock = clock or default_clock()
        self.tracer = tracer or NULL_TRACER
        self.quotas = dict(quotas or {})
        for client_id, quota in self.quotas.items():
            if not 0.0 <= quota <= 1.0:
                raise ValueError(
                    f"quota for {client_id!r} must be in [0, 1]"
                )
        self._reserved = {
            client_id: int(quota * max_pending)
            for client_id, quota in self.quotas.items()
        }
        reserved_total = sum(self._reserved.values())
        if reserved_total > max_pending:
            raise ValueError(
                "quota reservations exceed max_pending "
                f"({reserved_total} > {max_pending})"
            )
        self._shared_capacity = max_pending - reserved_total
        self._pending_by_client: Counter[str] = Counter()
        self._buckets: dict[str, TokenBucket] = {}
        self._pending = 0
        self._lock = threading.Lock()

    # -- introspection ---------------------------------------------------------

    @property
    def pending(self) -> int:
        """Admitted-but-unreleased requests (the queue depth gauge)."""
        with self._lock:
            return self._pending

    def pending_of(self, client_id: str) -> int:
        """One client's admitted-but-unreleased count."""
        with self._lock:
            return self._pending_by_client[client_id]

    def reserved_of(self, client_id: str) -> int:
        """Queue slots reserved for ``client_id`` (0 without a quota)."""
        return self._reserved.get(client_id, 0)

    def bucket_of(self, client_id: str) -> TokenBucket:
        with self._lock:
            bucket = self._buckets.get(client_id)
            if bucket is None:
                bucket = TokenBucket(
                    self.rate, self.burst, clock=self.clock
                )
                self._buckets[client_id] = bucket
            return bucket

    # -- the gate --------------------------------------------------------------

    def admit(self, client_id: str) -> AdmissionDecision:
        """Try to admit one request for ``client_id``.

        The caller must :meth:`release` every admitted request exactly
        once (the portal does this in a ``finally``).
        """
        if not self.bucket_of(client_id).try_acquire():
            self.tracer.count("serve.rejected")
            self.tracer.count(f"serve.rejected[{RATE_LIMITED}]")
            return AdmissionDecision(False, RATE_LIMITED)
        with self._lock:
            rejected = not self._try_take_slot(client_id)
        if rejected:
            self.tracer.count("serve.rejected")
            self.tracer.count(f"serve.rejected[{QUEUE_FULL}]")
            return AdmissionDecision(False, QUEUE_FULL)
        self.tracer.count("serve.admitted")
        return ADMITTED

    def _try_take_slot(self, client_id: str) -> bool:
        """Claim a queue slot (reserved first); caller holds the lock."""
        if self._pending >= self.max_pending:
            return False
        if self.quotas:
            mine = self._pending_by_client[client_id]
            if mine >= self._reserved.get(client_id, 0):
                # Out of reservation: compete for the shared slots.
                shared_used = sum(
                    max(
                        0,
                        count - self._reserved.get(client, 0),
                    )
                    for client, count in self._pending_by_client.items()
                )
                if shared_used >= self._shared_capacity:
                    return False
            self._pending_by_client[client_id] += 1
        self._pending += 1
        return True

    def release(self, client_id: str | None = None) -> None:
        """Return one admitted slot; must pair 1:1 with admissions.

        When quotas are configured, callers must pass the same
        ``client_id`` they admitted with, so the per-tenant occupancy
        that fairness decisions read stays truthful.
        """
        with self._lock:
            if self._pending <= 0:
                raise RuntimeError(
                    "release() without a matching admit()"
                )
            self._pending -= 1
            if self.quotas and client_id is not None:
                if self._pending_by_client[client_id] > 0:
                    self._pending_by_client[client_id] -= 1
