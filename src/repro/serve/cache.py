"""TTL'd LRU result cache with generation-wise invalidation.

The portal's smart queries are heavily repeated (templated entity
queries, zipf-popular analyst searches), so a small result cache
absorbs most of the read load.  The cache is bounded two ways —
``max_entries`` and a cost budget ``max_cost`` (least-recently-used
entries evicted first) — and every entry carries:

* an **expiry instant** on the injected clock (TTL; monotone on the
  tick clock, so simulated time drives deterministic expiry tests);
* the **index generation** it was computed against.  A snapshot swap
  bumps the portal's generation; entries from older generations are
  lazily dropped on access and eagerly dropped by
  :meth:`invalidate_other_generations`, so a re-index never serves a
  mixed-generation result as fresh.

Stale reads are explicit: :meth:`get_stale` returns an expired or
old-generation value (for overload degradation) without ever counting
as a fresh hit.  All operations are lock-guarded and O(1) amortized;
hit/miss/eviction/expiry counters feed the Prometheus export.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.obs.events import NULL_EVENT_LOG, AnyEventLog
from repro.serve.timebase import clock_now, default_clock

#: Returned by :meth:`QueryCache.get` on a miss (``None`` is a value).
MISS = object()


@dataclass
class CacheStats:
    """Lifetime counters; snapshot with :meth:`QueryCache.stats`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    expirations: int = 0
    invalidations: int = 0
    stale_reads: int = 0

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


@dataclass
class _Entry:
    value: object
    expires_at: float
    generation: int
    cost: float = 1.0


class QueryCache:
    """Size- and entry-bounded LRU with TTL and generation tags."""

    def __init__(
        self,
        max_entries: int = 1024,
        max_cost: float = 65_536.0,
        ttl: float = 30.0,
        clock=None,
        event_log: AnyEventLog | None = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if max_cost <= 0:
            raise ValueError("max_cost must be positive")
        if ttl <= 0:
            raise ValueError("ttl must be positive")
        self.max_entries = max_entries
        self.max_cost = max_cost
        self.ttl = ttl
        self.clock = clock or default_clock()
        self.event_log = event_log or NULL_EVENT_LOG
        self._entries: OrderedDict[object, _Entry] = OrderedDict()
        self._total_cost = 0.0
        self._lock = threading.Lock()
        self._stats = CacheStats()

    # -- introspection ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: object) -> bool:
        return key in self._entries

    @property
    def total_cost(self) -> float:
        return self._total_cost

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(**vars(self._stats))

    # -- core ------------------------------------------------------------------

    def get(self, key: object, generation: int):
        """Fresh lookup: right generation and unexpired, else ``MISS``.

        Expired and wrong-generation entries are dropped on the way —
        lazy invalidation keeps a hot cache self-cleaning.
        """
        now = clock_now(self.clock)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._stats.misses += 1
                return MISS
            if entry.generation != generation:
                self._drop(key, entry)
                self._stats.invalidations += 1
                self._stats.misses += 1
                return MISS
            if now >= entry.expires_at:
                self._drop(key, entry)
                self._stats.expirations += 1
                self._stats.misses += 1
                return MISS
            self._entries.move_to_end(key)
            self._stats.hits += 1
            return entry.value

    def get_stale(self, key: object):
        """Degraded lookup: any cached value, however old, else ``MISS``.

        The overload path uses this — a stale answer beats a rejection
        — and it never touches the hit/miss counters, so the fresh hit
        rate stays honest.  Every stale serve is flight-recorded as a
        ``degraded_read``, so a portal quietly living off yesterday's
        answers is visible in the event log and the SLO rollup.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return MISS
            self._stats.stale_reads += 1
            value = entry.value
        self.event_log.emit("degraded_read", source="query_cache")
        return value

    def put(
        self,
        key: object,
        value: object,
        generation: int,
        cost: float = 1.0,
    ) -> None:
        """Insert/replace; evicts LRU entries to stay within bounds."""
        cost = max(1.0, float(cost))
        now = clock_now(self.clock)
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._total_cost -= old.cost
            if cost > self.max_cost:
                # Larger than the whole budget: admitting it would
                # evict everything and still overflow; skip it.
                return
            self._entries[key] = _Entry(
                value=value,
                expires_at=now + self.ttl,
                generation=generation,
                cost=cost,
            )
            self._total_cost += cost
            while (
                len(self._entries) > self.max_entries
                or self._total_cost > self.max_cost
            ):
                victim_key, victim = next(iter(self._entries.items()))
                self._drop(victim_key, victim)
                self._stats.evictions += 1

    def invalidate_other_generations(self, generation: int) -> int:
        """Eagerly drop entries not from ``generation``; returns count."""
        with self._lock:
            doomed = [
                (key, entry)
                for key, entry in self._entries.items()
                if entry.generation != generation
            ]
            for key, entry in doomed:
                self._drop(key, entry)
            self._stats.invalidations += len(doomed)
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._total_cost = 0.0

    # -- internals -------------------------------------------------------------

    def _drop(self, key: object, entry: _Entry) -> None:
        """Remove one entry; caller holds the lock."""
        del self._entries[key]
        self._total_cost -= entry.cost


@dataclass(frozen=True)
class CacheKey:
    """Canonical cache key for a portal query (hash- and eq-able)."""

    query: str
    top_k: int


def cache_key(query: str, top_k: int) -> CacheKey:
    """Whitespace-normalize the query so trivial variants share an
    entry (and coalesce in the worker pool, which keys the same way)."""
    return CacheKey(" ".join(query.split()), top_k)
