"""Query worker pool: bounded threads, coalescing, deadlines.

A :class:`WorkerPool` owns a ``ThreadPoolExecutor`` and runs one
caller-supplied function per request.  Two serving behaviours sit on
top of the raw pool:

* **request coalescing** — identical in-flight requests (same key)
  share one execution and one result; under a thundering herd of the
  same popular query the index is hit once, not N times;
* **per-request deadlines** — a request carries an absolute deadline
  on the injected clock; if a worker picks it up past its deadline the
  work is skipped and the caller gets a ``deadline_exceeded`` outcome
  instead of a late answer nobody wants.

Failures never escape as exceptions: worker errors are captured into
the :class:`WorkOutcome`, so one poisoned query cannot kill a serving
thread.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass

from repro.obs.tracer import NULL_TRACER, AnyTracer
from repro.serve.timebase import clock_now, default_clock

OK = "ok"
DEADLINE_EXCEEDED = "deadline_exceeded"
ERROR = "error"


@dataclass(frozen=True)
class WorkOutcome:
    """What one pooled execution produced (never an exception)."""

    status: str  # OK | DEADLINE_EXCEEDED | ERROR
    value: object = None
    error: str = ""
    #: How many callers shared this execution (1 = no coalescing).
    joiners: int = 1

    @property
    def ok(self) -> bool:
        return self.status == OK


class WorkerPool:
    """Deduplicating thread pool for query/alert work."""

    def __init__(
        self,
        worker_fn,
        max_workers: int = 4,
        clock=None,
        tracer: AnyTracer | None = None,
    ) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.worker_fn = worker_fn
        self.clock = clock or default_clock()
        self.tracer = tracer or NULL_TRACER
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="serve-worker"
        )
        self._inflight: dict[object, Future] = {}
        self._joiners: dict[object, int] = {}
        self._lock = threading.Lock()
        self._closed = False

    # -- submission ------------------------------------------------------------

    def submit(self, key: object, deadline: float | None = None) -> Future:
        """Run ``worker_fn(key)`` on the pool; coalesce duplicate keys.

        Returns a future resolving to a :class:`WorkOutcome`.  A second
        ``submit`` of the same key while the first is in flight returns
        the *same* future (the coalesced execution's deadline — that of
        the first submitter — governs; joiners accepted a shared ride).
        """
        if self._closed:
            raise RuntimeError("worker pool is shut down")
        with self._lock:
            existing = self._inflight.get(key)
            if existing is not None:
                self._joiners[key] = self._joiners.get(key, 1) + 1
                self.tracer.count("serve.coalesced")
                return existing
            future: Future = self._executor.submit(
                self._run, key, deadline
            )
            self._inflight[key] = future
            self._joiners[key] = 1
            return future

    def execute(
        self, key: object, deadline: float | None = None
    ) -> WorkOutcome:
        """Blocking convenience: submit and wait for the outcome."""
        return self.submit(key, deadline=deadline).result()

    @property
    def inflight(self) -> int:
        with self._lock:
            return len(self._inflight)

    def shutdown(self, wait: bool = True) -> None:
        self._closed = True
        self._executor.shutdown(wait=wait)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    # -- execution -------------------------------------------------------------

    def _run(self, key: object, deadline: float | None) -> WorkOutcome:
        try:
            if (
                deadline is not None
                and clock_now(self.clock) > deadline
            ):
                self.tracer.count("serve.deadline_exceeded")
                return WorkOutcome(
                    status=DEADLINE_EXCEEDED,
                    error="deadline passed before execution",
                    joiners=self._joiner_count(key),
                )
            value = self.worker_fn(key)
            return WorkOutcome(
                status=OK, value=value, joiners=self._joiner_count(key)
            )
        except Exception as exc:  # worker bugs become outcomes
            self.tracer.count("serve.worker_errors")
            return WorkOutcome(
                status=ERROR,
                error=f"{type(exc).__name__}: {exc}",
                joiners=self._joiner_count(key),
            )
        finally:
            with self._lock:
                self._inflight.pop(key, None)
                self._joiners.pop(key, None)

    def _joiner_count(self, key: object) -> int:
        with self._lock:
            return self._joiners.get(key, 1)
