"""Closed-loop load generation for the portal, deterministically seeded.

A :class:`LoadGenerator` drives an :class:`~repro.serve.portal.
AlertPortal` the way a fleet of analysts would: ``n_clients`` threads,
each issuing its next query only after the previous one answered
(closed loop, so the offered load self-limits the way real interactive
users do), queries drawn from a fixed list with zipf popularity (a few
queries dominate, the long tail trickles — the distribution that makes
a result cache worth having).

Determinism: each client owns ``random.Random(seed * 10007 + client)``
and a fixed per-client request budget, so the multiset of (client,
query) requests is a pure function of ``(seed, n_clients, n_queries,
queries)`` — identical on every run, which is what lets
``BENCH_serve.json``'s cache hit rate and status counts be compared
across commits.  Latency percentiles are measured wall time and vary;
the *workload* does not.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field

from repro.serve.portal import AlertPortal


def zipf_weights(n: int, s: float = 1.1) -> list[float]:
    """Unnormalized zipf popularity weights for ranks ``1..n``."""
    if n < 1:
        raise ValueError("need at least one query")
    return [1.0 / (rank ** s) for rank in range(1, n + 1)]


def percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (0 < q <= 100)."""
    if not sorted_values:
        return 0.0
    rank = max(
        0, min(len(sorted_values) - 1,
               int(round(q / 100.0 * len(sorted_values))) - 1)
    )
    return sorted_values[rank]


@dataclass
class LoadReport:
    """What one load run produced; :meth:`to_dict` is the bench schema."""

    n_clients: int
    n_queries: int
    seed: int
    wall_seconds: float
    latencies: list[float] = field(default_factory=list)
    statuses: dict[str, int] = field(default_factory=dict)
    cache_hit_rate: float = 0.0
    shard_docs: list[int] = field(default_factory=list)
    generation: int = 0

    @property
    def p50_ms(self) -> float:
        return percentile(sorted(self.latencies), 50) * 1000.0

    @property
    def p99_ms(self) -> float:
        return percentile(sorted(self.latencies), 99) * 1000.0

    @property
    def qps(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return len(self.latencies) / self.wall_seconds

    @property
    def shard_balance(self) -> float:
        """max/mean shard occupancy (1.0 = perfectly balanced)."""
        if not self.shard_docs or not any(self.shard_docs):
            return 1.0
        mean = sum(self.shard_docs) / len(self.shard_docs)
        return max(self.shard_docs) / mean if mean else 1.0

    def to_dict(self) -> dict:
        return {
            "n_clients": self.n_clients,
            "n_queries": self.n_queries,
            "seed": self.seed,
            "wall_seconds": round(self.wall_seconds, 4),
            "qps": round(self.qps, 2),
            "p50_ms": round(self.p50_ms, 4),
            "p99_ms": round(self.p99_ms, 4),
            "statuses": dict(sorted(self.statuses.items())),
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "shard_docs": list(self.shard_docs),
            "shard_balance": round(self.shard_balance, 4),
            "generation": self.generation,
        }


class LoadGenerator:
    """Seeded closed-loop client fleet over a portal."""

    def __init__(
        self,
        portal: AlertPortal,
        queries: list[str],
        n_clients: int = 8,
        n_queries: int = 200,
        zipf_s: float = 1.1,
        top_k: int = 10,
        timeout: float | None = None,
        seed: int = 7,
    ) -> None:
        if not queries:
            raise ValueError("need a non-empty query list")
        if n_clients < 1:
            raise ValueError("n_clients must be >= 1")
        if n_queries < 1:
            raise ValueError("n_queries must be >= 1")
        self.portal = portal
        self.queries = list(queries)
        self.n_clients = n_clients
        self.n_queries = n_queries
        self.weights = zipf_weights(len(self.queries), zipf_s)
        self.top_k = top_k
        self.timeout = timeout
        self.seed = seed

    def _client_budgets(self) -> list[int]:
        """Split n_queries across clients deterministically."""
        base, extra = divmod(self.n_queries, self.n_clients)
        return [
            base + (1 if client < extra else 0)
            for client in range(self.n_clients)
        ]

    def plan(self, client: int) -> list[str]:
        """The exact query sequence client ``client`` will issue."""
        rng = random.Random(self.seed * 10007 + client)
        budget = self._client_budgets()[client]
        return rng.choices(self.queries, weights=self.weights, k=budget)

    def run(self) -> LoadReport:
        """Drive the portal with every client; returns the report."""
        latencies: list[float] = []
        statuses: dict[str, int] = {}
        lock = threading.Lock()
        before = self.portal.cache.stats()

        def client_loop(client: int) -> None:
            client_id = f"client-{client:03d}"
            for query in self.plan(client):
                started = time.perf_counter()
                response = self.portal.query(
                    client_id,
                    query,
                    top_k=self.top_k,
                    timeout=self.timeout,
                )
                elapsed = time.perf_counter() - started
                with lock:
                    latencies.append(elapsed)
                    statuses[response.status] = (
                        statuses.get(response.status, 0) + 1
                    )

        threads = [
            threading.Thread(
                target=client_loop, args=(client,),
                name=f"loadgen-{client}",
            )
            for client in range(self.n_clients)
        ]
        wall_start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - wall_start

        after = self.portal.cache.stats()
        lookups = (after.hits - before.hits) + (
            after.misses - before.misses
        )
        hit_rate = (
            (after.hits - before.hits) / lookups if lookups else 0.0
        )
        snapshot = self.portal.shards.snapshot
        return LoadReport(
            n_clients=self.n_clients,
            n_queries=self.n_queries,
            seed=self.seed,
            wall_seconds=wall,
            latencies=latencies,
            statuses=statuses,
            cache_hit_rate=hit_rate,
            shard_docs=snapshot.shard_sizes(),
            generation=snapshot.generation,
        )
