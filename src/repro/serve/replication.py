"""Simulated replica groups: snapshot shipping, lag, kill/restore.

The portal's :class:`~repro.serve.shards.ShardedIndex` publishes
immutable :class:`~repro.serve.shards.IndexSnapshot` generations; a
replicated deployment ships each generation's shard engines to N
replicas per shard.  This module simulates that cluster in-process:

* :class:`Replica` — one copy of one shard.  Holds the last few
  generations it installed (so the router can pin a whole response to
  one generation even when replicas restart mid-swap), an ``up/down``
  state, and a per-replica
  :class:`~repro.robustness.fetcher.CircuitBreaker` the router consults
  before dispatching.
* :class:`ReplicaGroup` — the N replicas of one shard plus the group's
  shipping log (every generation that was ever shipped, bounded).  A
  down replica misses installs; :meth:`restore` catches it up from the
  shipping log, and ``lag`` (generations behind the latest ship) is the
  staleness measure the gauges export.
* :class:`ReplicaSet` — one group per shard; installs whole snapshots,
  kills/restores by address, and emits ``replica_down`` /
  ``replica_restored`` flight-recorder events.
* :class:`ChaosMonkey` — a deterministic kill/restore schedule on the
  injected tick clock, used by the chaos acceptance bench: every
  ``period`` ticks it takes one replica of *every* group down for
  ``down_for`` ticks, rotating through replica indices so each replica
  of each group is exercised.

Everything here is a value-level simulation — engines are shared
immutable objects, "shipping" is a reference install — but the control
plane (state machines, staleness, breaker interplay) is the real
design, and it is what the chaos suite pins.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.obs.events import NULL_EVENT_LOG, AnyEventLog
from repro.obs.tracer import NULL_TRACER, AnyTracer
from repro.robustness.fetcher import CircuitBreaker
from repro.search.engine import SearchEngine
from repro.serve.shards import IndexSnapshot

REPLICA_UP = "up"
REPLICA_DOWN = "down"

#: Generations of history a replica (and its group's shipping log)
#: retains.  Old enough that a router pinning ``min`` over groups can
#: always find the target generation; small enough to stay bounded.
DEFAULT_HISTORY = 8


class Replica:
    """One copy of one shard: installed generations + health state."""

    def __init__(
        self,
        replica_id: str,
        shard: int,
        history: int = DEFAULT_HISTORY,
        failure_threshold: int = 3,
        cool_off: float = 2.0,
    ) -> None:
        if history < 1:
            raise ValueError("history must be >= 1")
        self.replica_id = replica_id
        self.shard = shard
        self.history = history
        self.state = REPLICA_UP
        #: generation -> engine, oldest first, bounded to ``history``.
        self._engines: OrderedDict[int, SearchEngine] = OrderedDict()
        #: The router's health signal for this replica; the router
        #: records successes/failures, the group resets it on restore.
        self.breaker = CircuitBreaker(
            failure_threshold=failure_threshold, cool_off=cool_off
        )

    # -- state -----------------------------------------------------------------

    @property
    def up(self) -> bool:
        return self.state == REPLICA_UP

    @property
    def down(self) -> bool:
        return self.state == REPLICA_DOWN

    @property
    def generation(self) -> int:
        """Newest generation installed (0 before any install)."""
        if not self._engines:
            return 0
        return next(reversed(self._engines))

    @property
    def generations(self) -> tuple[int, ...]:
        """Every generation this replica can serve, oldest first."""
        return tuple(self._engines)

    # -- data plane ------------------------------------------------------------

    def install(self, generation: int, engine: SearchEngine) -> None:
        """Ship one generation of this shard onto the replica."""
        self._engines[generation] = engine
        self._engines.move_to_end(generation)
        while len(self._engines) > self.history:
            self._engines.popitem(last=False)

    def serves(self, generation: int) -> bool:
        return generation in self._engines

    def engine_at(self, generation: int) -> SearchEngine | None:
        return self._engines.get(generation)


class ReplicaGroup:
    """The N replicas of one shard plus the group's shipping log."""

    def __init__(
        self,
        shard: int,
        n_replicas: int,
        history: int = DEFAULT_HISTORY,
        failure_threshold: int = 3,
        cool_off: float = 2.0,
    ) -> None:
        if n_replicas < 1:
            raise ValueError("n_replicas must be >= 1")
        self.shard = shard
        self.replicas = [
            Replica(
                replica_id=f"shard{shard}/r{index}",
                shard=shard,
                history=history,
                failure_threshold=failure_threshold,
                cool_off=cool_off,
            )
            for index in range(n_replicas)
        ]
        #: The shipping log: every generation shipped to this group,
        #: whether or not any replica was up to take it.  This is the
        #: "generation-tagged cache" degraded reads fall back to — a
        #: whole group down must not make the shard unanswerable.
        self._shipped: OrderedDict[int, SearchEngine] = OrderedDict()
        self.history = history

    # -- introspection ---------------------------------------------------------

    @property
    def n_replicas(self) -> int:
        return len(self.replicas)

    @property
    def latest_generation(self) -> int:
        """Newest generation ever shipped to the group (0 if none)."""
        if not self._shipped:
            return 0
        return next(reversed(self._shipped))

    def up_replicas(self) -> list[Replica]:
        return [replica for replica in self.replicas if replica.up]

    @property
    def all_down(self) -> bool:
        return not any(replica.up for replica in self.replicas)

    def lag(self, index: int) -> int:
        """Generations the replica trails the latest ship."""
        return max(
            0, self.latest_generation - self.replicas[index].generation
        )

    def best_generation(self) -> int:
        """Newest generation any *up* replica serves (0 if none up)."""
        ups = self.up_replicas()
        if not ups:
            return 0
        return max(replica.generation for replica in ups)

    def shipped_engine(self, generation: int) -> SearchEngine | None:
        """The shipping log's copy of ``generation`` (stale fallback)."""
        return self._shipped.get(generation)

    # -- lifecycle -------------------------------------------------------------

    def install(self, generation: int, engine: SearchEngine) -> None:
        """Ship a generation: log it, install on every up replica.

        Down replicas miss the install — that is what creates lag —
        and pick the generation up on :meth:`restore`.
        """
        self._shipped[generation] = engine
        self._shipped.move_to_end(generation)
        while len(self._shipped) > self.history:
            self._shipped.popitem(last=False)
        for replica in self.replicas:
            if replica.up:
                replica.install(generation, engine)

    def kill(self, index: int) -> Replica:
        replica = self.replicas[index]
        replica.state = REPLICA_DOWN
        return replica

    def restore(self, index: int, catch_up: bool = True) -> Replica:
        """Bring a replica back; by default re-ship the latest gen.

        ``catch_up=False`` restores the replica with whatever it held
        when it went down — the stale-replica scenario the staleness
        tests exercise.
        """
        replica = self.replicas[index]
        replica.state = REPLICA_UP
        if catch_up and self._shipped:
            generation = self.latest_generation
            replica.install(generation, self._shipped[generation])
        # A restored process starts with a clean failure history.
        replica.breaker.record_success()
        return replica


class ReplicaSet:
    """One :class:`ReplicaGroup` per shard; the router's world view."""

    def __init__(
        self,
        n_shards: int,
        n_replicas: int,
        history: int = DEFAULT_HISTORY,
        failure_threshold: int = 3,
        cool_off: float = 2.0,
        event_log: AnyEventLog | None = None,
        tracer: AnyTracer | None = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.event_log = event_log or NULL_EVENT_LOG
        self.tracer = tracer or NULL_TRACER
        self.groups = [
            ReplicaGroup(
                shard=shard,
                n_replicas=n_replicas,
                history=history,
                failure_threshold=failure_threshold,
                cool_off=cool_off,
            )
            for shard in range(n_shards)
        ]

    # -- introspection ---------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self.groups)

    @property
    def n_replicas(self) -> int:
        return self.groups[0].n_replicas

    @property
    def latest_generation(self) -> int:
        return max(group.latest_generation for group in self.groups)

    def replica(self, shard: int, index: int) -> Replica:
        return self.groups[shard].replicas[index]

    # -- data plane ------------------------------------------------------------

    def install_snapshot(self, snapshot: IndexSnapshot) -> None:
        """Ship one whole snapshot: engine ``i`` to group ``i``."""
        if snapshot.n_shards != self.n_shards:
            raise ValueError(
                f"snapshot has {snapshot.n_shards} shards; "
                f"replica set has {self.n_shards}"
            )
        for shard, engine in enumerate(snapshot.engines):
            self.groups[shard].install(snapshot.generation, engine)

    # -- lifecycle -------------------------------------------------------------

    def kill(self, shard: int, index: int) -> Replica:
        replica = self.groups[shard].kill(index)
        self.tracer.count("serve.replica_kills")
        self.event_log.emit(
            "replica_down", shard=shard, replica=replica.replica_id
        )
        return replica

    def restore(
        self, shard: int, index: int, catch_up: bool = True
    ) -> Replica:
        lag = self.groups[shard].lag(index)
        replica = self.groups[shard].restore(index, catch_up=catch_up)
        self.tracer.count("serve.replica_restores")
        self.event_log.emit(
            "replica_restored",
            shard=shard,
            replica=replica.replica_id,
            lag=lag,
        )
        return replica

    # -- reporting -------------------------------------------------------------

    def stats(self) -> dict:
        """Per-group health rollup (gauges + bench source)."""
        groups = []
        for group in self.groups:
            groups.append(
                {
                    "shard": group.shard,
                    "n_replicas": group.n_replicas,
                    "up": len(group.up_replicas()),
                    "latest_generation": group.latest_generation,
                    "max_lag": max(
                        group.lag(index)
                        for index in range(group.n_replicas)
                    ),
                    "breakers_open": sum(
                        1
                        for replica in group.replicas
                        if replica.breaker.state != CircuitBreaker.CLOSED
                    ),
                }
            )
        return {
            "n_shards": self.n_shards,
            "n_replicas": self.n_replicas,
            "latest_generation": self.latest_generation,
            "groups": groups,
        }


class ChaosMonkey:
    """Deterministic kill/restore schedule over a replica set.

    Driven inline by the router's tick clock (no threads, no wall
    time): on every :meth:`tick`, any due kill or restore in the
    schedule is applied.  Cycle ``k`` (kill at ``start + k * period``,
    restore ``down_for`` ticks later) takes replica ``k % n_replicas``
    of **every** group down, so each replica index of each group gets
    exercised as the clock advances.  With ``n_replicas >= 2`` a
    majority of every group stays up at all times.
    """

    def __init__(
        self,
        replicas: ReplicaSet,
        period: float = 3.0,
        down_for: float = 1.5,
        start: float | None = None,
    ) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        if not 0 < down_for < period:
            raise ValueError("down_for must be in (0, period)")
        self.replicas = replicas
        self.period = period
        self.down_for = down_for
        self._cycle = 0
        self._next_kill = period if start is None else start
        self._restore_at: float | None = None
        self._victim: int | None = None
        self.kills = 0
        self.restores = 0

    @property
    def victim(self) -> int | None:
        """Replica index currently held down (None between cycles)."""
        return self._victim

    def tick(self, now: float) -> None:
        """Apply every kill/restore due at simulated time ``now``."""
        while True:
            if self._victim is not None:
                if now < self._restore_at:
                    return
                for shard in range(self.replicas.n_shards):
                    self.replicas.restore(shard, self._victim)
                self.restores += 1
                self._victim = None
                self._cycle += 1
                self._next_kill += self.period
            elif now >= self._next_kill:
                victim = self._cycle % self.replicas.n_replicas
                for shard in range(self.replicas.n_shards):
                    self.replicas.kill(shard, victim)
                self.kills += 1
                self._victim = victim
                self._restore_at = self._next_kill + self.down_for
            else:
                return

    def finish(self) -> None:
        """Restore anything still down (end-of-run cleanup)."""
        if self._victim is not None:
            for shard in range(self.replicas.n_shards):
                self.replicas.restore(shard, self._victim)
            self.restores += 1
            self._victim = None
            self._cycle += 1
            self._next_kill += self.period
