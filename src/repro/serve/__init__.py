"""The serving subsystem: ETAP as a concurrent request/response portal.

The batch pipeline produces alerts in a loop; this package turns its
artifacts into a system that answers analyst traffic:

* :mod:`repro.serve.shards` — :class:`ShardedIndex`: doc-id-hashed
  shards behind immutable :class:`IndexSnapshot` generations with an
  atomic swap, so reads never block re-indexing;
* :mod:`repro.serve.cache` — :class:`QueryCache`: TTL'd, size- and
  entry-bounded LRU with generation-wise invalidation and explicit
  stale reads;
* :mod:`repro.serve.workers` — :class:`WorkerPool`: bounded threads,
  identical in-flight queries coalesced, per-request deadlines;
* :mod:`repro.serve.admission` — :class:`TokenBucket` rate limiting
  per client plus a bounded admission queue whose overflow is a
  ``Rejected`` *value*, never an exception;
* :mod:`repro.serve.portal` — :class:`AlertPortal`: the facade;
  multi-tenant subscriptions (company/driver filters), ``query()``,
  ``poll_alerts()`` on AlertService idempotency keys;
* :mod:`repro.serve.loadgen` — :class:`LoadGenerator`: seeded
  closed-loop clients with zipf query popularity, feeding
  ``benchmarks/bench_serve.py``.

See ``docs/SERVING.md`` for the architecture and the overload /
zero-downtime-swap semantics the serve test suite enforces.
"""

from repro.serve.admission import (
    ADMITTED,
    QUEUE_FULL,
    RATE_LIMITED,
    AdmissionController,
    AdmissionDecision,
    TokenBucket,
)
from repro.serve.cache import (
    MISS,
    CacheKey,
    CacheStats,
    QueryCache,
    cache_key,
)
from repro.serve.loadgen import (
    LoadGenerator,
    LoadReport,
    percentile,
    zipf_weights,
)
from repro.serve.portal import (
    STATUS_DEADLINE,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_REJECTED,
    STATUS_STALE,
    AlertPortal,
    QueryResponse,
    Subscription,
)
from repro.serve.replication import (
    REPLICA_DOWN,
    REPLICA_UP,
    ChaosMonkey,
    Replica,
    ReplicaGroup,
    ReplicaSet,
)
from repro.serve.router import HedgedRouter, RouteResult
from repro.serve.shards import IndexSnapshot, ShardedIndex, shard_of
from repro.serve.timebase import clock_now, default_clock
from repro.serve.workers import (
    DEADLINE_EXCEEDED,
    ERROR,
    OK,
    WorkerPool,
    WorkOutcome,
)

__all__ = [
    "ADMITTED",
    "AdmissionController",
    "AdmissionDecision",
    "AlertPortal",
    "CacheKey",
    "CacheStats",
    "ChaosMonkey",
    "DEADLINE_EXCEEDED",
    "ERROR",
    "HedgedRouter",
    "IndexSnapshot",
    "LoadGenerator",
    "LoadReport",
    "MISS",
    "OK",
    "QUEUE_FULL",
    "QueryCache",
    "QueryResponse",
    "RATE_LIMITED",
    "REPLICA_DOWN",
    "REPLICA_UP",
    "Replica",
    "ReplicaGroup",
    "ReplicaSet",
    "RouteResult",
    "STATUS_DEADLINE",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_REJECTED",
    "STATUS_STALE",
    "ShardedIndex",
    "Subscription",
    "TokenBucket",
    "WorkOutcome",
    "WorkerPool",
    "cache_key",
    "clock_now",
    "default_clock",
    "percentile",
    "shard_of",
    "zipf_weights",
]
