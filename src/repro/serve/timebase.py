"""One time axis for the serving layer, real or simulated.

The serve modules (cache TTLs, token buckets, deadlines, latency
accounting) all read time through :func:`clock_now`, which accepts
either protocol already in the repo:

* the :class:`~repro.obs.clock.Clock` protocol — ``now()`` is a method
  (:class:`~repro.obs.clock.MonotonicClock`,
  :class:`~repro.obs.clock.FakeClock`);
* the robustness tick clock — ``now`` is an attribute advanced by
  simulated work (:class:`~repro.robustness.faults.FaultyWeb`, the
  fetcher's internal tick clock).

Overload and expiry tests therefore run on the same deterministic tick
clock as the chaos suite: hand the portal a ``FakeClock`` (or the
``FaultyWeb`` it crawls through) and every TTL, rate-limit window and
deadline becomes an exact, replayable function of ticks — no
``time.sleep``, no tolerance windows.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.obs.clock import MonotonicClock


@runtime_checkable
class TickSource(Protocol):
    """Anything exposing a current time, as attribute or method."""

    now: object  # pragma: no cover - protocol


def clock_now(clock) -> float:
    """Current time of either clock protocol, in seconds/ticks."""
    now = clock.now
    if callable(now):
        return float(now())
    return float(now)


def default_clock() -> MonotonicClock:
    """The wall clock used when no simulated clock is supplied."""
    return MonotonicClock()
