"""Continuous streaming ETAP: incremental ingestion with recovery.

Public surface of the streaming subsystem:

* sources — :class:`EvolvingWebStream` (replayable, seeded),
  :class:`SequenceStream` / :func:`batches_of` (fixed splits);
* processing — :class:`StreamProcessor` with watermark semantics and
  exactly-once alert minting;
* durability — re-exported WAL/checkpoint machinery from
  :mod:`repro.core.persistence`.

See ``docs/STREAMING.md`` for the WAL format, checkpoint schema and
the recovery contract.
"""

from repro.core.persistence import (
    CheckpointStore,
    SimulatedCrash,
    WriteAheadLog,
)
from repro.stream.processor import (
    CycleReport,
    LateArrival,
    ResumeInfo,
    StreamAlert,
    StreamProcessor,
)
from repro.stream.source import (
    DocumentStream,
    EvolvingWebStream,
    MicroBatch,
    SequenceStream,
    StreamDocument,
    batches_of,
    stream_document_of,
)

__all__ = [
    "CheckpointStore",
    "CycleReport",
    "DocumentStream",
    "EvolvingWebStream",
    "LateArrival",
    "MicroBatch",
    "ResumeInfo",
    "SequenceStream",
    "SimulatedCrash",
    "StreamAlert",
    "StreamDocument",
    "StreamProcessor",
    "WriteAheadLog",
    "batches_of",
    "stream_document_of",
]
