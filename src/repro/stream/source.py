"""Document streams: time-ordered micro-batches of fresh pages.

The paper frames ETAP as an *alert* program; Sedano (PAPERS.md) makes
the next step explicit — treat business news as a continuous stream.
This module adapts the reproduction's corpus machinery to that shape:

* :class:`EvolvingWebStream` wraps a
  :class:`~repro.corpus.evolve.WebEvolver` and emits one
  :class:`MicroBatch` per publication cycle.  Because the evolver is
  seeded, the stream behaves like a replayable log: :meth:`seek`
  deterministically regenerates (and republishes) cycles 1..k, so a
  resumed processor re-pulls exactly the batches an uninterrupted run
  would have seen — the stream's "retention" is regeneration.
* :class:`SequenceStream` serves a fixed list of batches, the harness
  for golden-equivalence and watermark property tests.

When the underlying web injects faults
(:class:`~repro.robustness.faults.FaultyWeb`), the evolving stream
fetches each freshly published URL through a
:class:`~repro.robustness.fetcher.ResilientFetcher`: permanently failed
pages are dropped from the batch (counted, never raised) and degraded
pages are excluded so corrupted text never mints alerts — the same
degradation contract as the batch gather path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Protocol, Sequence

from repro.corpus.evolve import WebEvolver
from repro.corpus.generator import CorpusConfig
from repro.corpus.web import SyntheticWeb
from repro.robustness.faults import FaultyWeb
from repro.robustness.fetcher import ResilientFetcher


@dataclass(frozen=True)
class StreamDocument:
    """One document as carried by the stream."""

    doc_id: str
    url: str
    title: str
    text: str
    #: Event time on the simulated calendar (the watermark's domain).
    published_day: int
    doc_type: str = ""


@dataclass(frozen=True)
class MicroBatch:
    """One time-ordered batch of freshly published documents."""

    cycle: int
    documents: tuple[StreamDocument, ...]
    #: Publication attempts dropped by the fetch path this cycle
    #: (fault injection only; 0 on a healthy web).
    dropped: int = 0
    degraded: int = 0

    @property
    def max_event_time(self) -> int | None:
        """Largest publication day in the batch (None when empty)."""
        if not self.documents:
            return None
        return max(doc.published_day for doc in self.documents)


class DocumentStream(Protocol):
    """A replayable, cycle-addressed stream of micro-batches."""

    @property
    def cycle(self) -> int:
        """Last emitted cycle (0 before the first batch)."""

    def seek(self, cycle: int) -> None:
        """Fast-forward so the next batch is ``cycle + 1``."""

    def next_batch(self) -> MicroBatch:
        """Produce the next micro-batch."""


def stream_document_of(document, url: str | None = None) -> StreamDocument:
    """Adapt a corpus :class:`~repro.corpus.generator.Document`."""
    return StreamDocument(
        doc_id=document.doc_id,
        url=url or document.url,
        title=document.title,
        text=document.text,
        published_day=document.published_day,
        doc_type=document.doc_type,
    )


class EvolvingWebStream:
    """Micro-batches from a seeded :class:`WebEvolver` (replayable)."""

    def __init__(
        self,
        web: SyntheticWeb,
        config: CorpusConfig | None = None,
        docs_per_cycle: int = 20,
        fetcher: ResilientFetcher | None = None,
    ) -> None:
        if docs_per_cycle <= 0:
            raise ValueError("docs_per_cycle must be positive")
        self.web = web
        self.docs_per_cycle = docs_per_cycle
        self._evolver = WebEvolver(web, config)
        # A faulty web without an explicit fetcher gets the resilient
        # path by default, mirroring DataGatherer.
        if fetcher is None and isinstance(web, FaultyWeb):
            fetcher = ResilientFetcher(web, seed=web.seed)
        self.fetcher = fetcher
        #: Stream-level fetch-degradation tallies (across all batches).
        self.dropped = 0
        self.degraded = 0

    @property
    def cycle(self) -> int:
        return self._evolver.cycle

    def seek(self, cycle: int) -> None:
        """Replay (and republish) cycles up to ``cycle``, discarding.

        The evolver is a pure function of its seed, so advancing
        through k cycles reproduces the exact per-cycle documents of
        the original run; a resumed processor continues with the same
        batches the crashed run would have seen next.  Fault decisions
        are deterministic per (seed, url, attempt), so the skipped
        cycles consume the same fault schedule too.
        """
        if cycle < self._evolver.cycle:
            raise ValueError(
                f"cannot seek backwards (at cycle {self._evolver.cycle}, "
                f"asked for {cycle})"
            )
        while self._evolver.cycle < cycle:
            self.next_batch()

    def next_batch(self) -> MicroBatch:
        documents = self._evolver.advance(self.docs_per_cycle)
        kept: list[StreamDocument] = []
        dropped = 0
        degraded = 0
        for document in documents:
            if self.fetcher is None:
                kept.append(stream_document_of(document))
                continue
            outcome = self.fetcher.fetch(document.url)
            if not outcome.ok:
                dropped += 1
                continue
            if outcome.status == "degraded":
                # Same contract as the batch gatherer: corrupted text
                # must never mint trigger events a healthy fetch would
                # not have produced.
                degraded += 1
                continue
            kept.append(
                StreamDocument(
                    doc_id=document.doc_id,
                    url=outcome.page.url,
                    title=outcome.page.title,
                    text=outcome.page.text,
                    published_day=document.published_day,
                    doc_type=document.doc_type,
                )
            )
        self.dropped += dropped
        self.degraded += degraded
        return MicroBatch(
            cycle=self._evolver.cycle,
            documents=tuple(kept),
            dropped=dropped,
            degraded=degraded,
        )


@dataclass
class SequenceStream:
    """A fixed, pre-built batch sequence (tests and replays).

    Batches are renumbered 1..N on construction so ``seek`` addresses
    them by position, matching the evolving stream's contract.
    """

    batches: Sequence[MicroBatch]
    _position: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        self.batches = tuple(
            MicroBatch(
                cycle=i,
                documents=batch.documents,
                dropped=batch.dropped,
                degraded=batch.degraded,
            )
            for i, batch in enumerate(self.batches, start=1)
        )

    @property
    def cycle(self) -> int:
        return self._position

    def seek(self, cycle: int) -> None:
        if cycle < self._position:
            raise ValueError("cannot seek backwards")
        if cycle > len(self.batches):
            raise ValueError(
                f"seek past end: {cycle} > {len(self.batches)}"
            )
        self._position = cycle

    def next_batch(self) -> MicroBatch:
        if self._position >= len(self.batches):
            raise StopIteration("stream exhausted")
        batch = self.batches[self._position]
        self._position += 1
        return batch

    def __len__(self) -> int:
        return len(self.batches)

    def __iter__(self) -> Iterator[MicroBatch]:
        while self._position < len(self.batches):
            yield self.next_batch()


def batches_of(
    documents: Sequence[StreamDocument], n_batches: int
) -> SequenceStream:
    """Split documents into ``n_batches`` contiguous micro-batches.

    Sizes differ by at most one; order is preserved.  The golden
    equivalence suite feeds the same corpus through 1, 3 and N batches
    and pins that the split never changes the alert set.
    """
    if n_batches <= 0:
        raise ValueError("n_batches must be positive")
    n_batches = min(n_batches, max(len(documents), 1))
    base, extra = divmod(len(documents), n_batches)
    batches: list[MicroBatch] = []
    start = 0
    for i in range(n_batches):
        size = base + (1 if i < extra else 0)
        chunk = tuple(documents[start:start + size])
        start += size
        batches.append(MicroBatch(cycle=i + 1, documents=chunk))
    return SequenceStream(batches)
