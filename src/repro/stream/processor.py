"""The streaming processor: incremental ingestion with exactly-once alerts.

:class:`StreamProcessor` turns a trained batch
:class:`~repro.core.etap.Etap` into a resumable news-stream processor.
Each :class:`~repro.stream.source.MicroBatch` flows through:

1. **WAL batch-begin** — the cycle is announced durably;
2. **watermark routing** — documents older than
   ``watermark - allowed_lateness`` go to the late-arrival side channel
   (recorded in the WAL, the flight recorder and
   :attr:`late_arrivals`; never silently dropped), everything else is
   processed, late-but-within-lateness documents included;
3. **incremental ingestion** — on-time documents enter the
   deduplicating store, the incremental inverted index
   (:meth:`SearchEngine.add_document`) and a
   :meth:`~repro.serve.shards.ShardedIndex.extend` delta generation;
4. **online minting** — snippets of the new documents are scored by
   every driver's classifier; flagged events mint
   :class:`StreamAlert`\\ s keyed by the alert-service idempotency key,
   each logged to the WAL before the batch commits;
5. **WAL batch-commit + periodic checkpoint** — processor state
   (watermark, index generation, idempotency keys, alerts, streamed
   documents, cache stats) lands in an atomic
   :class:`~repro.core.persistence.CheckpointStore` snapshot.

**Recovery contract** (pinned by ``tests/stream/test_recovery.py``):
kill the process after *any* WAL record, then :meth:`resume` restores
the latest checkpoint, learns from the WAL tail which alerts were
already durably emitted, seeks the replayable source back to the
checkpointed cycle, and reprocesses the remainder.  Reprocessing is
deterministic and idempotency-keyed, so the final alert set, key set
and index generation are identical to an uninterrupted run — zero
duplicates, zero holes.  Alerts re-derived during replay that the WAL
already recorded are marked ``recovered`` instead of being delivered
twice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.alerts import idempotency_key
from repro.core.etap import Etap
from repro.core.persistence import CheckpointStore, WriteAheadLog
from repro.core.ranking import make_trigger_events, rank_events
from repro.gather.store import StoredDocument
from repro.obs.events import NULL_EVENT_LOG, AnyEventLog
from repro.obs.timeseries import NULL_TELEMETRY, AnyTelemetry
from repro.obs.tracer import NULL_TRACER, AnyTracer
from repro.serve.shards import ShardedIndex
from repro.stream.source import DocumentStream, MicroBatch, StreamDocument

#: Version of the checkpoint ``state`` payload written below (rides
#: inside the CheckpointStore envelope, which has its own version).
STATE_VERSION = 1


@dataclass(frozen=True)
class StreamAlert:
    """One alert minted online by the stream processor."""

    cycle: int
    driver_id: str
    alert_id: str
    snippet_id: str
    doc_id: str
    score: float
    companies: tuple[str, ...]
    text: str
    url: str
    published_day: int
    #: True when this alert was re-derived during recovery replay and
    #: the WAL shows it was already durably emitted before the crash —
    #: it is part of the final state but must not be delivered again.
    recovered: bool = False

    def to_dict(self) -> dict:
        return {
            "cycle": self.cycle,
            "driver_id": self.driver_id,
            "alert_id": self.alert_id,
            "snippet_id": self.snippet_id,
            "doc_id": self.doc_id,
            "score": self.score,
            "companies": list(self.companies),
            "text": self.text,
            "url": self.url,
            "published_day": self.published_day,
            "recovered": self.recovered,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "StreamAlert":
        return cls(
            cycle=record["cycle"],
            driver_id=record["driver_id"],
            alert_id=record["alert_id"],
            snippet_id=record["snippet_id"],
            doc_id=record["doc_id"],
            score=record["score"],
            companies=tuple(record["companies"]),
            text=record["text"],
            url=record["url"],
            published_day=record["published_day"],
            recovered=record.get("recovered", False),
        )


@dataclass(frozen=True)
class LateArrival:
    """One document routed to the late-arrival side channel."""

    cycle: int
    doc_id: str
    published_day: int
    watermark: int

    def to_dict(self) -> dict:
        return {
            "cycle": self.cycle,
            "doc_id": self.doc_id,
            "published_day": self.published_day,
            "watermark": self.watermark,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "LateArrival":
        return cls(**record)


@dataclass
class CycleReport:
    """Outcome of one processed micro-batch."""

    cycle: int
    n_docs: int
    n_ingested: int
    n_deduped: int
    n_late: int
    watermark: int | None
    generation: int
    alerts: list[StreamAlert] = field(default_factory=list)
    checkpointed: bool = False


@dataclass(frozen=True)
class ResumeInfo:
    """What :meth:`StreamProcessor.resume` reconstructed."""

    checkpoint_id: int | None
    cycle: int
    wal_records_replayed: int
    recovered_alert_keys: frozenset[str]


class StreamProcessor:
    """Consumes micro-batches, minting alerts with exactly-once effects."""

    def __init__(
        self,
        etap: Etap,
        wal: WriteAheadLog | None = None,
        checkpoints: CheckpointStore | None = None,
        allowed_lateness: int | None = 2,
        checkpoint_every: int = 1,
        threshold: float | None = None,
        n_shards: int = 2,
        tracer: AnyTracer | None = None,
        event_log: AnyEventLog | None = None,
        telemetry: AnyTelemetry | None = None,
        _build_index: bool = True,
    ) -> None:
        if not etap.classifiers:
            raise ValueError(
                "the Etap instance must be trained before streaming"
            )
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if allowed_lateness is not None and allowed_lateness < 0:
            raise ValueError("allowed_lateness must be >= 0 or None")
        self.etap = etap
        self.wal = wal
        self.checkpoints = checkpoints
        self.allowed_lateness = allowed_lateness
        self.checkpoint_every = checkpoint_every
        self.threshold = (
            etap.config.trigger_threshold if threshold is None
            else threshold
        )
        self.tracer = tracer or etap.tracer or NULL_TRACER
        self.event_log = (
            event_log if event_log is not None else etap.event_log
        ) or NULL_EVENT_LOG
        self.telemetry = (
            telemetry if telemetry is not None
            else getattr(etap, "telemetry", None)
        ) or NULL_TELEMETRY
        #: Serve-facing delta-generation index over the full store.
        self.index = ShardedIndex(
            n_shards=n_shards,
            tracer=self.tracer,
            event_log=self.event_log,
            text_engine=etap.text_engine,
        )
        if _build_index:
            self.index.rebuild_from_store(etap.store)
        self._processed: set[str] = set(etap.store.doc_ids())
        #: Event-time high watermark (None until the first document).
        self.watermark: int | None = None
        #: Last fully processed cycle.
        self.cycle = 0
        self.emitted_keys: set[str] = set()
        self.alerts: list[StreamAlert] = []
        self.late_arrivals: list[LateArrival] = []
        #: Documents ingested from the stream, in ingest order (the
        #: delta the checkpoint persists; the base corpus is rebuilt
        #: deterministically by the caller).
        self.streamed_docs: list[str] = []
        #: Keys the recovery WAL scan found already durably emitted.
        self._recovered_keys: frozenset[str] = frozenset()

    # -- lateness ---------------------------------------------------------------

    def is_late(self, published_day: int) -> bool:
        """Whether a document falls beyond the allowed lateness.

        With ``allowed_lateness=None`` the watermark is disabled and
        nothing is ever late (the batch-equivalence configuration).
        """
        if self.allowed_lateness is None or self.watermark is None:
            return False
        return published_day < self.watermark - self.allowed_lateness

    # -- processing -------------------------------------------------------------

    def process_batch(self, batch: MicroBatch) -> CycleReport:
        """Ingest one micro-batch; durable once this returns."""
        self._wal_append(
            "stream_batch_begin",
            cycle=batch.cycle,
            n_docs=len(batch.documents),
            watermark=self.watermark,
        )
        batch_started = (
            self.telemetry.clock.now() if self.telemetry.enabled else 0.0
        )
        with self.tracer.span("stream.batch") as span:
            on_time: list[StreamDocument] = []
            n_late = 0
            for document in batch.documents:
                if self.is_late(document.published_day):
                    n_late += 1
                    self._record_late(batch.cycle, document)
                else:
                    on_time.append(document)

            ingested = self._ingest(on_time)
            alerts = self._mint_alerts(batch.cycle, ingested)

            max_time = batch.max_event_time
            if max_time is not None:
                self.watermark = (
                    max_time if self.watermark is None
                    else max(self.watermark, max_time)
                )
            self.cycle = batch.cycle
            span.add_items(len(batch.documents))

        self._wal_append(
            "stream_batch_commit",
            cycle=batch.cycle,
            watermark=self.watermark,
            generation=self.index.generation,
            n_alerts=len(alerts),
        )
        checkpointed = False
        if (
            self.checkpoints is not None
            and batch.cycle % self.checkpoint_every == 0
        ):
            self.checkpoint()
            checkpointed = True

        if self.telemetry.enabled:
            telemetry = self.telemetry
            telemetry.record("stream.docs", n=len(ingested))
            telemetry.record("stream.late", n=n_late)
            telemetry.record("stream.alerts", n=len(alerts))
            telemetry.observe(
                "stream.batch_seconds",
                telemetry.clock.now() - batch_started,
            )
            if self.watermark is not None:
                # Freshness at ingest: how stale each accepted document
                # already was relative to the event-time watermark.
                for document in ingested:
                    telemetry.observe(
                        "stream.freshness_days",
                        max(0, self.watermark - document.published_day),
                    )
        self.tracer.count("stream.batches")
        self.tracer.count("stream.docs_ingested", len(ingested))
        self.tracer.count(
            "stream.docs_deduped", len(on_time) - len(ingested)
        )
        self.tracer.count("stream.late_arrivals", n_late)
        self.tracer.count("stream.alerts_minted", len(alerts))
        self.tracer.count(
            "stream.alerts_recovered",
            sum(1 for alert in alerts if alert.recovered),
        )
        return CycleReport(
            cycle=batch.cycle,
            n_docs=len(batch.documents),
            n_ingested=len(ingested),
            n_deduped=len(on_time) - len(ingested),
            n_late=n_late,
            watermark=self.watermark,
            generation=self.index.generation,
            alerts=alerts,
            checkpointed=checkpointed,
        )

    def run(
        self, source: DocumentStream, until_cycle: int
    ) -> list[CycleReport]:
        """Consume the source until ``until_cycle`` batches are done."""
        reports = []
        while source.cycle < until_cycle:
            reports.append(self.process_batch(source.next_batch()))
        return reports

    # -- internals --------------------------------------------------------------

    def _wal_append(self, event_type: str, **payload) -> None:
        if self.wal is not None:
            self.wal.append(event_type, **payload)

    def _record_late(
        self, cycle: int, document: StreamDocument
    ) -> None:
        arrival = LateArrival(
            cycle=cycle,
            doc_id=document.doc_id,
            published_day=document.published_day,
            watermark=self.watermark if self.watermark is not None else 0,
        )
        self.late_arrivals.append(arrival)
        self._wal_append(
            "late_arrival",
            doc_id=arrival.doc_id,
            published_day=arrival.published_day,
            watermark=arrival.watermark,
            cycle=cycle,
        )
        self.event_log.emit(
            "late_arrival",
            lineage_id=arrival.doc_id,
            doc_id=arrival.doc_id,
            published_day=arrival.published_day,
            watermark=arrival.watermark,
            cycle=cycle,
        )

    def _ingest(
        self, documents: Sequence[StreamDocument]
    ) -> list[StreamDocument]:
        """Store + index the genuinely new documents; returns them."""
        fresh: list[StreamDocument] = []
        for document in documents:
            if document.doc_id in self._processed:
                continue
            stored = StoredDocument(
                doc_id=document.doc_id,
                url=document.url,
                title=document.title,
                text=document.text,
                metadata={
                    "doc_type": document.doc_type,
                    "published_day": document.published_day,
                },
            )
            if not self.etap.store.add(stored):
                continue  # content/url duplicate of an earlier page
            self._processed.add(document.doc_id)
            self.streamed_docs.append(document.doc_id)
            # Incremental inverted index: the flat engine stays in sync
            # with the store for search/snippeting...
            self.etap.engine.add_document(
                document.doc_id, document.text, document.title
            )
            fresh.append(document)
        # ...and the sharded serving index advances one delta
        # generation per batch (only touched shards are cloned).
        self.index.extend(
            (doc.doc_id, doc.text, doc.title) for doc in fresh
        )
        return fresh

    def _mint_alerts(
        self, cycle: int, documents: Sequence[StreamDocument]
    ) -> list[StreamAlert]:
        items = []
        day_of: dict[str, int] = {}
        for document in documents:
            day_of[document.doc_id] = document.published_day
            snippets = self.etap.training.snippets_of_document(
                document.doc_id
            )
            items.extend(self.etap.training.annotate_snippets(snippets))
        minted: list[StreamAlert] = []
        if not items:
            return minted
        for driver in self.etap.drivers:
            scores = self.etap.score_snippets(driver.driver_id, items)
            flagged = [
                (item, score)
                for item, score in zip(items, scores)
                if score >= self.threshold
            ]
            if not flagged:
                continue
            events = rank_events(
                make_trigger_events(
                    driver.driver_id,
                    [item for item, _ in flagged],
                    [score for _, score in flagged],
                    normalizer=self.etap.normalizer,
                    url_of=self.etap.url_of,
                )
            )
            for event in events:
                key = idempotency_key(
                    driver.driver_id, event.snippet_id, event.companies
                )
                if key in self.emitted_keys:
                    continue
                self.emitted_keys.add(key)
                alert = StreamAlert(
                    cycle=cycle,
                    driver_id=driver.driver_id,
                    alert_id=key,
                    snippet_id=event.snippet_id,
                    doc_id=event.doc_id,
                    score=event.score,
                    companies=event.companies,
                    text=event.text,
                    url=event.url,
                    published_day=day_of.get(event.doc_id, 0),
                    recovered=key in self._recovered_keys,
                )
                minted.append(alert)
                self.alerts.append(alert)
                self._wal_append(
                    "stream_alert",
                    alert_id=key,
                    cycle=cycle,
                    driver_id=driver.driver_id,
                    snippet_id=event.snippet_id,
                    doc_id=event.doc_id,
                    score=event.score,
                    recovered=alert.recovered,
                )
                self.event_log.emit(
                    "alert_emitted",
                    lineage_id=event.doc_id,
                    alert_id=key,
                    cycle=cycle,
                    driver_id=driver.driver_id,
                    snippet_id=event.snippet_id,
                    doc_id=event.doc_id,
                    score=event.score,
                    rank=event.rank,
                    url=event.url,
                    companies=list(event.companies),
                    text=event.text,
                    recovered=alert.recovered,
                )
        return minted

    # -- checkpointing ----------------------------------------------------------

    def state_dict(self) -> dict:
        """The checkpointable processor state (JSON-compatible)."""
        cache = None
        if self.etap.text_engine is not None:
            stats = self.etap.text_engine.stats()
            cache = {
                "hits": stats.hits,
                "misses": stats.misses,
                "hit_rate": round(stats.hit_rate, 4),
            }
        store = self.etap.store
        return {
            "state_version": STATE_VERSION,
            "cycle": self.cycle,
            "watermark": self.watermark,
            "allowed_lateness": self.allowed_lateness,
            "generation": self.index.generation,
            "emitted_keys": sorted(self.emitted_keys),
            "alerts": [alert.to_dict() for alert in self.alerts],
            "late_arrivals": [
                arrival.to_dict() for arrival in self.late_arrivals
            ],
            "documents": [
                {
                    "doc_id": doc.doc_id,
                    "url": doc.url,
                    "title": doc.title,
                    "text": doc.text,
                    "metadata": doc.metadata,
                }
                for doc in (store.get(doc_id)
                            for doc_id in self.streamed_docs)
            ],
            "wal_seq": self.wal.last_seq if self.wal is not None else -1,
            "cache": cache,
        }

    def checkpoint(self) -> None:
        """Write one atomic checkpoint and announce it in the WAL."""
        if self.checkpoints is None:
            raise RuntimeError("no CheckpointStore configured")
        state = self.state_dict()
        self.checkpoints.save(self.cycle, state)
        self.tracer.count("stream.checkpoints_written")
        self._wal_append(
            "checkpoint_written",
            checkpoint_id=self.cycle,
            cycle=self.cycle,
            watermark=self.watermark,
            wal_seq=state["wal_seq"],
        )
        self.event_log.emit(
            "checkpoint_written",
            checkpoint_id=self.cycle,
            cycle=self.cycle,
            watermark=self.watermark,
            wal_seq=state["wal_seq"],
        )

    # -- recovery ---------------------------------------------------------------

    @classmethod
    def resume(
        cls,
        etap: Etap,
        wal: WriteAheadLog,
        checkpoints: CheckpointStore,
        allowed_lateness: int | None = 2,
        checkpoint_every: int = 1,
        threshold: float | None = None,
        n_shards: int = 2,
        tracer: AnyTracer | None = None,
        event_log: AnyEventLog | None = None,
    ) -> tuple["StreamProcessor", ResumeInfo]:
        """Reconstruct a processor after a crash (or a clean stop).

        ``etap`` must be the deterministically rebuilt *base* pipeline:
        same base corpus, same trained (or reloaded) classifiers.  The
        checkpoint contributes everything the stream added on top; the
        WAL tail contributes the set of alert keys that were already
        durably emitted after the checkpoint, so replayed alerts are
        flagged ``recovered`` instead of being delivered twice.  The
        caller then seeks the source to ``info.cycle`` and keeps
        consuming.
        """
        latest = checkpoints.latest()
        processor = cls(
            etap,
            wal=wal,
            checkpoints=checkpoints,
            allowed_lateness=allowed_lateness,
            checkpoint_every=checkpoint_every,
            threshold=threshold,
            n_shards=n_shards,
            tracer=tracer,
            event_log=event_log,
            _build_index=latest is None,
        )
        if latest is None:
            # Crash before the first checkpoint: replay from the
            # origin; the WAL still tells us what was already emitted.
            recovered = frozenset(
                record.payload["alert_id"]
                for record in wal.read()
                if record.event_type == "stream_alert"
            )
            processor._recovered_keys = recovered
            info = ResumeInfo(
                checkpoint_id=None,
                cycle=0,
                wal_records_replayed=len(wal.read()),
                recovered_alert_keys=recovered,
            )
        else:
            checkpoint_id, state = latest
            version = state.get("state_version")
            if version != STATE_VERSION:
                raise ValueError(
                    f"unsupported stream state version {version!r}"
                )
            processor._restore_state(state)
            tail = [
                record
                for record in wal.read()
                if record.seq > state["wal_seq"]
            ]
            recovered = frozenset(
                record.payload["alert_id"]
                for record in tail
                if record.event_type == "stream_alert"
            )
            processor._recovered_keys = recovered
            info = ResumeInfo(
                checkpoint_id=checkpoint_id,
                cycle=processor.cycle,
                wal_records_replayed=len(tail),
                recovered_alert_keys=recovered,
            )
        processor.tracer.count("stream.resumes")
        wal.append(
            "stream_resumed",
            checkpoint_id=(
                info.checkpoint_id if info.checkpoint_id is not None
                else -1
            ),
            cycle=info.cycle,
            wal_records_replayed=info.wal_records_replayed,
        )
        processor.event_log.emit(
            "stream_resumed",
            checkpoint_id=(
                info.checkpoint_id if info.checkpoint_id is not None
                else -1
            ),
            cycle=info.cycle,
            wal_records_replayed=info.wal_records_replayed,
        )
        return processor, info

    def _restore_state(self, state: dict) -> None:
        """Apply a checkpoint's state on top of the base pipeline."""
        self.cycle = state["cycle"]
        self.watermark = state["watermark"]
        self.emitted_keys = set(state["emitted_keys"])
        self.alerts = [
            StreamAlert.from_dict(record) for record in state["alerts"]
        ]
        self.late_arrivals = [
            LateArrival.from_dict(record)
            for record in state["late_arrivals"]
        ]
        for record in state["documents"]:
            stored = StoredDocument(
                doc_id=record["doc_id"],
                url=record["url"],
                title=record["title"],
                text=record["text"],
                metadata=dict(record["metadata"]),
            )
            if self.etap.store.add(stored):
                self.etap.engine.add_document(
                    stored.doc_id, stored.text, stored.title
                )
            self._processed.add(stored.doc_id)
            self.streamed_docs.append(stored.doc_id)
        self.index.restore(
            (
                (doc.doc_id, doc.text, doc.title)
                for doc in self.etap.store
            ),
            generation=state["generation"],
        )

    # -- lifecycle --------------------------------------------------------------

    def close(self) -> None:
        if self.wal is not None:
            self.wal.close()

    def __enter__(self) -> "StreamProcessor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
