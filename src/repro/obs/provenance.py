"""Alert provenance: replay the event log into an explainable graph.

An analyst acts on an alert only when the system can show *which page,
snippet, and classifier decision* produced it (paper sections 5-6).
:class:`ProvenanceGraph` is assembled purely from a run's recorded
events — no live pipeline state — so ``repro explain <alert-id>`` works
on a saved JSONL log long after the run finished.

The chain it reconstructs::

    seed URL -> crawl hops -> fetched page -> indexed document
        -> snippet -> feature evidence -> classifier score -> rank
        -> alert

Nodes are keyed ``(kind, id)`` where kind is one of ``url``, ``doc``,
``snippet``, ``classification``, ``alert``; edges always point from
cause to effect, so the graph is acyclic by construction — and
:meth:`is_acyclic` verifies that invariant for any log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.obs.events import Event

#: Node key: (kind, identifier).
NodeKey = tuple[str, str]


def snippet_doc_id(snippet_id: str) -> str:
    """The document a ``doc_id#index`` snippet id belongs to."""
    return snippet_id.rsplit("#", 1)[0]


@dataclass
class ProvenanceChain:
    """One alert's full causal history, ready to render."""

    alert_id: str
    driver_id: str
    cycle: int | None
    score: float
    rank: int | None
    snippet_id: str
    snippet_text: str
    doc_id: str
    url: str
    title: str
    crawl_path: list[str]
    crawl_depth: int | None
    features: list[tuple[str, float]]
    companies: list[str]

    def render(self) -> str:
        """Human tree: alert at the top, crawl seed at the bottom."""
        lines = [
            f"alert {self.alert_id}"
            + (f"  (cycle {self.cycle})" if self.cycle is not None else ""),
            f"└─ driver {self.driver_id}  score={self.score:.4f}"
            + (f"  rank={self.rank}" if self.rank is not None else ""),
        ]
        indent = "   "
        if self.features:
            evidence = ", ".join(
                f"{name} ({weight:+.2f})" for name, weight in self.features
            )
            lines.append(f"{indent}└─ evidence: {evidence}")
            indent += "   "
        snippet = self.snippet_text
        if len(snippet) > 100:
            snippet = snippet[:97] + "..."
        companies = ", ".join(self.companies) if self.companies else "-"
        lines.append(
            f"{indent}└─ snippet {self.snippet_id}  "
            f"(companies: {companies})"
        )
        indent += "   "
        if snippet:
            lines.append(f'{indent}   "{snippet}"')
        title = f'  "{self.title}"' if self.title else ""
        lines.append(f"{indent}└─ doc {self.doc_id}{title}")
        indent += "   "
        depth = (
            f"  (depth {self.crawl_depth})"
            if self.crawl_depth is not None
            else ""
        )
        lines.append(f"{indent}└─ url {self.url}{depth}")
        for hop in self.crawl_path:
            indent += "   "
            lines.append(f"{indent}└─ via {hop}")
        return "\n".join(lines)


class ProvenanceGraph:
    """Event-sourced lineage graph over one run's event log."""

    def __init__(self) -> None:
        self.pages: dict[str, Event] = {}
        self.referrers: dict[str, str] = {}
        self.docs: dict[str, Event] = {}
        self.doc_url: dict[str, str] = {}
        self.classifications: dict[tuple[str, str], Event] = {}
        self.alerts: dict[str, Event] = {}
        self.drift_warnings: list[Event] = []

    @classmethod
    def from_events(cls, events: Iterable[Event]) -> "ProvenanceGraph":
        graph = cls()
        for event in events:
            graph.add(event)
        return graph

    def add(self, event: Event) -> None:
        payload = event.payload
        kind = event.event_type
        if kind == "page_crawled":
            url = payload["url"]
            self.pages[url] = event
            via = payload.get("via")
            if via:
                self.referrers[url] = via
        elif kind == "doc_indexed":
            self.docs[payload["doc_id"]] = event
            self.doc_url[payload["doc_id"]] = payload["url"]
        elif kind == "trigger_classified":
            key = (payload["driver_id"], payload["snippet_id"])
            self.classifications[key] = event
        elif kind == "alert_emitted":
            self.alerts[payload["alert_id"]] = event
        elif kind == "drift_warning":
            self.drift_warnings.append(event)

    # -- graph structure ------------------------------------------------------

    def nodes(self) -> set[NodeKey]:
        found: set[NodeKey] = set()
        for url in self.pages:
            found.add(("url", url))
        for via in self.referrers.values():
            found.add(("url", via))
        for doc_id in self.docs:
            found.add(("doc", doc_id))
        for driver_id, snippet_id in self.classifications:
            found.add(("snippet", snippet_id))
            found.add(("classification", f"{driver_id}:{snippet_id}"))
        for alert_id in self.alerts:
            found.add(("alert", alert_id))
        return found

    def edges(self) -> Iterator[tuple[NodeKey, NodeKey]]:
        """Cause -> effect edges implied by the recorded events."""
        for url, via in self.referrers.items():
            yield ("url", via), ("url", url)
        for doc_id, event in self.docs.items():
            url = event.payload["url"]
            if url in self.pages:
                yield ("url", url), ("doc", doc_id)
        for (driver_id, snippet_id), _ in self.classifications.items():
            doc_id = snippet_doc_id(snippet_id)
            if doc_id in self.docs:
                yield ("doc", doc_id), ("snippet", snippet_id)
            yield (
                ("snippet", snippet_id),
                ("classification", f"{driver_id}:{snippet_id}"),
            )
        for alert_id, event in self.alerts.items():
            driver_id = event.payload["driver_id"]
            snippet_id = event.payload["snippet_id"]
            key = ("classification", f"{driver_id}:{snippet_id}")
            yield key, ("alert", alert_id)

    def is_acyclic(self) -> bool:
        """True when no directed cycle exists (it never should)."""
        adjacency: dict[NodeKey, list[NodeKey]] = {}
        for cause, effect in self.edges():
            adjacency.setdefault(cause, []).append(effect)
        WHITE, GRAY, BLACK = 0, 1, 2
        color: dict[NodeKey, int] = {}
        for start in list(adjacency):
            if color.get(start, WHITE) != WHITE:
                continue
            stack: list[tuple[NodeKey, Iterator[NodeKey]]] = [
                (start, iter(adjacency.get(start, ())))
            ]
            color[start] = GRAY
            while stack:
                node, children = stack[-1]
                advanced = False
                for child in children:
                    state = color.get(child, WHITE)
                    if state == GRAY:
                        return False
                    if state == WHITE:
                        color[child] = GRAY
                        stack.append(
                            (child, iter(adjacency.get(child, ())))
                        )
                        advanced = True
                        break
                if not advanced:
                    color[node] = BLACK
                    stack.pop()
        return True

    # -- queries --------------------------------------------------------------

    def crawl_path(self, url: str, max_hops: int = 64) -> list[str]:
        """Referrer hops from ``url`` back toward the crawl seed."""
        path: list[str] = []
        seen = {url}
        current = url
        while current in self.referrers and len(path) < max_hops:
            current = self.referrers[current]
            if current in seen:
                break  # defensive: referrer loops cannot normally occur
            seen.add(current)
            path.append(current)
        return path

    def unreachable_alerts(self) -> list[str]:
        """Alert ids whose chain does not reach a crawled page."""
        broken: list[str] = []
        for alert_id, event in self.alerts.items():
            doc_id = event.payload["doc_id"]
            doc = self.docs.get(doc_id)
            if doc is None or doc.payload["url"] not in self.pages:
                broken.append(alert_id)
        return sorted(broken)

    def explain(self, alert_id: str) -> ProvenanceChain:
        """Assemble the full chain for one alert (KeyError if unknown)."""
        alert = self.alerts.get(alert_id)
        if alert is None:
            known = ", ".join(sorted(self.alerts)[:10]) or "(none)"
            raise KeyError(
                f"no alert_emitted event for {alert_id!r}; known: {known}"
            )
        payload = alert.payload
        driver_id = payload["driver_id"]
        snippet_id = payload["snippet_id"]
        doc_id = payload["doc_id"]
        classification = self.classifications.get((driver_id, snippet_id))
        doc = self.docs.get(doc_id)
        url = doc.payload["url"] if doc else payload.get("url", "")
        page = self.pages.get(url)
        features: list[tuple[str, float]] = []
        rank = payload.get("rank")
        snippet_text = payload.get("text", "")
        companies = list(payload.get("companies", ()))
        if classification is not None:
            features = [
                (str(name), float(weight))
                for name, weight in classification.payload["features"]
            ]
            rank = classification.payload.get("rank", rank)
            snippet_text = classification.payload.get(
                "text", snippet_text
            )
            companies = list(
                classification.payload.get("companies", companies)
            )
        return ProvenanceChain(
            alert_id=alert_id,
            driver_id=driver_id,
            cycle=payload.get("cycle"),
            score=float(payload["score"]),
            rank=rank,
            snippet_id=snippet_id,
            snippet_text=snippet_text,
            doc_id=doc_id,
            url=url,
            title=doc.payload.get("title", "") if doc else "",
            crawl_path=self.crawl_path(url) if url else [],
            crawl_depth=(
                page.payload.get("depth") if page is not None else None
            ),
            features=features,
            companies=companies,
        )
