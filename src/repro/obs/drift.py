"""Classifier drift monitors: compare scoring-time behaviour to training.

A deployed ETAP keeps scoring fresh crawls with classifiers trained on
an earlier snapshot of the web.  Three cheap monitors catch the usual
failure modes before an analyst notices bad leads:

* **class-balance shift** — the fraction of snippets scored above the
  trigger threshold moves far from the rate seen on training data
  (classifier suddenly firing on everything, or nothing);
* **score-distribution divergence** — total-variation distance between
  the binned training score histogram and the live one;
* **vocabulary OOV rate** — fraction of abstracted feature tokens the
  vectorizer has never seen (the web's language moved on).

Each breach becomes a ``drift_warning`` event on the flight recorder,
so drift shows up in the same log that explains alerts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence


@dataclass(frozen=True)
class DriftThresholds:
    """Breach levels; defaults are deliberately permissive."""

    class_balance_shift: float = 0.25
    score_divergence: float = 0.35
    oov_rate: float = 0.30


@dataclass(frozen=True)
class DriftReport:
    """One monitor's breach: value crossed threshold."""

    driver_id: str
    monitor: str
    value: float
    threshold: float
    detail: str = ""


def score_histogram(
    scores: Sequence[float], bins: int = 10
) -> tuple[float, ...]:
    """Normalized histogram of scores over [0, 1] (clamped)."""
    if bins <= 0:
        raise ValueError("bins must be positive")
    counts = [0] * bins
    for score in scores:
        clamped = min(max(float(score), 0.0), 1.0)
        index = min(int(clamped * bins), bins - 1)
        counts[index] += 1
    total = len(scores)
    if total == 0:
        return tuple(0.0 for _ in counts)
    return tuple(count / total for count in counts)


def total_variation(
    p: Sequence[float], q: Sequence[float]
) -> float:
    """Total-variation distance between two discrete distributions."""
    if len(p) != len(q):
        raise ValueError("distributions must have equal length")
    return 0.5 * sum(abs(a - b) for a, b in zip(p, q))


@dataclass(frozen=True)
class DriftBaseline:
    """What training looked like, frozen at fit time."""

    driver_id: str
    positive_rate: float
    histogram: tuple[float, ...]
    vocabulary: frozenset[str] = field(default_factory=frozenset)
    threshold: float = 0.5

    @classmethod
    def from_training(
        cls,
        driver_id: str,
        scores: Sequence[float],
        vocabulary: Iterable[str] = (),
        threshold: float = 0.5,
        bins: int = 10,
    ) -> "DriftBaseline":
        scores = [float(s) for s in scores]
        positive = sum(1 for s in scores if s >= threshold)
        rate = positive / len(scores) if scores else 0.0
        return cls(
            driver_id=driver_id,
            positive_rate=rate,
            histogram=score_histogram(scores, bins=bins),
            vocabulary=frozenset(vocabulary),
            threshold=threshold,
        )


class DriftMonitor:
    """Checks live scoring batches against a training baseline."""

    def __init__(
        self,
        baseline: DriftBaseline,
        thresholds: DriftThresholds | None = None,
        min_batch: int = 20,
    ) -> None:
        self.baseline = baseline
        self.thresholds = thresholds or DriftThresholds()
        #: Batches smaller than this are too noisy to judge.
        self.min_batch = min_batch

    def check_scores(
        self, scores: Sequence[float]
    ) -> list[DriftReport]:
        """Class-balance and score-distribution monitors."""
        if len(scores) < self.min_batch:
            return []
        reports: list[DriftReport] = []
        scores = [float(s) for s in scores]

        positive = sum(
            1 for s in scores if s >= self.baseline.threshold
        )
        live_rate = positive / len(scores)
        shift = abs(live_rate - self.baseline.positive_rate)
        if shift > self.thresholds.class_balance_shift:
            reports.append(
                DriftReport(
                    driver_id=self.baseline.driver_id,
                    monitor="class_balance",
                    value=shift,
                    threshold=self.thresholds.class_balance_shift,
                    detail=(
                        f"train positive rate "
                        f"{self.baseline.positive_rate:.3f}, "
                        f"live {live_rate:.3f}"
                    ),
                )
            )

        live_hist = score_histogram(
            scores, bins=len(self.baseline.histogram)
        )
        divergence = total_variation(self.baseline.histogram, live_hist)
        if divergence > self.thresholds.score_divergence:
            reports.append(
                DriftReport(
                    driver_id=self.baseline.driver_id,
                    monitor="score_distribution",
                    value=divergence,
                    threshold=self.thresholds.score_divergence,
                    detail=(
                        f"total variation {divergence:.3f} over "
                        f"{len(live_hist)} bins"
                    ),
                )
            )
        return reports

    def check_tokens(
        self, token_lists: Sequence[Sequence[str]]
    ) -> list[DriftReport]:
        """Vocabulary OOV monitor over abstracted feature tokens."""
        if not self.baseline.vocabulary:
            return []
        total = 0
        unseen = 0
        for tokens in token_lists:
            for token in tokens:
                total += 1
                if token not in self.baseline.vocabulary:
                    unseen += 1
        if total < self.min_batch:
            return []
        rate = unseen / total
        if rate <= self.thresholds.oov_rate:
            return []
        return [
            DriftReport(
                driver_id=self.baseline.driver_id,
                monitor="vocabulary_oov",
                value=rate,
                threshold=self.thresholds.oov_rate,
                detail=f"{unseen}/{total} tokens out of vocabulary",
            )
        ]

    def check(
        self,
        scores: Sequence[float],
        token_lists: Sequence[Sequence[str]] | None = None,
    ) -> list[DriftReport]:
        """Run every monitor; returns only breaches."""
        reports = self.check_scores(scores)
        if token_lists is not None:
            reports.extend(self.check_tokens(token_lists))
        return reports
