"""Prometheus text-format export of the pipeline's metrics.

Turns a :class:`~repro.obs.metrics.Registry` (counters + histograms)
plus derived gauges into the Prometheus exposition text format, so a
long-running deployment can be scraped — or a one-shot run dumped with
``repro metrics`` — without any metrics-server dependency.

Counters export as ``counter``; histograms as ``summary`` (quantiles +
``_sum`` + ``_count``); everything else as ``gauge``.  Gauge names may
carry a label suffix (``positive_rate{driver="mergers"}``), which is
passed through verbatim after name sanitization.

:func:`parse_prometheus_text` is the inverse used by tests and the
``repro metrics`` self-check: a small strict parser of the exposition
format that rejects malformed lines.
"""

from __future__ import annotations

import re

from repro.obs.metrics import Registry

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r"\s+(?P<value>[^\s]+)$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="([^"]*)"')


def sanitize_metric_name(name: str) -> str:
    """Map a registry metric name to a legal Prometheus name."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not cleaned or not _NAME_OK.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def _split_labels(name: str) -> tuple[str, str]:
    """Split ``name{label="x"}`` into (bare name, label suffix)."""
    brace = name.find("{")
    if brace == -1:
        return name, ""
    return name[:brace], name[brace:]


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def prometheus_text(
    registry: Registry,
    gauges: dict[str, float] | None = None,
    prefix: str = "repro",
) -> str:
    """Render the registry (and extra gauges) as exposition text."""
    lines: list[str] = []

    for name, value in registry.counters.items():
        metric = f"{prefix}_{sanitize_metric_name(name)}"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(value)}")

    for name, histogram in registry.histograms.items():
        metric = f"{prefix}_{sanitize_metric_name(name)}"
        lines.append(f"# TYPE {metric} summary")
        for quantile in (50, 95):
            lines.append(
                f'{metric}{{quantile="0.{quantile}"}} '
                f"{_format_value(histogram.percentile(quantile))}"
            )
        lines.append(f"{metric}_sum {_format_value(histogram.total)}")
        lines.append(f"{metric}_count {_format_value(histogram.count)}")

    for name, value in sorted((gauges or {}).items()):
        bare, labels = _split_labels(name)
        metric = f"{prefix}_{sanitize_metric_name(bare)}"
        type_line = f"# TYPE {metric} gauge"
        if type_line not in lines:
            lines.append(type_line)
        lines.append(f"{metric}{labels} {_format_value(value)}")

    return "\n".join(lines) + "\n"


def parse_prometheus_text(
    text: str,
) -> dict[tuple[str, tuple[tuple[str, str], ...]], float]:
    """Parse exposition text into ``{(name, labels): value}``.

    Raises :class:`ValueError` on any line that is neither a comment
    nor a well-formed sample — the validation ``repro metrics`` relies
    on.
    """
    samples: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        match = _SAMPLE_RE.match(stripped)
        if match is None:
            raise ValueError(
                f"line {lineno}: not a valid sample: {line!r}"
            )
        labels: tuple[tuple[str, str], ...] = ()
        label_text = match.group("labels")
        if label_text:
            inner = label_text[1:-1].strip()
            if inner:
                parsed = _LABEL_RE.findall(inner)
                reconstructed = ",".join(
                    f'{k}="{v}"' for k, v in parsed
                )
                if reconstructed != inner.rstrip(","):
                    raise ValueError(
                        f"line {lineno}: malformed labels: {line!r}"
                    )
                labels = tuple(parsed)
        try:
            value = float(match.group("value"))
        except ValueError as exc:
            raise ValueError(
                f"line {lineno}: bad sample value: {line!r}"
            ) from exc
        samples[(match.group("name"), labels)] = value
    return samples


def telemetry_gauges(
    telemetry,
    windows: tuple[float, ...] = (60.0, 300.0),
) -> dict[str, float]:
    """Windowed-rate + quantile gauges from a Telemetry hub.

    * ``window_rate{series="...",window="60s"}`` — per-second event
      rate over each trailing window;
    * ``window_mean{series="...",window="60s"}`` — windowed mean value;
    * ``quantile{sketch="...",q="0.99"}`` — lifetime sketch quantiles.

    Empty under :data:`~repro.obs.timeseries.NULL_TELEMETRY`.
    """
    gauges: dict[str, float] = {}
    if telemetry is None or not telemetry.enabled:
        return gauges
    now = telemetry.clock.now()
    for name in telemetry.series_names:
        series = telemetry.series(name)
        for seconds in windows:
            aggregate = series.window(seconds, now=now)
            suffix = f'series="{name}",window="{int(seconds)}s"'
            gauges[f"window_rate{{{suffix}}}"] = aggregate.rate
            if aggregate.count:
                gauges[f"window_mean{{{suffix}}}"] = aggregate.mean
    for name in telemetry.sketch_names:
        sketch = telemetry.sketch(name)
        for q in sketch.quantiles:
            gauges[f'quantile{{sketch="{name}",q="{q:g}"}}'] = (
                sketch.quantile(q)
            )
    return gauges


def slo_gauges(statuses) -> dict[str, float]:
    """Budget/burn gauges from :class:`~repro.obs.slo.SloStatus` list.

    * ``slo_budget_remaining{slo="..."}`` — error budget fraction left;
    * ``slo_burn_fast`` / ``slo_burn_slow{slo="..."}`` — burn rates;
    * ``slo_breaching{slo="..."}`` — 1 when paging, else 0.
    """
    gauges: dict[str, float] = {}
    for status in statuses:
        label = f'{{slo="{status.name}"}}'
        gauges[f"slo_budget_remaining{label}"] = status.budget_remaining
        gauges[f"slo_burn_fast{label}"] = status.burn_fast
        gauges[f"slo_burn_slow{label}"] = status.burn_slow
        gauges[f"slo_breaching{label}"] = 1.0 if status.breaching else 0.0
    return gauges


def derive_gauges(
    registry: Registry,
    scheduler=None,
    event_log=None,
    portal=None,
    telemetry=None,
    slo_statuses=None,
    portfolios=None,
) -> dict[str, float]:
    """Pipeline-level gauges computed from recorded counters.

    * ``dedup_ratio`` — fraction of crawled article pages dropped by
      exact or near dedup;
    * ``ingest_memory_bytes_per_doc`` — resident store bytes per
      stored document, from the ``ingest.memory_bytes`` counter;
    * ``ingest_shard_docs{shard="..."}`` — documents owned by each
      ingestion shard worker (see :mod:`repro.gather.ingest`);
    * ``positive_rate{driver="..."}`` — flagged / scored snippets per
      driver, the classifier-drift headline number;
    * ``scheduler_queue_depth`` / ``scheduler_tracked_urls`` — revisit
      scheduler backlog, when a scheduler is provided;
    * ``events_emitted`` — flight-recorder volume, when a log is given;
    * ``serve_cache_hit_rate`` / ``serve_rejection_rate`` — serving-
      layer health, from the ``serve.*`` counters;
    * ``serve_queue_depth`` / ``serve_generation`` /
      ``serve_shard_docs{shard="..."}`` — live portal state, when an
      :class:`~repro.serve.portal.AlertPortal` is provided;
    * ``stream_late_ratio`` / ``stream_dedup_ratio`` /
      ``stream_alerts_per_batch`` — streaming rollups from the
      ``stream.*`` counters;
    * ``queries_selection_rate`` — portfolio members per evaluated
      candidate, from the ``queries.*`` counters;
    * ``queries_portfolio_*{driver="..."}`` — per-driver planner
      results, when an iterable of
      :class:`~repro.queries.planner.Portfolio` is provided;
    * plus :func:`telemetry_gauges` when ``telemetry`` is given and
      :func:`slo_gauges` when ``slo_statuses`` is given.
    """
    counters = registry.counters
    gauges: dict[str, float] = {}

    stored = counters.get("gather.documents_stored", 0)
    skipped = counters.get("gather.duplicates_skipped", 0)
    near = counters.get("gather.near_duplicates_skipped", 0)
    seen = stored + skipped + near
    if seen:
        gauges["dedup_ratio"] = (skipped + near) / seen

    memory = counters.get("ingest.memory_bytes", 0)
    if stored and memory:
        gauges["ingest_memory_bytes_per_doc"] = memory / stored

    for name, docs in counters.items():
        match = re.match(r"ingest\.shard_docs\[(.+)\]$", name)
        if match:
            gauges[f'ingest_shard_docs{{shard="{match.group(1)}"}}'] = (
                float(docs)
            )

    for name, flagged in counters.items():
        match = re.match(r"extract\.flagged\[(.+)\]$", name)
        if not match:
            continue
        driver_id = match.group(1)
        scored = counters.get(f"extract.scored[{driver_id}]", 0)
        if scored:
            gauges[f'positive_rate{{driver="{driver_id}"}}'] = (
                flagged / scored
            )

    if scheduler is not None:
        gauges["scheduler_queue_depth"] = float(scheduler.queue_depth)
        gauges["scheduler_tracked_urls"] = float(len(scheduler))

    if event_log is not None and event_log.enabled:
        gauges["events_emitted"] = float(event_log.total_emitted)

    hits = counters.get("serve.cache_hits", 0)
    misses = counters.get("serve.cache_misses", 0)
    if hits + misses:
        gauges["serve_cache_hit_rate"] = hits / (hits + misses)
    admitted = counters.get("serve.admitted", 0)
    rejected = counters.get("serve.rejected", 0)
    if admitted + rejected:
        gauges["serve_rejection_rate"] = rejected / (
            admitted + rejected
        )

    if portal is not None:
        stats = portal.stats()
        gauges["serve_queue_depth"] = float(stats["queue_depth"])
        gauges["serve_generation"] = float(stats["generation"])
        for shard, n_docs in enumerate(stats["shard_docs"]):
            gauges[f'serve_shard_docs{{shard="{shard}"}}'] = float(
                n_docs
            )
        replicas = stats.get("replicas")
        if replicas:
            gauges["serve_replicas_per_shard"] = float(
                replicas["n_replicas"]
            )
            for group in replicas["groups"]:
                label = f'{{shard="{group["shard"]}"}}'
                gauges[f"serve_replicas_up{label}"] = float(
                    group["up"]
                )
                gauges[f"serve_replica_lag{label}"] = float(
                    group["max_lag"]
                )
                gauges[f"serve_replica_breakers_open{label}"] = float(
                    group["breakers_open"]
                )

    ingested = counters.get("stream.docs_ingested", 0)
    deduped = counters.get("stream.docs_deduped", 0)
    late = counters.get("stream.late_arrivals", 0)
    arrived = ingested + deduped + late
    if arrived:
        gauges["stream_late_ratio"] = late / arrived
        gauges["stream_dedup_ratio"] = deduped / arrived
    batches = counters.get("stream.batches", 0)
    if batches:
        gauges["stream_alerts_per_batch"] = (
            counters.get("stream.alerts_minted", 0) / batches
        )

    evaluated = counters.get("queries.candidates_evaluated", 0)
    if evaluated:
        gauges["queries_selection_rate"] = (
            counters.get("queries.queries_selected", 0) / evaluated
        )
    if portfolios is not None:
        for portfolio in portfolios:
            label = f'{{driver="{portfolio.driver_id}"}}'
            gauges[f"queries_portfolio_size{label}"] = float(
                len(portfolio.selected)
            )
            gauges[f"queries_portfolio_cost{label}"] = float(
                portfolio.total_cost
            )
            gauges[f"queries_portfolio_budget{label}"] = float(
                portfolio.budget
            )
            gauges[f"queries_portfolio_precision{label}"] = (
                portfolio.precision_at_budget
            )

    if telemetry is not None:
        gauges.update(telemetry_gauges(telemetry))
    if slo_statuses is not None:
        gauges.update(slo_gauges(slo_statuses))

    return gauges
