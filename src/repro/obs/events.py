"""The flight recorder: typed, schema-versioned pipeline events.

Every pipeline stage can report *what happened and why* as an
:class:`Event` — a crawl fetched a page, the store deduplicated a
document, a classifier flagged a snippet, the alert service emitted an
alert.  Events are plain JSON-able records with a shared envelope
(schema version, run id, sequence number, timestamp, optional per-
document ``lineage_id``) plus a typed payload, so a run's event log can
be persisted as JSONL, validated against the schema, and replayed into
a :class:`~repro.obs.provenance.ProvenanceGraph` that explains any
alert back to the page that produced it.

Instrumented code takes an optional ``event_log`` that defaults to
:data:`NULL_EVENT_LOG`; as with the null tracer, the recorder-off path
is a single no-op method call.
"""

from __future__ import annotations

import json
import os
from collections import Counter, deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Iterable, Iterator

from repro.obs.clock import Clock, MonotonicClock

#: Version of the event envelope + payload schemas below.  Bump when a
#: required field is added/renamed; ``validate_record`` rejects records
#: from other versions so downstream tooling never misreads a log.
SCHEMA_VERSION = 1

#: Event type -> payload fields that must be present (extra fields are
#: always allowed; the schema is a floor, not a ceiling).
EVENT_TYPES: dict[str, frozenset[str]] = {
    "run_started": frozenset({"command"}),
    "page_crawled": frozenset({"url", "depth"}),
    "doc_indexed": frozenset({"doc_id", "url"}),
    "doc_deduped": frozenset({"doc_id", "reason"}),
    "near_duplicate": frozenset({"key", "duplicate_of", "similarity"}),
    "search_executed": frozenset({"query", "n_results"}),
    "model_trained": frozenset(
        {
            "driver_id",
            "n_noisy_positive",
            "n_noisy_kept",
            "n_negative",
            "n_features",
            "n_iterations",
        }
    ),
    "snippet_scored": frozenset(
        {"snippet_id", "doc_id", "driver_id", "score"}
    ),
    "trigger_classified": frozenset(
        {"snippet_id", "doc_id", "driver_id", "score", "rank", "features"}
    ),
    "alert_emitted": frozenset(
        {
            "alert_id",
            "cycle",
            "driver_id",
            "snippet_id",
            "doc_id",
            "score",
        }
    ),
    "company_ranked": frozenset({"company", "mrr", "position"}),
    "drift_warning": frozenset({"monitor", "value", "threshold"}),
    "fetch_retry": frozenset({"url", "attempt", "wait_ticks", "reason"}),
    "breaker_open": frozenset({"host", "failures"}),
    "breaker_close": frozenset({"host"}),
    "fetch_dead_letter": frozenset({"url", "reason", "attempts"}),
    "query_served": frozenset({"client_id", "query", "status"}),
    "query_rejected": frozenset({"client_id", "reason"}),
    "snapshot_swapped": frozenset({"generation", "n_docs", "n_shards"}),
    # Process-sharded ingestion (docs/PERFORMANCE.md): one event per
    # shard as its flat postings slice lands in the merged index.
    "shard_merged": frozenset({"shard", "docs", "tokens", "terms"}),
    "subscription_polled": frozenset({"subscription_id", "n_alerts"}),
    # Streaming ingestion (docs/STREAMING.md).  The first four double as
    # the write-ahead-log record types of
    # :class:`~repro.core.persistence.WriteAheadLog`.
    "stream_batch_begin": frozenset({"cycle", "n_docs"}),
    "stream_alert": frozenset(
        {"alert_id", "cycle", "driver_id", "snippet_id", "doc_id", "score"}
    ),
    "stream_batch_commit": frozenset(
        {"cycle", "watermark", "generation", "n_alerts"}
    ),
    "checkpoint_written": frozenset(
        {"checkpoint_id", "cycle", "watermark", "wal_seq"}
    ),
    "stream_resumed": frozenset(
        {"checkpoint_id", "cycle", "wal_records_replayed"}
    ),
    "late_arrival": frozenset({"doc_id", "published_day", "watermark"}),
    # SLO engine + health monitor (docs/OBSERVABILITY.md).  The system
    # meta-alerts on itself through the same flight recorder it uses
    # for pipeline lineage.
    "slo_breach": frozenset(
        {"slo", "objective", "window", "burn_rate", "budget_remaining"}
    ),
    "health_transition": frozenset({"status", "previous", "reasons"}),
    # Replicated serving (docs/SERVING.md, "Replication and chaos
    # serving").  ``degraded_read`` fires wherever a response is built
    # from anything but a fresh, fully-replicated generation — the
    # stale cache path and the router's group fallback share it.
    "replica_down": frozenset({"shard", "replica"}),
    "replica_restored": frozenset({"shard", "replica", "lag"}),
    "query_hedged": frozenset({"query", "shard", "primary", "hedge"}),
    "degraded_read": frozenset({"source"}),
    # Smart-query planner (docs/QUERIES.md): every candidate's measured
    # coverage/precision/cost, and each driver's selected portfolio.
    "query_candidate_evaluated": frozenset(
        {"driver_id", "query", "source", "coverage", "precision", "cost"}
    ),
    "portfolio_selected": frozenset(
        {
            "driver_id",
            "budget",
            "n_candidates",
            "n_selected",
            "total_cost",
            "precision_at_budget",
        }
    ),
}

_ENVELOPE_FIELDS = frozenset(
    {"schema_version", "run_id", "seq", "ts", "event_type", "lineage_id",
     "payload"}
)


def new_run_id() -> str:
    """A short, collision-resistant id for one pipeline run."""
    return os.urandom(6).hex()


@dataclass(frozen=True)
class Event:
    """One recorded pipeline occurrence."""

    event_type: str
    run_id: str
    seq: int
    ts: float
    payload: dict = field(default_factory=dict)
    lineage_id: str | None = None
    schema_version: int = SCHEMA_VERSION

    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "run_id": self.run_id,
            "seq": self.seq,
            "ts": self.ts,
            "event_type": self.event_type,
            "lineage_id": self.lineage_id,
            "payload": self.payload,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, record: dict) -> "Event":
        errors = validate_record(record)
        if errors:
            raise ValueError("; ".join(errors))
        return cls(
            event_type=record["event_type"],
            run_id=record["run_id"],
            seq=record["seq"],
            ts=record["ts"],
            payload=dict(record["payload"]),
            lineage_id=record.get("lineage_id"),
            schema_version=record["schema_version"],
        )

    @classmethod
    def from_json(cls, line: str) -> "Event":
        return cls.from_dict(json.loads(line))


def validate_record(record: object) -> list[str]:
    """Schema-check one parsed JSONL record; returns human errors."""
    if not isinstance(record, dict):
        return ["record is not a JSON object"]
    errors: list[str] = []
    missing = _ENVELOPE_FIELDS - set(record)
    if missing:
        errors.append(f"missing envelope fields: {sorted(missing)}")
        return errors
    if record["schema_version"] != SCHEMA_VERSION:
        errors.append(
            f"schema_version {record['schema_version']!r} != "
            f"{SCHEMA_VERSION}"
        )
    event_type = record["event_type"]
    required = EVENT_TYPES.get(event_type)
    if required is None:
        errors.append(f"unknown event_type {event_type!r}")
        return errors
    payload = record["payload"]
    if not isinstance(payload, dict):
        errors.append("payload is not a JSON object")
        return errors
    missing_payload = required - set(payload)
    if missing_payload:
        errors.append(
            f"{event_type}: missing payload fields "
            f"{sorted(missing_payload)}"
        )
    return errors


def validate_jsonl(
    lines: Iterable[str],
) -> list[tuple[int, str]]:
    """Validate an event log's JSONL lines; returns (lineno, error)."""
    problems: list[tuple[int, str]] = []
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append((lineno, f"invalid JSON: {exc}"))
            continue
        for error in validate_record(record):
            problems.append((lineno, error))
    return problems


def read_events(path: str | Path) -> list[Event]:
    """Load a JSONL event log written by :class:`EventLog`."""
    events: list[Event] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(Event.from_json(line))
    return events


class EventLog:
    """Bounded in-memory event ring with an optional JSONL file sink.

    The ring (``capacity`` most recent events) keeps memory bounded on
    long runs; the file sink, when given, receives *every* event as one
    JSON line, so the durable record is complete even after the ring
    wraps.
    """

    def __init__(
        self,
        capacity: int = 16_384,
        sink: str | Path | IO[str] | None = None,
        run_id: str | None = None,
        clock: Clock | None = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.run_id = run_id or new_run_id()
        self.clock = clock or MonotonicClock()
        self._ring: deque[Event] = deque(maxlen=capacity)
        self._seq = 0
        self._counts: Counter[str] = Counter()
        self._owns_sink = False
        self._sink: IO[str] | None = None
        if sink is not None:
            if isinstance(sink, (str, Path)):
                self._sink = Path(sink).open("w", encoding="utf-8")
                self._owns_sink = True
            else:
                self._sink = sink

    # -- recording ------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return True

    def emit(
        self,
        event_type: str,
        lineage_id: str | None = None,
        **payload,
    ) -> Event:
        """Record one event; payload must satisfy the type's schema."""
        required = EVENT_TYPES.get(event_type)
        if required is None:
            raise ValueError(f"unknown event_type {event_type!r}")
        missing = required - set(payload)
        if missing:
            raise ValueError(
                f"{event_type}: missing payload fields {sorted(missing)}"
            )
        event = Event(
            event_type=event_type,
            run_id=self.run_id,
            seq=self._seq,
            ts=self.clock.now(),
            payload=payload,
            lineage_id=lineage_id,
        )
        self._seq += 1
        self._counts[event_type] += 1
        self._ring.append(event)
        if self._sink is not None:
            self._sink.write(event.to_json() + "\n")
        return event

    # -- reading --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ring)

    def __bool__(self) -> bool:
        # An empty recorder is still a recorder: without this, the
        # ``event_log or NULL_EVENT_LOG`` wiring idiom would silently
        # discard a fresh (len 0, hence falsy) log.
        return True

    def __iter__(self) -> Iterator[Event]:
        return iter(self._ring)

    @property
    def total_emitted(self) -> int:
        """Events emitted over the log's lifetime (ring may hold fewer)."""
        return self._seq

    def events(self, event_type: str | None = None) -> list[Event]:
        """Ring contents, optionally filtered by type."""
        if event_type is None:
            return list(self._ring)
        return [e for e in self._ring if e.event_type == event_type]

    def counts(self) -> dict[str, int]:
        """Lifetime per-type emission counts (survives ring wrap)."""
        return dict(sorted(self._counts.items()))

    # -- sink lifecycle -------------------------------------------------------

    def flush(self) -> None:
        if self._sink is not None:
            self._sink.flush()

    def close(self) -> None:
        if self._sink is not None:
            self._sink.flush()
            if self._owns_sink:
                self._sink.close()
            self._sink = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class NullEventLog:
    """Zero-overhead stand-in: ``emit`` is a single no-op call."""

    __slots__ = ()
    run_id = ""

    @property
    def enabled(self) -> bool:
        return False

    def emit(self, event_type: str, lineage_id: str | None = None,
             **payload) -> None:
        return None

    def events(self, event_type: str | None = None) -> list:
        return []

    def counts(self) -> dict[str, int]:
        return {}

    @property
    def total_emitted(self) -> int:
        return 0

    def __len__(self) -> int:
        return 0

    def __bool__(self) -> bool:
        return True  # same truthiness contract as EventLog

    def __iter__(self):
        return iter(())

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


#: Shared no-op event log; the default for every instrumented code path.
NULL_EVENT_LOG = NullEventLog()

#: Either the real event log or the null stand-in (duck-typed).
AnyEventLog = EventLog | NullEventLog
