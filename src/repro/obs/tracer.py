"""Tracing spans over the pipeline's stages.

A :class:`Tracer` records a tree of named :class:`Span` objects::

    tracer = Tracer()
    with tracer.span("gather"):
        with tracer.span("gather.crawl") as span:
            span.add_items(n_pages)
    report = StageReport.from_tracer(tracer)

Instrumented library code takes an optional ``tracer`` argument that
defaults to the module-level :data:`NULL_TRACER` — a no-op object whose
``span`` returns a single preallocated context manager, so the
uninstrumented hot path pays one attribute lookup and nothing else.
"""

from __future__ import annotations

from contextlib import AbstractContextManager
from dataclasses import dataclass, field

from repro.obs.clock import Clock, MonotonicClock
from repro.obs.metrics import Registry


@dataclass
class Span:
    """One timed stage, possibly containing sub-stages.

    ``items`` counts the units of work the stage processed (pages,
    documents, snippets ...) so the report can derive throughput.
    """

    name: str
    started: float
    ended: float | None = None
    items: int = 0
    children: list["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Wall seconds; 0.0 while the span is still open."""
        if self.ended is None:
            return 0.0
        return self.ended - self.started

    @property
    def throughput(self) -> float:
        """Items per second (0.0 when duration or items is zero)."""
        if self.items == 0 or self.duration <= 0:
            return 0.0
        return self.items / self.duration

    def add_items(self, n: int = 1) -> None:
        self.items += n

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seconds": self.duration,
            "items": self.items,
            "throughput": self.throughput,
            "children": [child.to_dict() for child in self.children],
        }


class _SpanContext(AbstractContextManager):
    """Context manager that closes a span on exit (even on error)."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._close(self._span)
        return None


class Tracer:
    """Collects a forest of spans plus counters and histograms."""

    def __init__(
        self,
        clock: Clock | None = None,
        registry: Registry | None = None,
    ) -> None:
        self.clock = clock or MonotonicClock()
        self.registry = registry or Registry()
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    @property
    def enabled(self) -> bool:
        return True

    @property
    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    # -- spans ----------------------------------------------------------------

    def span(self, name: str) -> _SpanContext:
        """Open a nested span; use as ``with tracer.span("stage"):``."""
        span = Span(name=name, started=self.clock.now())
        parent = self.current
        if parent is not None:
            parent.children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return _SpanContext(self, span)

    def _close(self, span: Span) -> None:
        span.ended = self.clock.now()
        # Unwind to (and including) the span being closed; tolerates
        # exotic exits like generators closing spans out of order.
        while self._stack:
            if self._stack.pop() is span:
                break

    def add_items(self, n: int = 1) -> None:
        """Attribute ``n`` items of work to the innermost open span."""
        current = self.current
        if current is not None:
            current.add_items(n)

    # -- metrics --------------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        self.registry.count(name, n)

    def observe(self, name: str, value: float) -> None:
        self.registry.observe(name, value)

    def timed(self, name: str) -> "_TimedContext":
        """Time a block into histogram ``name`` without creating a span.

        For operations that repeat many times per run (individual
        searches, scoring batches) where a span per call would drown
        the stage tree; the histogram keeps the distribution instead.
        """
        return _TimedContext(self, name)


class _TimedContext(AbstractContextManager):
    """Observes the block's duration into a histogram on exit."""

    __slots__ = ("_tracer", "_name", "_started")

    def __init__(self, tracer: Tracer, name: str) -> None:
        self._tracer = tracer
        self._name = name
        self._started = 0.0

    def __enter__(self) -> None:
        self._started = self._tracer.clock.now()
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer.observe(
            self._name, self._tracer.clock.now() - self._started
        )
        return None


class _NullSpan:
    """Inert span handed out by the null tracer."""

    __slots__ = ()
    name = ""
    items = 0
    children: list = []

    @property
    def duration(self) -> float:
        return 0.0

    def add_items(self, n: int = 1) -> None:
        pass


class _NullSpanContext(AbstractContextManager):
    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


class NullTracer:
    """Zero-overhead stand-in: every operation is a no-op.

    ``span`` returns one preallocated context manager, so instrumented
    code carries no measurable cost when tracing is off.  All
    instrumented entry points default to the shared :data:`NULL_TRACER`.
    """

    __slots__ = ()

    @property
    def enabled(self) -> bool:
        return False

    @property
    def current(self) -> None:
        return None

    @property
    def roots(self) -> list:
        return []

    def span(self, name: str) -> _NullSpanContext:
        return _NULL_SPAN_CONTEXT

    def timed(self, name: str) -> _NullSpanContext:
        return _NULL_SPAN_CONTEXT

    def add_items(self, n: int = 1) -> None:
        pass

    def count(self, name: str, n: int = 1) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass


_NULL_SPAN = _NullSpan()
_NULL_SPAN_CONTEXT = _NullSpanContext()

#: Shared no-op tracer; the default for every instrumented code path.
NULL_TRACER = NullTracer()

#: Either the real tracer or the null stand-in (duck-typed interface).
AnyTracer = Tracer | NullTracer
