"""Component health rollup: ok / degraded / critical, with reasons.

The :class:`HealthMonitor` composes two signal sources into one
answer to "is the system healthy right now?":

* **probes** — callables registered per component (ingest, stream,
  serve, fetch, drift) that inspect live objects (breaker states,
  dead-letter queues, queue depths) and return a
  :class:`ComponentHealth`;
* **SLOs** — every :class:`~repro.obs.slo.SloStatus` from an attached
  :class:`~repro.obs.slo.SloEngine` maps onto its spec's component: a
  paging breach forces the component ``critical``, a single-window
  warn forces at least ``degraded``.

The overall status is the worst component status; transitions emit a
``health_transition`` flight-recorder event so a soak run's log shows
exactly when (and why) the system left ``ok``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.obs.clock import Clock, MonotonicClock
from repro.obs.events import NULL_EVENT_LOG, AnyEventLog
from repro.obs.slo import SloEngine, SloStatus

STATUS_OK = "ok"
STATUS_DEGRADED = "degraded"
STATUS_CRITICAL = "critical"

#: Severity order for rollups (index = badness).
STATUS_ORDER = (STATUS_OK, STATUS_DEGRADED, STATUS_CRITICAL)

_RANK = {status: rank for rank, status in enumerate(STATUS_ORDER)}

#: ``repro health`` exit codes by overall status.
EXIT_CODES = {STATUS_OK: 0, STATUS_DEGRADED: 1, STATUS_CRITICAL: 2}


def worst(*statuses: str) -> str:
    """The most severe of the given statuses (``ok`` when none)."""
    rank = max((_RANK[status] for status in statuses), default=0)
    return STATUS_ORDER[rank]


@dataclass(frozen=True)
class ComponentHealth:
    """One component's verdict with a human-readable reason."""

    component: str
    status: str
    reason: str = ""
    details: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.status not in _RANK:
            raise ValueError(
                f"unknown status {self.status!r}; "
                f"expected one of {STATUS_ORDER}"
            )

    def to_dict(self) -> dict:
        return {
            "component": self.component,
            "status": self.status,
            "reason": self.reason,
            "details": dict(self.details),
        }


@dataclass(frozen=True)
class HealthReport:
    """The full rollup: overall status, components, SLO statuses."""

    status: str
    components: tuple[ComponentHealth, ...]
    slos: tuple[SloStatus, ...]
    generated_at: float

    @property
    def reasons(self) -> list[str]:
        """Reasons from every non-ok component, worst first."""
        ranked = sorted(
            (c for c in self.components if c.status != STATUS_OK),
            key=lambda c: -_RANK[c.status],
        )
        return [f"{c.component}: {c.reason}" for c in ranked if c.reason]

    def to_dict(self) -> dict:
        return {
            "status": self.status,
            "generated_at": self.generated_at,
            "components": [c.to_dict() for c in self.components],
            "slos": [status.to_dict() for status in self.slos],
        }

    def render(self) -> str:
        """Multi-line text rollup for the CLI."""
        lines = [f"overall: {self.status}"]
        if self.components:
            lines.append("components:")
            width = max(len(c.component) for c in self.components)
            for c in self.components:
                line = f"  {c.component:<{width}}  {c.status}"
                if c.reason:
                    line += f"  ({c.reason})"
                lines.append(line)
        if self.slos:
            lines.append("slos:")
            width = max(len(s.name) for s in self.slos)
            for s in self.slos:
                lines.append(
                    f"  {s.name:<{width}}  {s.severity:<4} "
                    f" burn fast={s.burn_fast:.2f} slow={s.burn_slow:.2f} "
                    f" budget={s.budget_remaining * 100:.0f}%"
                )
        return "\n".join(lines)


class HealthMonitor:
    """Rolls probes + SLO statuses into one ok/degraded/critical."""

    def __init__(
        self,
        slo_engine: SloEngine | None = None,
        event_log: AnyEventLog | None = None,
        clock: Clock | None = None,
    ) -> None:
        self.slo_engine = slo_engine
        self.event_log = event_log or NULL_EVENT_LOG
        self.clock = clock or MonotonicClock()
        self._probes: dict[str, Callable[[], ComponentHealth]] = {}
        self._last_status: str | None = None

    def register(
        self, component: str, probe: Callable[[], ComponentHealth]
    ) -> None:
        """Attach a probe; later registrations replace earlier ones."""
        self._probes[component] = probe

    @property
    def components(self) -> list[str]:
        return list(self._probes)

    def rollup(self, now: float | None = None) -> HealthReport:
        """Evaluate probes + SLOs; emit ``health_transition`` on change."""
        if now is None:
            now = self.clock.now()
        verdicts: dict[str, ComponentHealth] = {}
        for component, probe in self._probes.items():
            try:
                verdicts[component] = probe()
            except Exception as exc:  # a broken probe IS a health signal
                verdicts[component] = ComponentHealth(
                    component=component,
                    status=STATUS_CRITICAL,
                    reason=f"probe failed: {exc}",
                )
        statuses: tuple[SloStatus, ...] = ()
        if self.slo_engine is not None:
            statuses = tuple(self.slo_engine.evaluate(now=now))
            for status in statuses:
                component = status.spec.component
                if not component or status.severity == "ok":
                    continue
                slo_status = (
                    STATUS_CRITICAL
                    if status.severity == "page"
                    else STATUS_DEGRADED
                )
                reason = (
                    f"slo {status.name} {status.severity} "
                    f"(burn fast={status.burn_fast:.2f} "
                    f"slow={status.burn_slow:.2f})"
                )
                existing = verdicts.get(component)
                if existing is None or _RANK[slo_status] > _RANK[
                    existing.status
                ]:
                    verdicts[component] = ComponentHealth(
                        component=component,
                        status=slo_status,
                        reason=reason,
                        details=existing.details if existing else {},
                    )
        components = tuple(verdicts.values())
        overall = worst(*(c.status for c in components))
        report = HealthReport(
            status=overall,
            components=components,
            slos=statuses,
            generated_at=now,
        )
        if self._last_status is not None and overall != self._last_status:
            self.event_log.emit(
                "health_transition",
                status=overall,
                previous=self._last_status,
                reasons=report.reasons,
            )
        self._last_status = overall
        return report


# -- probe helpers -------------------------------------------------------------
#
# Each returns a *callable* suitable for ``HealthMonitor.register``,
# closing over the live object.  Probes report structural trouble
# (open breakers, deep queues); sustained trouble is the SLO engine's
# job and overrides these verdicts upward.


def fetcher_probe(fetcher) -> Callable[[], ComponentHealth]:
    """Breaker states + dead-letter volume for a ResilientFetcher."""

    def probe() -> ComponentHealth:
        states = fetcher.breaker_states()
        open_hosts = sorted(
            host for host, state in states.items() if state == "open"
        )
        dead = len(fetcher.dead_letters)
        details = {
            "open_breakers": open_hosts,
            "dead_letters": dead,
            "hosts": len(states),
        }
        if open_hosts:
            return ComponentHealth(
                "fetch", STATUS_DEGRADED,
                f"{len(open_hosts)} breaker(s) open: "
                + ", ".join(open_hosts[:3]),
                details,
            )
        return ComponentHealth("fetch", STATUS_OK, "", details)

    return probe


def portal_probe(portal) -> Callable[[], ComponentHealth]:
    """Snapshot emptiness + queue pressure for an AlertPortal."""

    def probe() -> ComponentHealth:
        stats = portal.stats()
        details = {
            "queue_depth": stats.get("queue_depth", 0),
            "generation": stats.get("generation"),
            "n_docs": stats.get("n_docs", 0),
            "cache_hit_rate": stats.get("cache_hit_rate", 0.0),
        }
        if not stats.get("n_docs"):
            return ComponentHealth(
                "serve", STATUS_CRITICAL, "empty index snapshot", details
            )
        return ComponentHealth("serve", STATUS_OK, "", details)

    return probe


def processor_probe(processor) -> Callable[[], ComponentHealth]:
    """Late-arrival pressure for a StreamProcessor."""

    def probe() -> ComponentHealth:
        late = len(getattr(processor, "late_arrivals", ()))
        details = {
            "late_arrivals": late,
            "cycle": getattr(processor, "cycle", None),
        }
        if late:
            return ComponentHealth(
                "stream", STATUS_DEGRADED,
                f"{late} late arrival(s) side-channeled", details,
            )
        return ComponentHealth("stream", STATUS_OK, "", details)

    return probe


def gather_probe(report) -> Callable[[], ComponentHealth]:
    """Ingest verdict from a finished GatherReport."""

    def probe() -> ComponentHealth:
        stored = getattr(report, "documents_stored", 0)
        failed = getattr(report, "pages_failed", 0)
        dead = getattr(report, "dead_letters", 0)
        details = {
            "documents_stored": stored,
            "pages_failed": failed,
            "dead_letters": dead,
        }
        if not stored:
            return ComponentHealth(
                "ingest", STATUS_CRITICAL, "no documents stored", details
            )
        if failed or dead:
            return ComponentHealth(
                "ingest", STATUS_DEGRADED,
                f"{failed} failed page(s), {dead} dead-letter(s)",
                details,
            )
        return ComponentHealth("ingest", STATUS_OK, "", details)

    return probe


def drift_probe(monitors) -> Callable[[], ComponentHealth]:
    """Any breached drift monitor degrades the model component."""

    def probe() -> ComponentHealth:
        breached = [
            name for name, monitor in sorted(monitors.items())
            if getattr(monitor, "breached", False)
        ]
        details = {"monitors": len(monitors), "breached": breached}
        if breached:
            return ComponentHealth(
                "drift", STATUS_DEGRADED,
                "drift detected: " + ", ".join(breached), details,
            )
        return ComponentHealth("drift", STATUS_OK, "", details)

    return probe
