"""Counters and histograms: the pipeline's numeric vital signs.

A :class:`Registry` owns named :class:`Counter` and :class:`Histogram`
instances.  Instrumented code increments/observes by name through the
tracer; reporting code snapshots the registry.  Everything is plain
in-process Python — this is a measurement substrate for a single
pipeline run, not a metrics *server*.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.obs.timeseries import QuantileSketch

#: Observations a histogram stores exactly before spilling into a
#: constant-memory quantile sketch.  Below this, behavior (including
#: the raw ``values`` list) is identical to the original raw-storage
#: implementation; at or above it, memory stops growing.
HISTOGRAM_EXACT_LIMIT = 4096

#: Quantiles the spilled sketch tracks — must cover every percentile
#: ``summary()`` reports so post-spill summaries stay marker-exact.
_SKETCH_QUANTILES = (0.5, 0.9, 0.95, 0.99)


@dataclass
class Counter:
    """A monotonically increasing named count."""

    name: str
    value: int = 0

    def add(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up; use a histogram "
                             "for signed observations")
        self.value += n


class Histogram:
    """Bounded observation store; summary stats computed on demand.

    Raw storage keeps the implementation exact (no bucket-boundary
    error) at the scale a single pipeline run produces — but a soak run
    observes millions of latencies, so storage is bounded: below
    ``max_exact`` observations the raw ``values`` list is kept and every
    statistic is exact; at the limit the values spill into a
    constant-memory :class:`~repro.obs.timeseries.QuantileSketch` and
    the list is emptied.  Count/total/min/max stay exact forever;
    percentiles become P² marker estimates after the spill.
    """

    __slots__ = ("name", "values", "max_exact", "_sketch")

    def __init__(
        self,
        name: str,
        values: list[float] | None = None,
        max_exact: int = HISTOGRAM_EXACT_LIMIT,
    ) -> None:
        self.name = name
        self.values: list[float] = list(values) if values else []
        self.max_exact = max_exact
        self._sketch: QuantileSketch | None = None

    def observe(self, value: float) -> None:
        if self._sketch is not None:
            self._sketch.observe(float(value))
            return
        self.values.append(float(value))
        if len(self.values) >= self.max_exact:
            self._spill()

    def _spill(self) -> None:
        """Hand the raw values to a bounded sketch and stop growing."""
        sketch = QuantileSketch(
            quantiles=_SKETCH_QUANTILES,
            exact_threshold=0,  # already past exact territory
        )
        for value in self.values:
            sketch.observe(value)
        self._sketch = sketch
        self.values.clear()

    @property
    def exact(self) -> bool:
        """Whether statistics still come from raw values."""
        return self._sketch is None

    @property
    def count(self) -> int:
        if self._sketch is not None:
            return self._sketch.count
        return len(self.values)

    @property
    def total(self) -> float:
        if self._sketch is not None:
            return self._sketch.total
        return sum(self.values)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def minimum(self) -> float:
        if self._sketch is not None:
            return self._sketch.minimum
        return min(self.values) if self.values else 0.0

    @property
    def maximum(self) -> float:
        if self._sketch is not None:
            return self._sketch.maximum
        return max(self.values) if self.values else 0.0

    def percentile(self, q: float) -> float:
        """Percentile of the observations so far (``q`` in [0, 100]).

        Exact nearest-rank below ``max_exact`` observations; a P²
        estimate afterwards (``q`` 0/100 stay the exact min/max).
        """
        if not 0 <= q <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if self._sketch is not None:
            if q <= 0:
                return self._sketch.minimum
            if q >= 100:
                return self._sketch.maximum
            return self._sketch.quantile(q / 100.0)
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        rank = max(int(math.ceil(q / 100 * len(ordered))) - 1, 0)
        return ordered[rank]

    def summary(self) -> dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
        }


class Registry:
    """Named counters and histograms, created on first use."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- access ---------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def histogram(self, name: str) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name)
        return histogram

    # -- recording ------------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        self.counter(name).add(n)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # -- reporting ------------------------------------------------------------

    @property
    def counters(self) -> dict[str, int]:
        return {name: c.value for name, c in sorted(self._counters.items())}

    @property
    def histograms(self) -> dict[str, Histogram]:
        return dict(sorted(self._histograms.items()))

    def snapshot(self) -> dict:
        """JSON-ready view of everything recorded so far."""
        return {
            "counters": self.counters,
            "histograms": {
                name: histogram.summary()
                for name, histogram in self.histograms.items()
            },
        }
