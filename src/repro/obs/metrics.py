"""Counters and histograms: the pipeline's numeric vital signs.

A :class:`Registry` owns named :class:`Counter` and :class:`Histogram`
instances.  Instrumented code increments/observes by name through the
tracer; reporting code snapshots the registry.  Everything is plain
in-process Python — this is a measurement substrate for a single
pipeline run, not a metrics *server*.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class Counter:
    """A monotonically increasing named count."""

    name: str
    value: int = 0

    def add(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up; use a histogram "
                             "for signed observations")
        self.value += n


@dataclass
class Histogram:
    """Stores raw observations; summary stats are computed on demand.

    Raw storage keeps the implementation exact (no bucket-boundary
    error) at the scale this pipeline runs at — observations per run
    number in the thousands, not billions.
    """

    name: str
    values: list[float] = field(default_factory=list)

    def observe(self, value: float) -> None:
        self.values.append(float(value))

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return sum(self.values)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.values else 0.0

    @property
    def minimum(self) -> float:
        return min(self.values) if self.values else 0.0

    @property
    def maximum(self) -> float:
        return max(self.values) if self.values else 0.0

    def percentile(self, q: float) -> float:
        """Exact percentile (nearest-rank) of the observations so far."""
        if not 0 <= q <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        rank = max(int(math.ceil(q / 100 * len(ordered))) - 1, 0)
        return ordered[rank]

    def summary(self) -> dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
        }


class Registry:
    """Named counters and histograms, created on first use."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- access ---------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def histogram(self, name: str) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name)
        return histogram

    # -- recording ------------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        self.counter(name).add(n)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # -- reporting ------------------------------------------------------------

    @property
    def counters(self) -> dict[str, int]:
        return {name: c.value for name, c in sorted(self._counters.items())}

    @property
    def histograms(self) -> dict[str, Histogram]:
        return dict(sorted(self._histograms.items()))

    def snapshot(self) -> dict:
        """JSON-ready view of everything recorded so far."""
        return {
            "counters": self.counters,
            "histograms": {
                name: histogram.summary()
                for name, histogram in self.histograms.items()
            },
        }
