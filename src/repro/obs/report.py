"""Stage reports: render a tracer's span tree for humans and machines.

The human rendering is a per-stage tree of wall-time, item counts, and
throughput::

    stage                              wall s      items    items/s
    gather                              0.412       1500     3640.8
      gather.crawl                      0.301       1500     4983.4
      gather.index                      0.098       1342    13693.9

``to_dict``/``to_json`` emit the same data (plus the registry's
counters and histograms) for ``repro trace`` and downstream tooling.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.obs.tracer import Span, Tracer

_HEADER = ("stage", "wall s", "items", "items/s")


def _format_row(
    name: str, span: Span, name_width: int
) -> str:
    items = str(span.items) if span.items else "-"
    throughput = (
        f"{span.throughput:.1f}" if span.throughput > 0 else "-"
    )
    return (
        f"{name:<{name_width}}  {span.duration:>9.3f}  "
        f"{items:>9}  {throughput:>10}"
    )


def _walk(spans: list[Span], depth: int = 0):
    for span in spans:
        yield depth, span
        yield from _walk(span.children, depth + 1)


@dataclass
class StageReport:
    """A finished run's span forest plus its metric registry snapshot."""

    spans: list[Span]
    counters: dict[str, int]
    histograms: dict[str, dict[str, float]]

    @classmethod
    def from_tracer(cls, tracer: Tracer) -> "StageReport":
        snapshot = tracer.registry.snapshot()
        return cls(
            spans=list(tracer.roots),
            counters=snapshot["counters"],
            histograms=snapshot["histograms"],
        )

    # -- machine-readable -----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "spans": [span.to_dict() for span in self.spans],
            "counters": self.counters,
            "histograms": self.histograms,
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    # -- human-readable -------------------------------------------------------

    def render(self, include_counters: bool = True) -> str:
        rows = list(_walk(self.spans))
        if not rows:
            return "(no spans recorded)"
        name_width = max(
            len(_HEADER[0]),
            *(len("  " * depth + span.name) for depth, span in rows),
        )
        lines = [
            f"{_HEADER[0]:<{name_width}}  {_HEADER[1]:>9}  "
            f"{_HEADER[2]:>9}  {_HEADER[3]:>10}"
        ]
        for depth, span in rows:
            lines.append(
                _format_row("  " * depth + span.name, span, name_width)
            )
        if include_counters and self.counters:
            lines.append("")
            counter_width = max(len(name) for name in self.counters)
            for name, value in self.counters.items():
                lines.append(f"{name:<{counter_width}}  {value}")
        return "\n".join(lines)
