"""Clock abstraction: monotonic wall-time, swappable for tests.

Every timing in :mod:`repro.obs` flows through a :class:`Clock` so that
tests can substitute a :class:`FakeClock` and assert *exact* durations —
no ``time.sleep``, no tolerance windows, no flakiness.  Production code
uses :class:`MonotonicClock`, which wraps :func:`time.perf_counter` (a
monotonic, high-resolution counter immune to wall-clock adjustments).
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable


@runtime_checkable
class Clock(Protocol):
    """Anything with a monotonic ``now() -> float`` (seconds)."""

    def now(self) -> float:  # pragma: no cover - protocol
        ...


class MonotonicClock:
    """The real thing: seconds from :func:`time.perf_counter`."""

    __slots__ = ()

    def now(self) -> float:
        return time.perf_counter()


class FakeClock:
    """A hand-cranked clock for deterministic timing tests.

    Time only moves when :meth:`advance` (or ``tick``) is called, so a
    test controls exactly how long every span "takes"::

        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("stage"):
            clock.advance(2.5)
        assert tracer.roots[0].duration == 2.5
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        """Move time forward; negative steps are rejected (monotonic)."""
        if seconds < 0:
            raise ValueError("a monotonic clock cannot move backwards")
        self._now += seconds

    tick = advance
