"""Pipeline observability: tracing spans, counters, stage reports.

The measurement substrate for the gather -> train -> extract pipeline.
Instrumented entry points (crawler, gatherer, search engine, training
generator, classifiers, :class:`~repro.core.etap.Etap`, CLI) accept an
optional :class:`Tracer`; the default :data:`NULL_TRACER` makes the
instrumentation free when profiling is off.

    from repro.obs import Tracer, StageReport

    tracer = Tracer()
    etap = Etap.from_web(web, tracer=tracer)
    etap.gather(); etap.train(); etap.extract_trigger_events()
    print(StageReport.from_tracer(tracer).render())
"""

from repro.obs.clock import Clock, FakeClock, MonotonicClock
from repro.obs.metrics import Counter, Histogram, Registry
from repro.obs.report import StageReport
from repro.obs.tracer import (
    NULL_TRACER,
    AnyTracer,
    NullTracer,
    Span,
    Tracer,
)

__all__ = [
    "AnyTracer",
    "Clock",
    "MonotonicClock",
    "FakeClock",
    "Counter",
    "Histogram",
    "Registry",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "StageReport",
]
