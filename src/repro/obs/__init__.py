"""Pipeline observability: spans, counters, events, provenance, drift.

Two complementary layers share this package:

* the **measurement substrate** (PR 1) — :class:`Tracer` spans,
  :class:`Registry` counters/histograms, :class:`StageReport`;
* the **flight recorder** — :class:`EventLog` typed JSONL events,
  :class:`ProvenanceGraph` alert explanation, Prometheus text export,
  and :class:`DriftMonitor` train-vs-score checks.

Instrumented entry points (crawler, gatherer, search engine, training
generator, classifiers, :class:`~repro.core.etap.Etap`, alert service,
CLI) accept an optional :class:`Tracer` and/or :class:`EventLog`; the
defaults :data:`NULL_TRACER` and :data:`NULL_EVENT_LOG` make the
instrumentation free when it is off.

    from repro.obs import EventLog, ProvenanceGraph, Tracer

    log = EventLog(sink="events.jsonl")
    etap = Etap.from_web(web, event_log=log)
    etap.gather(); etap.train()
    ...
    graph = ProvenanceGraph.from_events(log.events())
    print(graph.explain(alert_id).render())
"""

from repro.obs.clock import Clock, FakeClock, MonotonicClock
from repro.obs.drift import (
    DriftBaseline,
    DriftMonitor,
    DriftReport,
    DriftThresholds,
)
from repro.obs.events import (
    EVENT_TYPES,
    NULL_EVENT_LOG,
    SCHEMA_VERSION,
    AnyEventLog,
    Event,
    EventLog,
    NullEventLog,
    read_events,
    validate_jsonl,
    validate_record,
)
from repro.obs.export import (
    derive_gauges,
    parse_prometheus_text,
    prometheus_text,
    slo_gauges,
    telemetry_gauges,
)
from repro.obs.health import (
    EXIT_CODES,
    STATUS_CRITICAL,
    STATUS_DEGRADED,
    STATUS_OK,
    ComponentHealth,
    HealthMonitor,
    HealthReport,
    drift_probe,
    fetcher_probe,
    gather_probe,
    portal_probe,
    processor_probe,
)
from repro.obs.metrics import (
    HISTOGRAM_EXACT_LIMIT,
    Counter,
    Histogram,
    Registry,
)
from repro.obs.provenance import ProvenanceChain, ProvenanceGraph
from repro.obs.report import StageReport
from repro.obs.slo import (
    SloEngine,
    SloSpec,
    SloStatus,
    default_slos,
    load_slo_config,
    parse_slo_config,
)
from repro.obs.timeseries import (
    NULL_TELEMETRY,
    AnyTelemetry,
    NullTelemetry,
    P2Quantile,
    QuantileSketch,
    Telemetry,
    TimeSeries,
    WindowAggregate,
)
from repro.obs.tracer import (
    NULL_TRACER,
    AnyTracer,
    NullTracer,
    Span,
    Tracer,
)

__all__ = [
    "AnyTracer",
    "Clock",
    "MonotonicClock",
    "FakeClock",
    "Counter",
    "Histogram",
    "Registry",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "StageReport",
    "EVENT_TYPES",
    "SCHEMA_VERSION",
    "Event",
    "EventLog",
    "NullEventLog",
    "NULL_EVENT_LOG",
    "AnyEventLog",
    "read_events",
    "validate_jsonl",
    "validate_record",
    "ProvenanceChain",
    "ProvenanceGraph",
    "prometheus_text",
    "parse_prometheus_text",
    "derive_gauges",
    "telemetry_gauges",
    "slo_gauges",
    "DriftBaseline",
    "DriftMonitor",
    "DriftReport",
    "DriftThresholds",
    "TimeSeries",
    "WindowAggregate",
    "P2Quantile",
    "QuantileSketch",
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "AnyTelemetry",
    "HISTOGRAM_EXACT_LIMIT",
    "SloSpec",
    "SloStatus",
    "SloEngine",
    "default_slos",
    "load_slo_config",
    "parse_slo_config",
    "ComponentHealth",
    "HealthMonitor",
    "HealthReport",
    "STATUS_OK",
    "STATUS_DEGRADED",
    "STATUS_CRITICAL",
    "EXIT_CODES",
    "fetcher_probe",
    "portal_probe",
    "processor_probe",
    "gather_probe",
    "drift_probe",
]
