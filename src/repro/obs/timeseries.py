"""Windowed time-series telemetry: fixed-memory rates and quantiles.

One-shot counters answer "how many, ever"; a long-running deployment
needs "how many, *lately*".  This module is that substrate:

* :class:`TimeSeries` — a fixed-memory ring of per-interval buckets
  (count, sum, min, max).  Recording is O(1); windowed queries
  (``rate``, ``window``) aggregate only the buckets whose interval
  falls inside the asked-for window, so stale buckets left behind by
  clock jumps are never counted.  Memory never grows, no matter how
  long the soak.
* :class:`P2Quantile` / :class:`QuantileSketch` — the P² streaming
  quantile algorithm (Jain & Chlamtac, 1985): five markers per tracked
  quantile, updated per observation, constant memory.  Small streams
  stay exact (a bounded buffer answers nearest-rank until the spill
  threshold), so toy runs and tests see the same numbers a raw list
  would give.
* :class:`Telemetry` — the hub: named series and sketches created on
  first use, one shared :class:`~repro.obs.clock.Clock`.  Instrumented
  code takes an optional ``telemetry`` that defaults to
  :data:`NULL_TELEMETRY`; as with the null tracer and null event log,
  the telemetry-off path is a single no-op method call (guarded by
  ``enabled`` at busier call sites).

The SLO engine (:mod:`repro.obs.slo`) and the health monitor
(:mod:`repro.obs.health`) read exclusively through this layer.
"""

from __future__ import annotations

import math

from repro.obs.clock import Clock, MonotonicClock

#: Quantiles every sketch tracks by default — the serving/streaming
#: dashboards and the SLO engine read p50/p90/p95/p99.
DEFAULT_QUANTILES = (0.5, 0.9, 0.95, 0.99)

#: Observations buffered exactly before a sketch spills to P² markers.
DEFAULT_EXACT_THRESHOLD = 128


def exact_quantile(ordered: list[float], q: float) -> float:
    """Nearest-rank quantile of an ascending list (``0 <= q <= 1``)."""
    if not ordered:
        return 0.0
    rank = max(int(math.ceil(q * len(ordered))) - 1, 0)
    return ordered[min(rank, len(ordered) - 1)]


class P2Quantile:
    """One streaming quantile via the P² algorithm — constant memory.

    Five markers track (min, q/2, q, (1+q)/2, max); each observation
    shifts marker positions and parabolically adjusts heights.  Until
    five observations arrive the estimate is exact.
    """

    __slots__ = ("q", "_initial", "_heights", "_positions", "_desired",
                 "_increments")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        self.q = q
        self._initial: list[float] | None = []
        self._heights: list[float] = []
        self._positions: list[int] = []
        self._desired: list[float] = []
        self._increments = (0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0)

    @property
    def initialized(self) -> bool:
        return self._initial is None

    def observe(self, value: float) -> None:
        value = float(value)
        if self._initial is not None:
            self._initial.append(value)
            if len(self._initial) == 5:
                self._initial.sort()
                self._heights = list(self._initial)
                self._positions = [1, 2, 3, 4, 5]
                self._desired = [1.0, 1.0 + 2.0 * self.q,
                                 1.0 + 4.0 * self.q, 3.0 + 2.0 * self.q,
                                 5.0]
                self._initial = None
            return

        heights = self._heights
        positions = self._positions
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            for i in range(1, 5):
                if value < heights[i]:
                    cell = i - 1
                    break
        for i in range(cell + 1, 5):
            positions[i] += 1
        for i in range(5):
            self._desired[i] += self._increments[i]

        for i in (1, 2, 3):
            drift = self._desired[i] - positions[i]
            if (drift >= 1.0 and positions[i + 1] - positions[i] > 1) or (
                drift <= -1.0 and positions[i - 1] - positions[i] < -1
            ):
                step = 1 if drift >= 0 else -1
                candidate = self._parabolic(i, step)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, step)
                positions[i] += step

    def _parabolic(self, i: int, step: int) -> float:
        h, n = self._heights, self._positions
        return h[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step)
            * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step)
            * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, step: int) -> float:
        h, n = self._heights, self._positions
        return h[i] + step * (h[i + step] - h[i]) / (n[i + step] - n[i])

    def value(self) -> float:
        """The current estimate (exact below five observations)."""
        if self._initial is not None:
            return exact_quantile(sorted(self._initial), self.q)
        return self._heights[2]


class QuantileSketch:
    """Bounded multi-quantile summary: exact small, P² large.

    Scalar aggregates (count, sum, min, max) are exact forever.  Raw
    values are buffered until ``exact_threshold`` so small streams
    answer nearest-rank exactly; past the threshold the buffer spills
    into one :class:`P2Quantile` per tracked quantile and memory stays
    constant from then on.  :meth:`quantile` answers tracked quantiles
    from their markers and interpolates other ranks through the
    monotone envelope ``(0, min) .. (q_i, marker_i) .. (1, max)``.
    """

    __slots__ = ("quantiles", "exact_threshold", "_exact", "_estimators",
                 "_count", "_total", "_min", "_max")

    def __init__(
        self,
        quantiles: tuple[float, ...] = DEFAULT_QUANTILES,
        exact_threshold: int = DEFAULT_EXACT_THRESHOLD,
    ) -> None:
        if not quantiles:
            raise ValueError("need at least one tracked quantile")
        if exact_threshold < 0:
            raise ValueError("exact_threshold must be >= 0")
        self.quantiles = tuple(sorted(float(q) for q in quantiles))
        for q in self.quantiles:
            if not 0.0 < q < 1.0:
                raise ValueError("quantiles must be in (0, 1)")
        self.exact_threshold = exact_threshold
        self._exact: list[float] | None = []
        self._estimators: dict[float, P2Quantile] = {}
        self._count = 0
        self._total = 0.0
        self._min = math.inf
        self._max = -math.inf

    # -- recording ------------------------------------------------------------

    def observe(self, value: float) -> None:
        value = float(value)
        self._count += 1
        self._total += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if self._exact is not None:
            self._exact.append(value)
            if len(self._exact) >= self.exact_threshold:
                self._spill()
        else:
            for estimator in self._estimators.values():
                estimator.observe(value)

    def _spill(self) -> None:
        """Trade the exact buffer for constant-memory P² markers."""
        buffered = self._exact
        self._exact = None
        self._estimators = {q: P2Quantile(q) for q in self.quantiles}
        for value in buffered:
            for estimator in self._estimators.values():
                estimator.observe(value)

    # -- reading --------------------------------------------------------------

    @property
    def exact(self) -> bool:
        """Whether quantiles are still answered from raw values."""
        return self._exact is not None

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._total

    @property
    def mean(self) -> float:
        return self._total / self._count if self._count else 0.0

    @property
    def minimum(self) -> float:
        return self._min if self._count else 0.0

    @property
    def maximum(self) -> float:
        return self._max if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate quantile ``q`` in (0, 1); 0.0 on an empty sketch."""
        if not 0.0 < q < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        if not self._count:
            return 0.0
        if self._exact is not None:
            return exact_quantile(sorted(self._exact), q)
        # Monotone envelope over the tracked markers: P² estimators for
        # different quantiles are independent, so enforce ordering with
        # a running max before clamping into the exact [min, max] span.
        points: list[tuple[float, float]] = [(0.0, self._min)]
        floor = self._min
        for tracked in self.quantiles:
            estimate = self._estimators[tracked].value()
            floor = max(floor, min(estimate, self._max))
            points.append((tracked, floor))
        points.append((1.0, self._max))
        for (q_lo, v_lo), (q_hi, v_hi) in zip(points, points[1:]):
            if q_lo <= q <= q_hi:
                if q_hi == q_lo:
                    return v_hi
                frac = (q - q_lo) / (q_hi - q_lo)
                return v_lo + frac * (v_hi - v_lo)
        return self._max  # pragma: no cover - envelope spans (0, 1)

    def summary(self) -> dict[str, float]:
        payload = {
            "count": self._count,
            "total": self._total,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
        }
        for q in self.quantiles:
            payload[f"p{q * 100:g}"] = self.quantile(q)
        return payload


class _Bucket:
    """One interval's aggregates; reused in place as the ring wraps."""

    __slots__ = ("index", "count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.reset(-1)

    def reset(self, index: int) -> None:
        self.index = index
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf


class WindowAggregate:
    """What one window of a :class:`TimeSeries` held."""

    __slots__ = ("seconds", "count", "total", "minimum", "maximum")

    def __init__(
        self,
        seconds: float,
        count: int = 0,
        total: float = 0.0,
        minimum: float = 0.0,
        maximum: float = 0.0,
    ) -> None:
        self.seconds = seconds
        self.count = count
        self.total = total
        self.minimum = minimum
        self.maximum = maximum

    @property
    def rate(self) -> float:
        """Recorded count per second of window."""
        if self.seconds <= 0:
            return 0.0
        return self.count / self.seconds

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict[str, float]:
        return {
            "seconds": self.seconds,
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "rate": self.rate,
            "mean": self.mean,
        }


class TimeSeries:
    """Fixed-memory ring of per-interval buckets over a Clock.

    ``interval`` seconds per bucket, ``n_buckets`` buckets: capacity is
    their product and memory never exceeds it.  A bucket is lazily
    reset when its slot is revisited in a *later* interval, and
    windowed reads check each bucket's interval index against the
    asked-for window — so a FakeClock jumping hours ahead instantly
    expires everything without any sweeper.
    """

    __slots__ = ("name", "interval", "clock", "_buckets")

    def __init__(
        self,
        name: str = "",
        interval: float = 1.0,
        n_buckets: int = 600,
        clock: Clock | None = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        if n_buckets < 1:
            raise ValueError("need at least one bucket")
        self.name = name
        self.interval = float(interval)
        self.clock = clock or MonotonicClock()
        self._buckets = [_Bucket() for _ in range(n_buckets)]

    @property
    def capacity_seconds(self) -> float:
        """The longest window this series can answer."""
        return self.interval * len(self._buckets)

    # -- recording ------------------------------------------------------------

    def record(
        self, value: float = 1.0, n: int = 1, now: float | None = None
    ) -> None:
        """Add ``n`` occurrences of ``value`` to the current bucket.

        ``record()`` counts an event; ``record(latency)`` additionally
        folds the value into the bucket's sum/min/max so windowed mean
        and max work for measurements.
        """
        if now is None:
            now = self.clock.now()
        index = int(now // self.interval)
        bucket = self._buckets[index % len(self._buckets)]
        if bucket.index != index:
            bucket.reset(index)
        bucket.count += n
        bucket.total += value * n
        if value < bucket.minimum:
            bucket.minimum = value
        if value > bucket.maximum:
            bucket.maximum = value

    # -- reading --------------------------------------------------------------

    def window(
        self, seconds: float, now: float | None = None
    ) -> WindowAggregate:
        """Aggregate the trailing window ending at ``now``.

        The window is the ``ceil(seconds / interval)`` most recent
        buckets (current partial bucket included), clamped to the
        ring's capacity; its effective duration — used by ``rate`` — is
        that bucket count times the interval, so rates stay exact under
        FakeClock arithmetic.
        """
        if seconds <= 0:
            raise ValueError("window must be positive")
        if now is None:
            now = self.clock.now()
        span = min(
            len(self._buckets),
            max(1, math.ceil(seconds / self.interval)),
        )
        current = int(now // self.interval)
        first = current - span + 1
        aggregate = WindowAggregate(seconds=span * self.interval)
        minimum = math.inf
        maximum = -math.inf
        for bucket in self._buckets:
            if first <= bucket.index <= current and bucket.count:
                aggregate.count += bucket.count
                aggregate.total += bucket.total
                if bucket.minimum < minimum:
                    minimum = bucket.minimum
                if bucket.maximum > maximum:
                    maximum = bucket.maximum
        if aggregate.count:
            aggregate.minimum = minimum
            aggregate.maximum = maximum
        return aggregate

    def rate(self, seconds: float, now: float | None = None) -> float:
        return self.window(seconds, now=now).rate


class Telemetry:
    """Named windowed series and quantile sketches, one shared clock.

    ``record(name, ...)`` feeds a :class:`TimeSeries` (rates, windowed
    sums); ``observe(name, value)`` feeds the same-named series *and* a
    :class:`QuantileSketch` (lifetime percentiles).  Both create the
    metric on first use, like :class:`~repro.obs.metrics.Registry`.
    """

    def __init__(
        self,
        clock: Clock | None = None,
        interval: float = 5.0,
        n_buckets: int = 720,
        quantiles: tuple[float, ...] = DEFAULT_QUANTILES,
        exact_threshold: int = DEFAULT_EXACT_THRESHOLD,
    ) -> None:
        self.clock = clock or MonotonicClock()
        self.interval = interval
        self.n_buckets = n_buckets
        self.quantiles = tuple(quantiles)
        self.exact_threshold = exact_threshold
        self._series: dict[str, TimeSeries] = {}
        self._sketches: dict[str, QuantileSketch] = {}

    @property
    def enabled(self) -> bool:
        return True

    def __bool__(self) -> bool:
        # Same truthiness contract as EventLog: a fresh hub must
        # survive the ``telemetry or NULL_TELEMETRY`` wiring idiom.
        return True

    # -- access ---------------------------------------------------------------

    def series(self, name: str) -> TimeSeries:
        series = self._series.get(name)
        if series is None:
            series = self._series[name] = TimeSeries(
                name,
                interval=self.interval,
                n_buckets=self.n_buckets,
                clock=self.clock,
            )
        return series

    def sketch(self, name: str) -> QuantileSketch:
        sketch = self._sketches.get(name)
        if sketch is None:
            sketch = self._sketches[name] = QuantileSketch(
                quantiles=self.quantiles,
                exact_threshold=self.exact_threshold,
            )
        return sketch

    @property
    def series_names(self) -> list[str]:
        return sorted(self._series)

    @property
    def sketch_names(self) -> list[str]:
        return sorted(self._sketches)

    # -- recording ------------------------------------------------------------

    def record(
        self, name: str, value: float = 1.0, n: int = 1,
        now: float | None = None,
    ) -> None:
        self.series(name).record(value, n=n, now=now)

    def observe(
        self, name: str, value: float, now: float | None = None
    ) -> None:
        self.series(name).record(value, now=now)
        self.sketch(name).observe(value)

    # -- reading --------------------------------------------------------------

    def window(
        self, name: str, seconds: float, now: float | None = None
    ) -> WindowAggregate:
        """Windowed aggregate; empty when the series never recorded."""
        series = self._series.get(name)
        if series is None:
            return WindowAggregate(seconds=seconds)
        return series.window(seconds, now=now)

    def rate(
        self, name: str, seconds: float, now: float | None = None
    ) -> float:
        return self.window(name, seconds, now=now).rate

    def quantile(self, name: str, q: float) -> float:
        sketch = self._sketches.get(name)
        if sketch is None:
            return 0.0
        return sketch.quantile(q)

    def snapshot(
        self, windows: tuple[float, ...] = (60.0, 300.0)
    ) -> dict:
        """JSON-ready view: windowed rates plus sketch summaries."""
        now = self.clock.now()
        return {
            "series": {
                name: {
                    f"{int(seconds)}s": series.window(
                        seconds, now=now
                    ).to_dict()
                    for seconds in windows
                }
                for name, series in sorted(self._series.items())
            },
            "sketches": {
                name: sketch.summary()
                for name, sketch in sorted(self._sketches.items())
            },
        }


class _NullSeries:
    """Inert series handed out by the null telemetry hub."""

    __slots__ = ()
    name = ""
    interval = 1.0
    capacity_seconds = 0.0

    def record(self, value: float = 1.0, n: int = 1,
               now: float | None = None) -> None:
        pass

    def window(self, seconds: float,
               now: float | None = None) -> WindowAggregate:
        return WindowAggregate(seconds=seconds)

    def rate(self, seconds: float, now: float | None = None) -> float:
        return 0.0


class _NullSketch:
    """Inert sketch handed out by the null telemetry hub."""

    __slots__ = ()
    quantiles: tuple[float, ...] = ()
    count = 0
    total = 0.0
    mean = 0.0
    minimum = 0.0
    maximum = 0.0
    exact = True

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    def summary(self) -> dict[str, float]:
        return {}


_NULL_SERIES = _NullSeries()
_NULL_SKETCH = _NullSketch()


class NullTelemetry:
    """Zero-overhead stand-in: recording is a single no-op call."""

    __slots__ = ()
    series_names: list[str] = []
    sketch_names: list[str] = []

    @property
    def enabled(self) -> bool:
        return False

    def __bool__(self) -> bool:
        return True  # same truthiness contract as Telemetry

    def series(self, name: str) -> _NullSeries:
        return _NULL_SERIES

    def sketch(self, name: str) -> _NullSketch:
        return _NULL_SKETCH

    def record(self, name: str, value: float = 1.0, n: int = 1,
               now: float | None = None) -> None:
        pass

    def observe(self, name: str, value: float,
                now: float | None = None) -> None:
        pass

    def window(self, name: str, seconds: float,
               now: float | None = None) -> WindowAggregate:
        return WindowAggregate(seconds=seconds)

    def rate(self, name: str, seconds: float,
             now: float | None = None) -> float:
        return 0.0

    def quantile(self, name: str, q: float) -> float:
        return 0.0

    def snapshot(self, windows: tuple[float, ...] = (60.0,)) -> dict:
        return {"series": {}, "sketches": {}}


#: Shared no-op telemetry hub; the default for instrumented code paths.
NULL_TELEMETRY = NullTelemetry()

#: Either the real hub or the null stand-in (duck-typed).
AnyTelemetry = Telemetry | NullTelemetry
