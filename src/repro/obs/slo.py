"""Declarative SLOs with multi-window burn-rate alerting.

An :class:`SloSpec` names an objective over the windowed telemetry in
:mod:`repro.obs.timeseries`; the :class:`SloEngine` evaluates every
spec over a fast and a slow window and converts the result into the
vocabulary operators actually page on: **burn rate** (how many times
faster than sustainable the error budget is being spent) and **budget
remaining** (the fraction of allowed badness left over the slow
window).

Objectives come in two shapes:

* **ratio** objectives (``availability``, ``dead_letter_rate``) divide
  an error count by a total count inside each window.  The burn rate
  is ``error_ratio / (1 - target)`` — burn 1.0 spends the budget
  exactly at the sustainable pace; burn 14.4 (the classic fast-page
  threshold) exhausts a 30-day budget in ~2 days.
* **threshold** objectives (``latency`` against a lifetime quantile
  sketch, ``freshness`` against a windowed max) compare an observed
  value to a ceiling; the burn rate is ``observed / target``.

A spec *pages* — and the engine emits a ``slo_breach`` flight-recorder
event — only when **both** windows burn past their thresholds: the
fast window confirms the problem is happening now, the slow window
confirms it is sustained rather than a blip (multi-window, multi-burn
alerting per the SRE workbook).  Breach events are edge-triggered: one
per excursion, re-armed when the spec recovers.

Specs load from a committed YAML/JSON config (``configs/slos.yaml``)
via :func:`load_slo_config`; :func:`default_slos` ships the same set in
code so the engine works with no file at hand.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.clock import Clock
from repro.obs.events import NULL_EVENT_LOG, AnyEventLog
from repro.obs.timeseries import AnyTelemetry

#: Objective kinds ``SloSpec.objective`` accepts.
OBJECTIVES = ("availability", "dead_letter_rate", "latency", "freshness")

#: Ratio objectives measure error counts over totals per window.
_RATIO_OBJECTIVES = ("availability", "dead_letter_rate")

#: Default windows: fast confirms "now", slow confirms "sustained".
DEFAULT_FAST_WINDOW = 300.0
DEFAULT_SLOW_WINDOW = 3600.0

#: Default burn thresholds.  The fast window tolerates short spikes
#: (a ratio SLO must burn 2x sustainable before it even warns); the
#: slow window pages on anything above the sustainable pace.
DEFAULT_FAST_BURN = 2.0
DEFAULT_SLOW_BURN = 1.0

#: Config schema version for ``load_slo_config``.
CONFIG_VERSION = 1


@dataclass(frozen=True)
class SloSpec:
    """One declarative objective over named telemetry series/sketches.

    ``target`` means the *success-ratio floor* for ``availability``
    (e.g. 0.99), the *error-ratio ceiling* for ``dead_letter_rate``
    (e.g. 0.02), and the *value ceiling* for ``latency``/``freshness``
    (seconds / days).  ``component`` ties the spec to a
    :class:`~repro.obs.health.HealthMonitor` component so breaches
    surface in the health rollup.
    """

    name: str
    objective: str
    target: float
    component: str = ""
    description: str = ""
    # ratio objectives: error/total counts per window.
    good_series: str = ""   # availability: successes
    bad_series: str = ""    # dead_letter_rate: failures
    total_series: str = ""  # both: denominators
    # threshold objectives: what to compare against ``target``.
    sketch: str = ""        # latency: lifetime quantile sketch
    quantile: float = 0.99  # latency: which quantile of the sketch
    series: str = ""        # freshness: windowed max of this series
    # windows + burn thresholds.
    fast_window: float = DEFAULT_FAST_WINDOW
    slow_window: float = DEFAULT_SLOW_WINDOW
    fast_burn: float = DEFAULT_FAST_BURN
    slow_burn: float = DEFAULT_SLOW_BURN

    def __post_init__(self) -> None:
        if self.objective not in OBJECTIVES:
            raise ValueError(
                f"unknown objective {self.objective!r}; "
                f"expected one of {OBJECTIVES}"
            )
        if self.objective in _RATIO_OBJECTIVES:
            if not 0.0 < self.target < 1.0:
                raise ValueError(
                    f"{self.name}: ratio targets must be in (0, 1)"
                )
            if not self.total_series:
                raise ValueError(f"{self.name}: total_series is required")
            if self.objective == "availability" and not self.good_series:
                raise ValueError(f"{self.name}: good_series is required")
            if self.objective == "dead_letter_rate" and not self.bad_series:
                raise ValueError(f"{self.name}: bad_series is required")
        else:
            if self.target <= 0.0:
                raise ValueError(
                    f"{self.name}: threshold targets must be positive"
                )
            if self.objective == "latency" and not self.sketch:
                raise ValueError(f"{self.name}: sketch is required")
            if self.objective == "freshness" and not self.series:
                raise ValueError(f"{self.name}: series is required")
            if not 0.0 < self.quantile < 1.0:
                raise ValueError(f"{self.name}: quantile must be in (0, 1)")
        if self.fast_window <= 0 or self.slow_window <= 0:
            raise ValueError(f"{self.name}: windows must be positive")
        if self.fast_burn <= 0 or self.slow_burn <= 0:
            raise ValueError(f"{self.name}: burn thresholds must be positive")

    @property
    def budget(self) -> float:
        """Allowed error fraction (ratio objectives only)."""
        if self.objective == "availability":
            return 1.0 - self.target
        return self.target  # dead_letter_rate: target IS the ceiling


@dataclass(frozen=True)
class SloStatus:
    """One spec's evaluation: burn rates, budget, breach verdict."""

    spec: SloSpec
    value_fast: float      # error ratio (ratio) / observed value (threshold)
    value_slow: float
    burn_fast: float
    burn_slow: float
    budget_remaining: float
    n_samples: int

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def breaching_fast(self) -> bool:
        return self.burn_fast >= self.spec.fast_burn

    @property
    def breaching_slow(self) -> bool:
        return self.burn_slow >= self.spec.slow_burn

    @property
    def breaching(self) -> bool:
        """Page condition: both windows burning past their thresholds."""
        return self.breaching_fast and self.breaching_slow

    @property
    def warning(self) -> bool:
        return self.breaching_fast or self.breaching_slow

    @property
    def severity(self) -> str:
        if self.breaching:
            return "page"
        if self.warning:
            return "warn"
        return "ok"

    def to_dict(self) -> dict:
        return {
            "name": self.spec.name,
            "objective": self.spec.objective,
            "component": self.spec.component,
            "target": self.spec.target,
            "value_fast": self.value_fast,
            "value_slow": self.value_slow,
            "burn_fast": self.burn_fast,
            "burn_slow": self.burn_slow,
            "budget_remaining": self.budget_remaining,
            "severity": self.severity,
            "breaching": self.breaching,
            "n_samples": self.n_samples,
        }


def _clamp01(value: float) -> float:
    return min(1.0, max(0.0, value))


class SloEngine:
    """Evaluates specs against a telemetry hub, emitting breaches.

    ``evaluate()`` is read-only with respect to the telemetry and cheap
    enough to call per render frame; breach events are edge-triggered
    per spec so a console polling every second does not flood the
    flight recorder.
    """

    def __init__(
        self,
        specs: list[SloSpec],
        telemetry: AnyTelemetry,
        event_log: AnyEventLog | None = None,
        clock: Clock | None = None,
    ) -> None:
        names = [spec.name for spec in specs]
        if len(names) != len(set(names)):
            raise ValueError("duplicate SLO names in spec list")
        self.specs = list(specs)
        self.telemetry = telemetry
        self.event_log = event_log or NULL_EVENT_LOG
        self.clock = clock or getattr(telemetry, "clock", None)
        self._breaching: dict[str, bool] = {}

    def evaluate(self, now: float | None = None) -> list[SloStatus]:
        """Current status of every spec; emits edge-triggered breaches."""
        if now is None and self.clock is not None:
            now = self.clock.now()
        statuses = [self._evaluate_spec(spec, now) for spec in self.specs]
        for status in statuses:
            was_breaching = self._breaching.get(status.name, False)
            if status.breaching and not was_breaching:
                self.event_log.emit(
                    "slo_breach",
                    slo=status.name,
                    objective=status.spec.objective,
                    component=status.spec.component,
                    window="fast+slow",
                    burn_rate=status.burn_fast,
                    burn_slow=status.burn_slow,
                    budget_remaining=status.budget_remaining,
                    target=status.spec.target,
                    value=status.value_fast,
                )
            self._breaching[status.name] = status.breaching
        return statuses

    def budgets(self, now: float | None = None) -> dict[str, float]:
        """``{spec name: budget fraction remaining}`` without emitting."""
        if now is None and self.clock is not None:
            now = self.clock.now()
        return {
            spec.name: self._evaluate_spec(spec, now).budget_remaining
            for spec in self.specs
        }

    # -- evaluation ------------------------------------------------------------

    def _evaluate_spec(
        self, spec: SloSpec, now: float | None
    ) -> SloStatus:
        if spec.objective in _RATIO_OBJECTIVES:
            return self._evaluate_ratio(spec, now)
        if spec.objective == "latency":
            return self._evaluate_latency(spec)
        return self._evaluate_freshness(spec, now)

    def _ratio_window(
        self, spec: SloSpec, seconds: float, now: float | None
    ) -> tuple[float, int]:
        """(error ratio, total count) inside one window."""
        total = self.telemetry.window(
            spec.total_series, seconds, now=now
        ).count
        if not total:
            return 0.0, 0
        if spec.objective == "availability":
            good = self.telemetry.window(
                spec.good_series, seconds, now=now
            ).count
            errors = max(0, total - good)
        else:
            errors = self.telemetry.window(
                spec.bad_series, seconds, now=now
            ).count
        return min(1.0, errors / total), total

    def _evaluate_ratio(
        self, spec: SloSpec, now: float | None
    ) -> SloStatus:
        error_fast, n_fast = self._ratio_window(
            spec, spec.fast_window, now
        )
        error_slow, n_slow = self._ratio_window(
            spec, spec.slow_window, now
        )
        budget = spec.budget
        burn_fast = error_fast / budget
        burn_slow = error_slow / budget
        return SloStatus(
            spec=spec,
            value_fast=error_fast,
            value_slow=error_slow,
            burn_fast=burn_fast,
            burn_slow=burn_slow,
            budget_remaining=_clamp01(1.0 - burn_slow),
            n_samples=max(n_fast, n_slow),
        )

    def _evaluate_latency(self, spec: SloSpec) -> SloStatus:
        sketch = self.telemetry.sketch(spec.sketch)
        observed = sketch.quantile(spec.quantile) if sketch.count else 0.0
        burn = observed / spec.target
        return SloStatus(
            spec=spec,
            value_fast=observed,
            value_slow=observed,
            burn_fast=burn,
            burn_slow=burn,
            budget_remaining=_clamp01(1.0 - burn),
            n_samples=sketch.count,
        )

    def _evaluate_freshness(
        self, spec: SloSpec, now: float | None
    ) -> SloStatus:
        fast = self.telemetry.window(
            spec.series, spec.fast_window, now=now
        )
        slow = self.telemetry.window(
            spec.series, spec.slow_window, now=now
        )
        burn_fast = fast.maximum / spec.target
        burn_slow = slow.maximum / spec.target
        return SloStatus(
            spec=spec,
            value_fast=fast.maximum,
            value_slow=slow.maximum,
            burn_fast=burn_fast,
            burn_slow=burn_slow,
            budget_remaining=_clamp01(1.0 - burn_slow),
            n_samples=slow.count,
        )


# -- config loading -----------------------------------------------------------

#: Keys a config record may set besides the required name/objective/target.
_SPEC_KEYS = frozenset(
    {
        "name", "objective", "target", "component", "description",
        "good_series", "bad_series", "total_series", "sketch",
        "quantile", "series",
    }
)


def parse_slo_config(data: dict) -> list[SloSpec]:
    """Build specs from an already-parsed config mapping."""
    if not isinstance(data, dict):
        raise ValueError("SLO config must be a mapping")
    version = data.get("version")
    if version != CONFIG_VERSION:
        raise ValueError(
            f"unsupported SLO config version {version!r}; "
            f"expected {CONFIG_VERSION}"
        )
    records = data.get("slos")
    if not isinstance(records, list) or not records:
        raise ValueError("SLO config needs a non-empty 'slos' list")
    specs = []
    for record in records:
        if not isinstance(record, dict):
            raise ValueError("each SLO must be a mapping")
        unknown = set(record) - _SPEC_KEYS - {"windows", "burn"}
        if unknown:
            raise ValueError(
                f"unknown SLO config keys: {sorted(unknown)}"
            )
        kwargs = {key: record[key] for key in _SPEC_KEYS if key in record}
        windows = record.get("windows", {})
        if "fast" in windows:
            kwargs["fast_window"] = float(windows["fast"])
        if "slow" in windows:
            kwargs["slow_window"] = float(windows["slow"])
        burn = record.get("burn", {})
        if "fast" in burn:
            kwargs["fast_burn"] = float(burn["fast"])
        if "slow" in burn:
            kwargs["slow_burn"] = float(burn["slow"])
        specs.append(SloSpec(**kwargs))
    return specs


def load_slo_config(path: str | Path) -> list[SloSpec]:
    """Load specs from a YAML (preferred) or JSON config file."""
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    if path.suffix in (".yaml", ".yml"):
        try:
            import yaml
        except ImportError as exc:  # pragma: no cover - yaml is bundled
            raise RuntimeError(
                "PyYAML is not installed; use a .json SLO config"
            ) from exc
        data = yaml.safe_load(text)
    else:
        data = json.loads(text)
    return parse_slo_config(data)


def default_slos() -> list[SloSpec]:
    """The committed objective set (mirrors ``configs/slos.yaml``)."""
    return [
        SloSpec(
            name="fetch-availability",
            objective="availability",
            target=0.97,
            component="fetch",
            good_series="fetch.ok",
            total_series="fetch.outcomes",
            description="Fraction of fetches that return usable pages.",
        ),
        SloSpec(
            name="fetch-dead-letters",
            objective="dead_letter_rate",
            target=0.05,
            component="fetch",
            bad_series="fetch.dead_letters",
            total_series="fetch.outcomes",
            description="Fetches exhausted into the dead-letter queue.",
        ),
        SloSpec(
            name="serve-availability",
            objective="availability",
            target=0.99,
            component="serve",
            good_series="serve.ok",
            total_series="serve.requests",
            description="Queries answered ok or stale (not rejected).",
        ),
        SloSpec(
            name="serve-degraded-reads",
            objective="dead_letter_rate",
            target=0.05,
            component="serve",
            bad_series="serve.degraded",
            total_series="serve.requests",
            description=(
                "Responses served degraded (stale cache or replica-"
                "group fallback)."
            ),
        ),
        SloSpec(
            name="serve-latency-p99",
            objective="latency",
            target=0.25,
            component="serve",
            sketch="serve.latency",
            quantile=0.99,
            description="P99 portal query latency (seconds).",
        ),
        SloSpec(
            name="stream-freshness",
            objective="freshness",
            target=3.0,
            component="stream",
            series="stream.freshness_days",
            description="Worst-case doc age (days) at ingest time.",
        ),
    ]
