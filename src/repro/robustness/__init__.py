"""Fault injection and resilient fetching for the gather substrate.

Two halves:

* :mod:`repro.robustness.faults` — :class:`FaultyWeb` wraps a
  :class:`~repro.corpus.web.SyntheticWeb` and injects deterministic,
  seed-driven faults per URL (transient errors, dead links, timeouts,
  truncated/garbled text, flapping hosts) configured by a composable
  :class:`FaultProfile`;
* :mod:`repro.robustness.fetcher` — :class:`ResilientFetcher` retries
  transient failures with exponential backoff + deterministic jitter,
  trips a per-host :class:`CircuitBreaker`, and dead-letters
  permanently failed URLs so crawls complete around failures.

See ``docs/ROBUSTNESS.md`` for the fault model, the breaker state
machine and the degradation invariant the chaos suite enforces.
"""

from repro.robustness.faults import (
    PROFILES,
    DeadLinkError,
    FaultProfile,
    FaultyWeb,
    FetchError,
    HostDownError,
    SlowFetchError,
    TransientFetchError,
    get_profile,
    profile_names,
)
from repro.robustness.fetcher import (
    CircuitBreaker,
    DeadLetter,
    FetchOutcome,
    ResilientFetcher,
    RetryPolicy,
)

__all__ = [
    "PROFILES",
    "CircuitBreaker",
    "DeadLetter",
    "DeadLinkError",
    "FaultProfile",
    "FaultyWeb",
    "FetchError",
    "FetchOutcome",
    "HostDownError",
    "ResilientFetcher",
    "RetryPolicy",
    "SlowFetchError",
    "TransientFetchError",
    "get_profile",
    "profile_names",
]
