"""Resilient fetching: bounded retries, backoff, circuit breaking.

:class:`ResilientFetcher` sits between the crawler/monitor and a (
possibly faulty) web.  It retries transient failures with exponential
backoff plus *deterministic* jitter (hash-derived, no wall clock and no
shared RNG state, so the retry schedule for a URL is a pure function of
``(seed, url, attempt)``), trips a per-host circuit breaker after
consecutive failures so a down host is not hammered, and records
permanently failed URLs in a dead-letter queue instead of raising — the
caller's crawl completes around failures.

All waiting is simulated ticks on the web's tick clock (or an internal
one for webs without a clock); nothing sleeps.

Every decision is flight-recorded when an event log is attached:
``fetch_retry``, ``breaker_open``, ``breaker_close`` and
``fetch_dead_letter`` events, plus ``fetch.*`` counters on the tracer's
metrics registry for the Prometheus export.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from urllib.parse import urlparse

from repro.corpus.web import Page
from repro.obs.events import NULL_EVENT_LOG, AnyEventLog
from repro.obs.timeseries import NULL_TELEMETRY, AnyTelemetry
from repro.obs.tracer import NULL_TRACER, AnyTracer
from repro.robustness.faults import DeadLinkError, FetchError


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry schedule with deterministic jitter.

    ``jitter`` is the maximum fractional increase applied to each wait
    (0.5 means up to +50%).  Waits are made monotone non-decreasing by
    construction (each wait is at least the previous one), so a retry
    schedule never speeds back up against a struggling host.
    """

    max_attempts: int = 4
    base_backoff: float = 1.0
    backoff_factor: float = 2.0
    max_backoff: float = 16.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_backoff <= 0:
            raise ValueError("base_backoff must be positive")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.max_backoff < self.base_backoff:
            raise ValueError("max_backoff must be >= base_backoff")
        if self.jitter < 0:
            raise ValueError("jitter must be >= 0")

    def backoff(self, attempt: int) -> float:
        """Un-jittered wait after the ``attempt``-th failure (1-based)."""
        raw = self.base_backoff * self.backoff_factor ** (attempt - 1)
        return min(self.max_backoff, raw)


class CircuitBreaker:
    """Classic closed / open / half-open breaker over simulated ticks.

    ``failure_threshold`` consecutive failures open the breaker; while
    open, :meth:`allow` rejects every request until ``cool_off`` ticks
    have passed, then one trial request is let through (half-open).  A
    half-open success closes the breaker; a half-open failure reopens
    it for another cool-off.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self, failure_threshold: int = 5, cool_off: float = 8.0
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cool_off <= 0:
            raise ValueError("cool_off must be positive")
        self.failure_threshold = failure_threshold
        self.cool_off = cool_off
        self.state = self.CLOSED
        self.failures = 0
        self.opened_at = 0.0

    def allow(self, now: float) -> bool:
        """Whether a request may proceed at simulated time ``now``."""
        if self.state == self.OPEN:
            if now - self.opened_at >= self.cool_off:
                self.state = self.HALF_OPEN
                return True
            return False
        return True

    def record_success(self) -> None:
        self.state = self.CLOSED
        self.failures = 0

    def record_failure(self, now: float) -> None:
        self.failures += 1
        if self.state == self.HALF_OPEN:
            self.state = self.OPEN
            self.opened_at = now
        elif (
            self.state == self.CLOSED
            and self.failures >= self.failure_threshold
        ):
            self.state = self.OPEN
            self.opened_at = now


@dataclass(frozen=True)
class DeadLetter:
    """One permanently failed URL."""

    url: str
    reason: str  # "dead_link" | "missing" | "exhausted:<kind>" | "breaker_open"
    attempts: int


@dataclass
class FetchOutcome:
    """What one resilient fetch produced."""

    url: str
    page: Page | None = None
    status: str = "ok"  # ok | degraded | dead | exhausted | breaker_open
    attempts: int = 0
    retries: int = 0
    wait_ticks: float = 0.0
    reason: str = ""

    @property
    def ok(self) -> bool:
        return self.page is not None


class _TickClock:
    """Fallback simulated clock for webs without one."""

    __slots__ = ("now",)

    def __init__(self) -> None:
        self.now = 0.0

    def advance(self, ticks: float) -> None:
        self.now += ticks


class ResilientFetcher:
    """Fetches pages around transient faults, dead links and bad hosts."""

    def __init__(
        self,
        web,
        policy: RetryPolicy | None = None,
        failure_threshold: int = 5,
        breaker_cool_off: float = 8.0,
        seed: int = 0,
        tracer: AnyTracer | None = None,
        event_log: AnyEventLog | None = None,
        telemetry: AnyTelemetry | None = None,
    ) -> None:
        self.web = web
        self.policy = policy or RetryPolicy()
        self.failure_threshold = failure_threshold
        self.breaker_cool_off = breaker_cool_off
        self.seed = seed
        self.tracer = tracer or NULL_TRACER
        self.event_log = event_log or NULL_EVENT_LOG
        self.telemetry = telemetry or NULL_TELEMETRY
        self._breakers: dict[str, CircuitBreaker] = {}
        self.dead_letters: list[DeadLetter] = []
        # Webs with a simulated clock (FaultyWeb) share it, so backoff
        # waits move flapping-host windows; plain webs get a local one.
        self._clock = (
            web if hasattr(web, "advance") and hasattr(web, "now")
            else _TickClock()
        )

    # -- introspection ---------------------------------------------------------

    @property
    def now(self) -> float:
        return self._clock.now

    def breaker_of(self, host: str) -> CircuitBreaker:
        breaker = self._breakers.get(host)
        if breaker is None:
            breaker = CircuitBreaker(
                failure_threshold=self.failure_threshold,
                cool_off=self.breaker_cool_off,
            )
            self._breakers[host] = breaker
        return breaker

    def breaker_states(self) -> dict[str, str]:
        """host -> breaker state, for reports and tests."""
        return {
            host: breaker.state
            for host, breaker in sorted(self._breakers.items())
        }

    @property
    def dead_letter_urls(self) -> set[str]:
        return {letter.url for letter in self.dead_letters}

    # -- fetching --------------------------------------------------------------

    def fetch(self, url: str) -> FetchOutcome:
        """Fetch ``url`` with retries; never raises on fetch failure.

        Permanent failures (dead links, retry exhaustion, an open
        breaker) land in :attr:`dead_letters` and come back as a
        non-``ok`` outcome the caller can step over.
        """
        outcome = self._fetch(url)
        if self.telemetry.enabled:
            # Outcome-level, not attempt-level: a URL that succeeds
            # after retries should not count against availability.
            record = self.telemetry.record
            record("fetch.outcomes")
            if outcome.ok:
                record("fetch.ok")
            else:
                record("fetch.dead_letters")
            if outcome.retries:
                record("fetch.retries", n=outcome.retries)
        return outcome

    def _fetch(self, url: str) -> FetchOutcome:
        host = urlparse(url).netloc
        breaker = self.breaker_of(host)
        outcome = FetchOutcome(url=url)
        if not breaker.allow(self.now):
            return self._dead_letter(outcome, "breaker_open")
        previous_wait = 0.0

        while outcome.attempts < self.policy.max_attempts:
            outcome.attempts += 1
            self.tracer.count("fetch.attempts")
            try:
                page = self.web.fetch(url)
            except KeyError:
                return self._dead_letter(outcome, "missing")
            except DeadLinkError:
                # The URL is gone, not the host: no breaker penalty.
                outcome.status = "dead"
                return self._dead_letter(outcome, "dead_link")
            except FetchError as exc:
                outcome.reason = exc.reason
                self._record_failure(breaker, host)
                if breaker.state == CircuitBreaker.OPEN:
                    return self._dead_letter(outcome, "breaker_open")
                if outcome.attempts >= self.policy.max_attempts:
                    break
                wait = self._wait(url, outcome, previous_wait)
                previous_wait = wait
                self.event_log.emit(
                    "fetch_retry",
                    url=url,
                    attempt=outcome.attempts,
                    wait_ticks=wait,
                    reason=exc.reason,
                )
                self.tracer.count("fetch.retries")
                outcome.retries += 1
                continue
            else:
                closing = breaker.state != CircuitBreaker.CLOSED
                breaker.record_success()
                if closing:
                    self.event_log.emit("breaker_close", host=host)
                    self.tracer.count("fetch.breaker_closes")
                outcome.page = page
                degraded = getattr(self.web, "is_degraded", None)
                if degraded is not None and degraded(url):
                    outcome.status = "degraded"
                    self.tracer.count("fetch.degraded")
                else:
                    outcome.status = "ok"
                return outcome

        outcome.status = "exhausted"
        return self._dead_letter(
            outcome, f"exhausted:{outcome.reason or 'unknown'}"
        )

    # -- internals -------------------------------------------------------------

    def _wait(
        self, url: str, outcome: FetchOutcome, previous_wait: float
    ) -> float:
        """Jittered, monotone backoff wait; advances the tick clock."""
        base = self.policy.backoff(outcome.attempts)
        jitter = self.policy.jitter * _unit(
            self.seed, "jitter", url, outcome.attempts
        )
        # Monotone non-decreasing by construction: never retry *faster*
        # than the previous wait against a struggling host.
        wait = max(base * (1.0 + jitter), previous_wait)
        outcome.wait_ticks += wait
        self._clock.advance(wait)
        return wait

    def _record_failure(self, breaker: CircuitBreaker, host: str) -> None:
        was_open = breaker.state == CircuitBreaker.OPEN
        breaker.record_failure(self.now)
        if breaker.state == CircuitBreaker.OPEN and not was_open:
            self.event_log.emit(
                "breaker_open", host=host, failures=breaker.failures
            )
            self.tracer.count("fetch.breaker_opens")

    def _dead_letter(
        self, outcome: FetchOutcome, reason: str
    ) -> FetchOutcome:
        if outcome.status == "ok":
            outcome.status = (
                "breaker_open" if reason == "breaker_open" else "dead"
            )
        letter = DeadLetter(
            url=outcome.url, reason=reason, attempts=outcome.attempts
        )
        self.dead_letters.append(letter)
        self.event_log.emit(
            "fetch_dead_letter",
            url=outcome.url,
            reason=reason,
            attempts=outcome.attempts,
        )
        self.tracer.count("fetch.dead_letters")
        outcome.reason = reason
        return outcome


def _unit(seed: int, *parts: object) -> float:
    """A uniform draw in [0, 1) that is a pure function of its inputs."""
    material = ":".join(str(part) for part in (seed, *parts))
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64
