"""Deterministic fault injection for the synthetic web.

The paper's pipeline runs against the live Web, where fetch failures,
slow hosts, truncated pages and dead links are the norm.
:class:`FaultyWeb` wraps a :class:`~repro.corpus.web.SyntheticWeb` and
injects those failure modes *deterministically*: every fault decision is
a pure function of ``(seed, profile, url, attempt)`` derived by hashing,
so the same seed and profile reproduce the exact same failure schedule
on every run — chaos tests assert invariants instead of flaking.

Fault kinds:

* **transient** — the first N fetches of a URL raise
  :class:`TransientFetchError`, then the URL recovers (an HTTP 503);
* **slow** — the first N fetches time out (:class:`SlowFetchError`),
  each costing ``slow_penalty_ticks`` of simulated time;
* **dead** — every fetch raises :class:`DeadLinkError` (a permanent
  404; the page exists in the link graph but never resolves);
* **truncated / garbled** — the fetch succeeds but the served text is
  cut short or corrupted (a byte-mangling proxy or aborted transfer);
* **flapping host** — a whole host goes down and comes back on a fixed
  period of the simulated tick clock (:class:`HostDownError` while
  down).

Time is simulated ticks, never the wall clock: the web owns a tick
counter advanced by each fetch and by the retrying fetcher's backoff
waits, so flapping-host windows interact with retry schedules exactly
the same way in every run.
"""

from __future__ import annotations

import hashlib
from collections import Counter
from dataclasses import dataclass, field, replace
from typing import Mapping
from urllib.parse import urlparse

from repro.corpus.web import FRONT_PAGE_URL, Page, SyntheticWeb


# -- failures ------------------------------------------------------------------

class FetchError(Exception):
    """Base class for injected fetch failures."""

    #: Machine-readable failure kind ("transient", "slow", ...).
    reason = "fetch_error"

    def __init__(self, url: str, detail: str = "") -> None:
        self.url = url
        self.detail = detail
        super().__init__(f"{self.reason}: {url}" + (f" ({detail})" if detail else ""))

    @property
    def transient(self) -> bool:
        """Whether retrying the same URL may succeed."""
        return True


class TransientFetchError(FetchError):
    """A temporary failure (connection reset, HTTP 5xx)."""

    reason = "transient"


class SlowFetchError(FetchError):
    """The fetch exceeded the simulated client timeout."""

    reason = "slow"

    def __init__(self, url: str, ticks: float = 0.0) -> None:
        self.ticks = ticks
        super().__init__(url, detail=f"{ticks:g} ticks")


class HostDownError(FetchError):
    """The whole host is in a down window of its flap cycle."""

    reason = "host_down"


class DeadLinkError(FetchError):
    """A permanent failure: the URL will never resolve."""

    reason = "dead_link"

    @property
    def transient(self) -> bool:
        return False


# -- profiles ------------------------------------------------------------------

@dataclass(frozen=True)
class FaultProfile:
    """Composable per-fault-kind injection rates.

    Rates are probabilities in ``[0, 1]`` that a given URL (or host,
    for ``flaky_host_rate``) is afflicted by that fault kind.  A URL
    selected as *dead* is dead regardless of other draws.  Per-host
    overrides replace individual rates for URLs on that host.

    ``lossy`` declares the profile's contract: ``False`` means every
    injected fault is recoverable within a small retry budget, so a
    resilient client must end up with the exact same page set as a
    fault-free run; ``True`` means pages can be permanently lost or
    served degraded, so the client's page set is a subset.
    """

    name: str = "custom"
    transient_rate: float = 0.0
    dead_rate: float = 0.0
    slow_rate: float = 0.0
    truncate_rate: float = 0.0
    garble_rate: float = 0.0
    flaky_host_rate: float = 0.0
    #: Upper bound on consecutive transient failures per URL (>= 1).
    max_transient_failures: int = 2
    #: Upper bound on consecutive timeouts for a slow URL (>= 1).
    max_slow_timeouts: int = 1
    #: Simulated ticks burned per timed-out fetch.
    slow_penalty_ticks: float = 5.0
    #: Length of one up (or down) window of a flapping host, in ticks.
    flap_period: float = 4.0
    #: Whether this profile can permanently lose or corrupt pages.
    lossy: bool = False
    #: host -> {rate field: value} replacing the profile's rates there.
    host_overrides: Mapping[str, Mapping[str, float]] = field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        for name in (
            "transient_rate", "dead_rate", "slow_rate",
            "truncate_rate", "garble_rate", "flaky_host_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.max_transient_failures < 1:
            raise ValueError("max_transient_failures must be >= 1")
        if self.max_slow_timeouts < 1:
            raise ValueError("max_slow_timeouts must be >= 1")
        if self.flap_period <= 0:
            raise ValueError("flap_period must be positive")

    @property
    def injection_rate(self) -> float:
        """Aggregate probability mass of per-URL fault draws."""
        return (
            self.transient_rate + self.dead_rate + self.slow_rate
            + self.truncate_rate + self.garble_rate
            + self.flaky_host_rate
        )

    def rate(self, name: str, host: str) -> float:
        """Rate of fault kind ``name`` for URLs on ``host``."""
        override = self.host_overrides.get(host)
        if override is not None and name in override:
            return override[name]
        return getattr(self, name)

    def with_overrides(
        self, host: str, **rates: float
    ) -> "FaultProfile":
        """A copy with ``rates`` overriding this profile on ``host``."""
        merged = dict(self.host_overrides)
        merged[host] = {**merged.get(host, {}), **rates}
        return replace(self, host_overrides=merged)


#: Named profiles shipped with the CLI's ``--fault-profile``.  Non-lossy
#: profiles inject only recoverable faults; lossy ones can drop pages.
PROFILES: dict[str, FaultProfile] = {
    "none": FaultProfile(name="none"),
    "flaky": FaultProfile(
        name="flaky", transient_rate=0.25, slow_rate=0.05,
    ),
    "slow": FaultProfile(
        name="slow", slow_rate=0.25, transient_rate=0.10,
    ),
    "lossy": FaultProfile(
        name="lossy", dead_rate=0.15, transient_rate=0.10, lossy=True,
    ),
    "degraded": FaultProfile(
        name="degraded", truncate_rate=0.15, garble_rate=0.10,
        transient_rate=0.05, lossy=True,
    ),
    "flapping": FaultProfile(
        name="flapping", flaky_host_rate=0.30, transient_rate=0.10,
        lossy=True,
    ),
    "hostile": FaultProfile(
        name="hostile", transient_rate=0.20, dead_rate=0.15,
        slow_rate=0.10, truncate_rate=0.10, garble_rate=0.05,
        flaky_host_rate=0.20, lossy=True,
    ),
}


def profile_names() -> list[str]:
    return list(PROFILES)


def get_profile(name: str) -> FaultProfile:
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown fault profile {name!r}; "
            f"available: {', '.join(PROFILES)}"
        ) from None


# -- deterministic draws -------------------------------------------------------

def _unit(seed: int, *parts: object) -> float:
    """A uniform draw in [0, 1) that is a pure function of its inputs."""
    material = ":".join(str(part) for part in (seed, *parts))
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class _FaultPlan:
    """The faults selected for one URL (pure function of seed+profile)."""

    dead: bool = False
    transient_failures: int = 0
    slow_timeouts: int = 0
    truncated: bool = False
    garbled: bool = False

    @property
    def degraded(self) -> bool:
        return self.truncated or self.garbled


class FaultyWeb:
    """A :class:`SyntheticWeb` wrapper that injects seeded faults.

    Implements the web's fetch interface (``fetch``/``peek``/``has``/
    ``urls``/``graph``/...), so it drops into any code path that takes
    a web.  ``fetch`` may raise :class:`FetchError` subclasses or serve
    degraded text per the profile; ``peek`` always bypasses injection
    (the crawler's link-prioritization peek is a simulation
    convenience, not a real network fetch).
    """

    def __init__(
        self,
        web: SyntheticWeb,
        profile: FaultProfile,
        seed: int = 0,
        immune: frozenset[str] = frozenset({FRONT_PAGE_URL}),
    ) -> None:
        self.inner = web
        self.profile = profile
        self.seed = seed
        #: URLs never faulted.  The crawl entrypoint is assumed
        #: known-good by default: a dead seed yields a trivially empty
        #: crawl, which degrades nothing and therefore tests nothing.
        self.immune = frozenset(immune)
        #: Simulated tick clock; fetches and client backoff advance it.
        self.now = 0.0
        self._plans: dict[str, _FaultPlan] = {}
        self._attempts: Counter[str] = Counter()
        #: URLs actually served in degraded (truncated/garbled) form.
        self.degraded_served: set[str] = set()
        #: Fault kinds raised so far, by reason.
        self.stats: Counter[str] = Counter()

    # -- clock -----------------------------------------------------------------

    def advance(self, ticks: float) -> None:
        """Advance simulated time (the retrying client's waits)."""
        if ticks < 0:
            raise ValueError("ticks must be >= 0")
        self.now += ticks

    # -- fault plan ------------------------------------------------------------

    def plan_of(self, url: str) -> _FaultPlan:
        """The (cached) fault plan for ``url``."""
        plan = self._plans.get(url)
        if plan is None:
            plan = self._draw_plan(url)
            self._plans[url] = plan
        return plan

    def _draw_plan(self, url: str) -> _FaultPlan:
        if url in self.immune:
            return _FaultPlan()
        host = urlparse(url).netloc
        profile = self.profile

        def hit(kind: str) -> bool:
            return _unit(self.seed, kind, url) < profile.rate(kind, host)

        if hit("dead_rate"):
            return _FaultPlan(dead=True)
        transient = 0
        if hit("transient_rate"):
            transient = 1 + int(
                _unit(self.seed, "transient_n", url)
                * profile.max_transient_failures
            )
            transient = min(transient, profile.max_transient_failures)
        slow = 0
        if hit("slow_rate"):
            slow = 1 + int(
                _unit(self.seed, "slow_n", url)
                * profile.max_slow_timeouts
            )
            slow = min(slow, profile.max_slow_timeouts)
        return _FaultPlan(
            transient_failures=transient,
            slow_timeouts=slow,
            truncated=hit("truncate_rate"),
            garbled=hit("garble_rate"),
        )

    def host_is_flaky(self, host: str) -> bool:
        return (
            _unit(self.seed, "flaky_host", host)
            < self.profile.rate("flaky_host_rate", host)
        )

    def host_is_down(self, host: str) -> bool:
        """Whether a flaky host is in a down window right now."""
        if not self.host_is_flaky(host):
            return False
        return int(self.now // self.profile.flap_period) % 2 == 1

    def is_degraded(self, url: str) -> bool:
        """Whether ``url``'s content is served truncated/garbled."""
        return self.inner.has(url) and self.plan_of(url).degraded

    # -- HTTP-like access ------------------------------------------------------

    def fetch(self, url: str) -> Page:
        """Fetch a page, injecting the URL's planned faults in order.

        The k-th fetch of a URL behaves identically across runs with
        the same seed and profile: dead links always fail; transient
        and slow faults fail the first N attempts then recover; a
        flapping host fails whenever the tick clock sits in a down
        window.
        """
        self.advance(1.0)
        page = self.inner.fetch(url)  # propagate KeyError 404s as-is
        attempt = self._attempts[url] = self._attempts[url] + 1
        plan = self.plan_of(url)
        if plan.dead:
            self.stats["dead_link"] += 1
            raise DeadLinkError(url)
        host = urlparse(url).netloc
        if url not in self.immune and self.host_is_down(host):
            self.stats["host_down"] += 1
            raise HostDownError(url, detail=host)
        if attempt <= plan.transient_failures:
            self.stats["transient"] += 1
            raise TransientFetchError(url)
        if attempt <= plan.transient_failures + plan.slow_timeouts:
            self.stats["slow"] += 1
            self.advance(self.profile.slow_penalty_ticks)
            raise SlowFetchError(url, ticks=self.profile.slow_penalty_ticks)
        if plan.degraded:
            self.degraded_served.add(url)
            self.stats["degraded"] += 1
            return self._degrade(page, plan)
        return page

    def peek(self, url: str) -> Page:
        """Fault-free access to the underlying page."""
        return self.inner.peek(url)

    def _degrade(self, page: Page, plan: _FaultPlan) -> Page:
        text = page.text
        links = page.links
        if plan.truncated:
            text = text[: max(1, len(text) // 3)]
            links = links[: len(links) // 2]
        if plan.garbled:
            text = _garble(text, _unit(self.seed, "garble_phase", page.url))
        return Page(
            url=page.url,
            title=page.title,
            text=text,
            links=links,
            document=page.document,
        )

    # -- passthrough -----------------------------------------------------------

    def has(self, url: str) -> bool:
        return self.inner.has(url)

    def add_page(self, page: Page) -> None:
        self.inner.add_page(page)
        # Fresh content gets a fresh fault plan and attempt history.
        self._plans.pop(page.url, None)
        self._attempts.pop(page.url, None)
        self.degraded_served.discard(page.url)

    @property
    def graph(self):
        return self.inner.graph

    @property
    def urls(self) -> list[str]:
        return self.inner.urls

    @property
    def documents(self):
        return self.inner.documents

    def __len__(self) -> int:
        return len(self.inner)

    @property
    def fetch_attempts(self) -> int:
        """Total fetch calls served (successes and failures)."""
        return sum(self._attempts.values())


def _garble(text: str, phase: float) -> str:
    """Deterministically corrupt ~1 in 7 characters of ``text``."""
    offset = int(phase * 7)
    chars = list(text)
    for index in range(offset % 7, len(chars), 7):
        if chars[index].isalpha():
            chars[index] = "#"
    return "".join(chars)
