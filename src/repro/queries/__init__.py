"""Smart-query planner: generate, evaluate, and budget query portfolios.

The paper hand-writes five smart queries per sales driver (section
3.3.1, step 1).  Endrullis et al. ("Evaluation of Query Generators for
Entity Search Engines", PAPERS.md) show that generated query candidates
vary wildly in coverage, precision, and cost, and that selecting a
*portfolio* of queries under a crawl budget dominates any single hand
query.  This package treats query selection as a measured artifact:

* :mod:`repro.queries.generate` — deterministic candidate expansion
  over per-driver templates, verb-phrase lexicons, and entity slots;
* :mod:`repro.queries.evaluate` — score each candidate's coverage /
  precision / crawl cost against ground truth from the gathered store;
* :mod:`repro.queries.planner` — greedy marginal-gain portfolio
  selection under an explicit page budget, with analyst-feedback
  re-weighting;
* :mod:`repro.queries.recipes` — saved scenario configs
  (``configs/recipes/*.yaml``) runnable end to end via
  ``repro recipe run``.

See docs/QUERIES.md for the full tour.
"""

from repro.queries.evaluate import (
    CandidateEvaluation,
    QueryEvaluator,
    StoreGroundTruth,
)
from repro.queries.generate import (
    CandidateGenerator,
    DriverQueryLexicon,
    QueryCandidate,
    default_lexicons,
)
from repro.queries.planner import (
    FeedbackWeights,
    PlannerConfig,
    Portfolio,
    PortfolioPlanner,
    SelectedQuery,
    plan_driver,
)
from repro.queries.recipes import (
    Recipe,
    RecipeError,
    RecipeResult,
    load_recipe,
    run_recipe,
    validate_recipe_data,
)

__all__ = [
    "CandidateEvaluation",
    "CandidateGenerator",
    "DriverQueryLexicon",
    "FeedbackWeights",
    "PlannerConfig",
    "Portfolio",
    "PortfolioPlanner",
    "QueryCandidate",
    "QueryEvaluator",
    "Recipe",
    "RecipeError",
    "RecipeResult",
    "SelectedQuery",
    "StoreGroundTruth",
    "default_lexicons",
    "load_recipe",
    "plan_driver",
    "run_recipe",
    "validate_recipe_data",
]
