"""Saved scenario recipes: drivers, corpus, faults, budget, planner.

A recipe is a YAML (or JSON) file describing one end-to-end scenario —
which drivers to hunt, how big a synthetic web, which fault profile,
what crawl budget the planner gets — validated against an explicit
schema so a typo'd key or unknown driver fails with every problem
listed, not a stack trace.  ``repro recipe run`` executes it: gather,
plan portfolios per driver, train on the planned queries, extract, and
mint alerts through evolution cycles.  Committed examples live under
``configs/recipes/``.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.core.alerts import Alert, AlertService
from repro.core.drivers import available_driver_ids, get_driver
from repro.core.etap import Etap, EtapConfig
from repro.corpus.evolve import WebEvolver
from repro.corpus.generator import (
    DOC_TYPE_FOR_DRIVER,
    DOC_TYPES,
    CorpusConfig,
)
from repro.corpus.web import build_web
from repro.obs.events import NULL_EVENT_LOG
from repro.obs.tracer import NULL_TRACER
from repro.queries.evaluate import QueryEvaluator, StoreGroundTruth
from repro.queries.generate import CandidateGenerator
from repro.queries.planner import (
    FeedbackWeights,
    PlannerConfig,
    Portfolio,
    PortfolioPlanner,
)
from repro.robustness import FaultyWeb, get_profile, profile_names

#: Default corpus-mix weight granted to a recipe driver's trigger doc
#: type when the recipe does not override ``mix`` — matches the ~7%
#: share the paper-faithful mix gives each builtin trigger type.
_DRIVER_MIX_WEIGHT = 0.07


class RecipeError(ValueError):
    """A recipe failed schema validation; ``problems`` lists why."""

    def __init__(self, source: str, problems: Sequence[str]) -> None:
        self.source = source
        self.problems = list(problems)
        details = "\n".join(f"  - {p}" for p in self.problems)
        super().__init__(
            f"invalid recipe {source}:\n{details}"
        )


@dataclass(frozen=True)
class PlannerSettings:
    enabled: bool = True
    budget: int = 200
    top_k: int = 40
    max_queries: int | None = None
    max_candidates: int = 120


@dataclass(frozen=True)
class AlertSettings:
    threshold: float = 0.5
    cycles: int = 1
    docs_per_cycle: int = 30


@dataclass(frozen=True)
class Recipe:
    """One validated scenario configuration."""

    name: str
    drivers: tuple[str, ...]
    description: str = ""
    n_docs: int = 600
    seed: int = 7
    fault_profile: str = "none"
    mix: dict[str, float] | None = None
    top_k_per_query: int = 40
    negative_sample_size: int = 600
    planner: PlannerSettings = field(default_factory=PlannerSettings)
    alerts: AlertSettings = field(default_factory=AlertSettings)

    def corpus_mix(self) -> dict[str, float]:
        """The corpus mix this recipe gathers over.

        An explicit ``mix`` wins; otherwise the paper-faithful default
        mix is extended so every recipe driver's trigger doc type is
        actually on the web.
        """
        if self.mix is not None:
            return dict(self.mix)
        mix = dict(CorpusConfig().mix)
        for driver_id in self.drivers:
            doc_type = DOC_TYPE_FOR_DRIVER[driver_id]
            mix.setdefault(doc_type, _DRIVER_MIX_WEIGHT)
        return mix


# -- schema validation --------------------------------------------------------

_TOP_LEVEL_FIELDS = {
    "name", "description", "drivers", "n_docs", "seed",
    "fault_profile", "mix", "top_k_per_query",
    "negative_sample_size", "planner", "alerts",
}
_PLANNER_FIELDS = {
    "enabled", "budget", "top_k", "max_queries", "max_candidates",
}
_ALERT_FIELDS = {"threshold", "cycles", "docs_per_cycle"}


def _check_int(
    data: Mapping[str, Any], key: str, problems: list[str],
    minimum: int = 1, prefix: str = "",
) -> None:
    value = data.get(key)
    if value is None:
        return
    if not isinstance(value, int) or isinstance(value, bool):
        problems.append(f"{prefix}{key} must be an integer")
    elif value < minimum:
        problems.append(f"{prefix}{key} must be >= {minimum}")


def validate_recipe_data(data: Any) -> list[str]:
    """Every schema problem in a parsed recipe document (empty = valid)."""
    if not isinstance(data, Mapping):
        return ["recipe must be a mapping of fields"]
    problems: list[str] = []
    for key in sorted(set(data) - _TOP_LEVEL_FIELDS):
        problems.append(f"unknown field {key!r}")

    name = data.get("name")
    if not isinstance(name, str) or not name.strip():
        problems.append("name is required and must be a non-empty string")

    drivers = data.get("drivers")
    if not isinstance(drivers, (list, tuple)) or not drivers:
        problems.append("drivers is required and must be a non-empty list")
    else:
        known = set(available_driver_ids())
        for driver_id in drivers:
            if driver_id not in known:
                problems.append(
                    f"unknown driver {driver_id!r}; "
                    f"available: {sorted(known)}"
                )

    _check_int(data, "n_docs", problems)
    _check_int(data, "seed", problems, minimum=0)
    _check_int(data, "top_k_per_query", problems)
    _check_int(data, "negative_sample_size", problems)

    profile = data.get("fault_profile")
    if profile is not None and profile not in profile_names():
        problems.append(
            f"unknown fault_profile {profile!r}; "
            f"available: {profile_names()}"
        )

    mix = data.get("mix")
    if mix is not None:
        if not isinstance(mix, Mapping):
            problems.append("mix must be a mapping of doc type -> weight")
        else:
            for doc_type, weight in mix.items():
                if doc_type not in DOC_TYPES:
                    problems.append(
                        f"mix references unknown doc type {doc_type!r}"
                    )
                if not isinstance(weight, (int, float)) or weight <= 0:
                    problems.append(
                        f"mix weight for {doc_type!r} must be > 0"
                    )

    planner = data.get("planner")
    if planner is not None:
        if not isinstance(planner, Mapping):
            problems.append("planner must be a mapping")
        else:
            for key in sorted(set(planner) - _PLANNER_FIELDS):
                problems.append(f"unknown planner field {key!r}")
            if "enabled" in planner and not isinstance(
                planner["enabled"], bool
            ):
                problems.append("planner.enabled must be a boolean")
            _check_int(planner, "budget", problems, prefix="planner.")
            _check_int(planner, "top_k", problems, prefix="planner.")
            _check_int(
                planner, "max_queries", problems, prefix="planner."
            )
            _check_int(
                planner, "max_candidates", problems, prefix="planner."
            )

    alerts = data.get("alerts")
    if alerts is not None:
        if not isinstance(alerts, Mapping):
            problems.append("alerts must be a mapping")
        else:
            for key in sorted(set(alerts) - _ALERT_FIELDS):
                problems.append(f"unknown alerts field {key!r}")
            threshold = alerts.get("threshold")
            if threshold is not None and (
                not isinstance(threshold, (int, float))
                or not 0.0 <= float(threshold) <= 1.0
            ):
                problems.append(
                    "alerts.threshold must be a number in [0, 1]"
                )
            _check_int(
                alerts, "cycles", problems, minimum=0, prefix="alerts."
            )
            _check_int(
                alerts, "docs_per_cycle", problems, prefix="alerts."
            )
    return problems


def recipe_from_data(data: Mapping[str, Any], source: str = "<data>") -> Recipe:
    """Validate a parsed recipe document and build the dataclass."""
    problems = validate_recipe_data(data)
    if problems:
        raise RecipeError(source, problems)
    planner = data.get("planner") or {}
    alerts = data.get("alerts") or {}
    return Recipe(
        name=data["name"],
        description=data.get("description", ""),
        drivers=tuple(data["drivers"]),
        n_docs=data.get("n_docs", 600),
        seed=data.get("seed", 7),
        fault_profile=data.get("fault_profile", "none"),
        mix=dict(data["mix"]) if data.get("mix") is not None else None,
        top_k_per_query=data.get("top_k_per_query", 40),
        negative_sample_size=data.get("negative_sample_size", 600),
        planner=PlannerSettings(
            enabled=planner.get("enabled", True),
            budget=planner.get("budget", 200),
            top_k=planner.get("top_k", 40),
            max_queries=planner.get("max_queries"),
            max_candidates=planner.get("max_candidates", 120),
        ),
        alerts=AlertSettings(
            threshold=alerts.get("threshold", 0.5),
            cycles=alerts.get("cycles", 1),
            docs_per_cycle=alerts.get("docs_per_cycle", 30),
        ),
    )


def load_recipe(path: str | Path) -> Recipe:
    """Load and validate a recipe from a YAML or JSON file."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise RecipeError(str(path), [f"cannot read file: {exc}"])
    if path.suffix in (".yaml", ".yml"):
        import yaml

        try:
            data = yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise RecipeError(str(path), [f"invalid YAML: {exc}"])
    else:
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise RecipeError(str(path), [f"invalid JSON: {exc}"])
    return recipe_from_data(data, source=str(path))


# -- execution ----------------------------------------------------------------

@dataclass
class DriverPlan:
    """Planner output for one driver within a recipe run."""

    driver_id: str
    planned: Portfolio
    baseline: Portfolio
    n_candidates: int

    @property
    def queries(self) -> tuple[str, ...]:
        return self.planned.queries


@dataclass
class RecipeResult:
    """Everything a recipe run produced."""

    recipe: Recipe
    documents_stored: int
    pages_fetched: int
    plans: dict[str, DriverPlan]
    events_per_driver: dict[str, int]
    alerts: list[Alert]
    cycles_run: int

    def render(self) -> str:
        lines = [
            f"recipe {self.recipe.name!r}: "
            f"{self.documents_stored} documents gathered "
            f"({self.pages_fetched} pages fetched)",
        ]
        if self.plans:
            lines.append(
                f"planned portfolios "
                f"(budget {self.recipe.planner.budget} pages):"
            )
            for plan in self.plans.values():
                planned, baseline = plan.planned, plan.baseline
                lines.append(
                    f"  {plan.driver_id:22s} "
                    f"{len(planned.selected):2d}/{plan.n_candidates:3d} "
                    f"queries  cost {planned.total_cost:4d}  "
                    f"P@B {planned.precision_at_budget:.3f}  "
                    f"(seeds: cost {baseline.total_cost:4d}, "
                    f"P@B {baseline.precision_at_budget:.3f})"
                )
        lines.append("trigger events per driver:")
        for driver_id, count in self.events_per_driver.items():
            lines.append(f"  {driver_id:22s} {count:4d}")
        lines.append(
            f"alerts minted over {self.cycles_run} cycle(s): "
            f"{len(self.alerts)}"
        )
        for alert in self.alerts[:5]:
            companies = ", ".join(alert.event.companies) or "-"
            lines.append(
                f"  {alert.alert_id}  [{alert.score:.2f}] "
                f"{alert.driver_id}  ({companies})"
            )
        return "\n".join(lines)


def plan_portfolios(
    etap: Etap,
    settings: PlannerSettings,
    weights: FeedbackWeights | None = None,
    tracer=None,
    event_log=None,
) -> dict[str, DriverPlan]:
    """Generate/evaluate/plan a portfolio for every driver of an Etap."""
    tracer = tracer or NULL_TRACER
    event_log = event_log or NULL_EVENT_LOG
    generator = CandidateGenerator(
        max_candidates=settings.max_candidates, tracer=tracer
    )
    evaluator = QueryEvaluator(
        etap.engine,
        StoreGroundTruth(etap.store),
        top_k=settings.top_k,
        tracer=tracer,
        event_log=event_log,
    )
    planner = PortfolioPlanner(
        config=PlannerConfig(
            budget=settings.budget, max_queries=settings.max_queries
        ),
        weights=weights,
        tracer=tracer,
        event_log=event_log,
    )
    plans: dict[str, DriverPlan] = {}
    for driver in etap.drivers:
        candidates = generator.generate(driver)
        evaluations = evaluator.evaluate_all(candidates)
        plans[driver.driver_id] = DriverPlan(
            driver_id=driver.driver_id,
            planned=planner.plan(driver.driver_id, evaluations),
            baseline=planner.baseline(driver.driver_id, evaluations),
            n_candidates=len(evaluations),
        )
    return plans


def run_recipe(
    recipe: Recipe,
    tracer=None,
    event_log=None,
    n_docs: int | None = None,
) -> RecipeResult:
    """Execute a recipe end to end; ``n_docs`` overrides the corpus size."""
    tracer = tracer or NULL_TRACER
    event_log = event_log or NULL_EVENT_LOG
    mix = recipe.corpus_mix()
    web = build_web(
        n_docs or recipe.n_docs,
        CorpusConfig(seed=recipe.seed, mix=mix),
    )
    if recipe.fault_profile != "none":
        web = FaultyWeb(
            web, get_profile(recipe.fault_profile), seed=recipe.seed
        )
    drivers = [get_driver(driver_id) for driver_id in recipe.drivers]
    etap = Etap.from_web(
        web,
        drivers=drivers,
        config=EtapConfig(
            top_k_per_query=recipe.top_k_per_query,
            negative_sample_size=recipe.negative_sample_size,
        ),
        tracer=tracer,
        event_log=event_log,
    )
    gather_report = etap.gather()

    plans: dict[str, DriverPlan] = {}
    if recipe.planner.enabled:
        plans = plan_portfolios(
            etap, recipe.planner, tracer=tracer, event_log=event_log
        )
        # Train on the planned portfolios; an empty portfolio (nothing
        # gained under this budget) falls back to the hand-written
        # seeds rather than training on nothing.
        etap.drivers = [
            dataclasses.replace(
                driver,
                smart_queries=plans[driver.driver_id].queries
                or driver.smart_queries,
            )
            for driver in etap.drivers
        ]

    etap.train()
    events = etap.extract_trigger_events()
    events_per_driver = {
        driver_id: len(items) for driver_id, items in events.items()
    }

    alerts: list[Alert] = []
    cycles = recipe.alerts.cycles
    if cycles > 0:
        service = AlertService(
            etap,
            threshold=recipe.alerts.threshold,
            event_log=event_log,
        )
        evolver = WebEvolver(
            web, CorpusConfig(seed=recipe.seed + 1, mix=mix)
        )
        for _ in range(cycles):
            evolver.advance(recipe.alerts.docs_per_cycle)
            alerts.extend(service.poll().alerts)

    return RecipeResult(
        recipe=recipe,
        documents_stored=gather_report.documents_stored,
        pages_fetched=gather_report.pages_fetched,
        plans=plans,
        events_per_driver=events_per_driver,
        alerts=alerts,
        cycles_run=cycles,
    )
