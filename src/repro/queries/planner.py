"""Greedy marginal-gain portfolio selection under a crawl budget.

Given a pool of evaluated candidates, the planner picks queries one at
a time by best *weighted marginal gain per page*: the sum of weights of
relevant documents a candidate would newly cover, divided by its page
cost.  Coverage gain is submodular (a document counts once), cost is
modular (each query's result pages are fetched when it runs), so the
greedy ratio sequence is non-increasing — the property suite pins this
along with the budget bound and determinism.

Analyst feedback closes the loop: :class:`FeedbackWeights` turns
:class:`~repro.core.feedback.FeedbackLoop` verdicts into per-document
weights, boosting documents whose snippets analysts confirmed and
discounting rejected ones, so the next planning round steers the
portfolio toward queries that found *validated* leads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.obs.events import NULL_EVENT_LOG
from repro.obs.tracer import NULL_TRACER
from repro.queries.evaluate import CandidateEvaluation, seed_evaluations


class FeedbackWeights:
    """Per-document relevance weights derived from analyst verdicts."""

    def __init__(
        self,
        weights: Mapping[tuple[str, str], float] | None = None,
        default: float = 1.0,
    ) -> None:
        self._weights = dict(weights or {})
        self.default = default

    @classmethod
    def from_feedback(
        cls,
        feedback,
        boost: float = 2.0,
        penalty: float = 0.25,
    ) -> "FeedbackWeights":
        """Build weights from a FeedbackLoop or an iterable of verdicts.

        A document with any confirmed snippet weighs ``boost``; one with
        only rejected snippets weighs ``penalty``; unseen documents keep
        the default weight 1.0.  Snippet ids are ``doc_id#index``, so
        the document is recoverable from every verdict.
        """
        all_verdicts = getattr(feedback, "all_verdicts", None)
        verdicts = all_verdicts() if callable(all_verdicts) else feedback
        confirmed: set[tuple[str, str]] = set()
        rejected: set[tuple[str, str]] = set()
        for verdict in verdicts:
            doc_id = verdict.snippet_id.rsplit("#", 1)[0]
            key = (verdict.driver_id, doc_id)
            if verdict.valid:
                confirmed.add(key)
            else:
                rejected.add(key)
        weights = {key: penalty for key in rejected - confirmed}
        weights.update({key: boost for key in confirmed})
        return cls(weights)

    def weight(self, driver_id: str, doc_id: str) -> float:
        return self._weights.get((driver_id, doc_id), self.default)


@dataclass(frozen=True)
class PlannerConfig:
    """Selection knobs: page budget and optional portfolio-size cap."""

    budget: int = 200
    max_queries: int | None = None

    def __post_init__(self) -> None:
        if self.budget < 0:
            raise ValueError("budget must be >= 0")
        if self.max_queries is not None and self.max_queries < 0:
            raise ValueError("max_queries must be >= 0")


@dataclass(frozen=True)
class SelectedQuery:
    """One portfolio member with its selection-time marginals."""

    evaluation: CandidateEvaluation
    marginal_gain: float
    marginal_cost: int
    cumulative_cost: int

    @property
    def gain_per_page(self) -> float:
        return (
            self.marginal_gain / self.marginal_cost
            if self.marginal_cost
            else 0.0
        )


@dataclass(frozen=True)
class Portfolio:
    """A selected query portfolio and its budgeted metrics."""

    driver_id: str
    budget: int
    selected: tuple[SelectedQuery, ...]
    covered: frozenset[str] = field(default_factory=frozenset)

    @property
    def queries(self) -> tuple[str, ...]:
        return tuple(
            item.evaluation.candidate.query for item in self.selected
        )

    @property
    def total_cost(self) -> int:
        return sum(item.marginal_cost for item in self.selected)

    @property
    def coverage(self) -> int:
        """Distinct relevant documents the portfolio retrieves."""
        return len(self.covered)

    @property
    def precision_at_budget(self) -> float:
        """Relevant docs covered per page fetched under the budget."""
        cost = self.total_cost
        return self.coverage / cost if cost else 0.0


class PortfolioPlanner:
    """Greedy weighted-marginal-gain selection under a page budget."""

    def __init__(
        self,
        config: PlannerConfig | None = None,
        weights: FeedbackWeights | None = None,
        tracer=None,
        event_log=None,
    ) -> None:
        self.config = config or PlannerConfig()
        self.weights = weights or FeedbackWeights()
        self.tracer = tracer or NULL_TRACER
        self.event_log = event_log or NULL_EVENT_LOG

    def _gain(
        self,
        driver_id: str,
        evaluation: CandidateEvaluation,
        covered: frozenset[str],
    ) -> float:
        return sum(
            self.weights.weight(driver_id, doc_id)
            for doc_id in evaluation.relevant
            if doc_id not in covered
        )

    def plan(
        self,
        driver_id: str,
        evaluations: Sequence[CandidateEvaluation],
    ) -> Portfolio:
        """Select a portfolio from evaluated candidates.

        Deterministic: ties on gain-per-page break by higher absolute
        gain, then lower cost, then query string.  Candidates with zero
        gain or zero cost are never selected; selection stops when the
        budget or ``max_queries`` is exhausted.
        """
        budget = self.config.budget
        remaining = list(evaluations)
        covered: frozenset[str] = frozenset()
        selected: list[SelectedQuery] = []
        spent = 0
        with self.tracer.span("queries.plan"):
            while remaining:
                if (
                    self.config.max_queries is not None
                    and len(selected) >= self.config.max_queries
                ):
                    break
                best = None
                best_key = None
                for evaluation in remaining:
                    cost = evaluation.cost
                    if cost == 0 or spent + cost > budget:
                        continue
                    gain = self._gain(driver_id, evaluation, covered)
                    if gain <= 0.0:
                        continue
                    key = (
                        -(gain / cost),
                        -gain,
                        cost,
                        evaluation.candidate.query,
                    )
                    if best_key is None or key < best_key:
                        best, best_key = evaluation, key
                if best is None:
                    break
                gain = self._gain(driver_id, best, covered)
                spent += best.cost
                covered = covered | best.relevant
                selected.append(
                    SelectedQuery(
                        evaluation=best,
                        marginal_gain=gain,
                        marginal_cost=best.cost,
                        cumulative_cost=spent,
                    )
                )
                remaining.remove(best)
        portfolio = Portfolio(
            driver_id=driver_id,
            budget=budget,
            selected=tuple(selected),
            covered=covered,
        )
        self._record(portfolio, n_candidates=len(evaluations))
        return portfolio

    def baseline(
        self,
        driver_id: str,
        evaluations: Sequence[CandidateEvaluation],
    ) -> Portfolio:
        """The paper's behavior under the same budget accounting: run
        the hand-written seed queries in their written order, stopping
        when the next one would blow the budget."""
        covered: frozenset[str] = frozenset()
        selected: list[SelectedQuery] = []
        spent = 0
        for evaluation in seed_evaluations(evaluations):
            cost = evaluation.cost
            if cost == 0 or spent + cost > self.config.budget:
                continue
            gain = self._gain(driver_id, evaluation, covered)
            spent += cost
            covered = covered | evaluation.relevant
            selected.append(
                SelectedQuery(
                    evaluation=evaluation,
                    marginal_gain=gain,
                    marginal_cost=cost,
                    cumulative_cost=spent,
                )
            )
        return Portfolio(
            driver_id=driver_id,
            budget=self.config.budget,
            selected=tuple(selected),
            covered=covered,
        )

    def _record(self, portfolio: Portfolio, n_candidates: int) -> None:
        self.tracer.count("queries.portfolios_selected")
        self.tracer.count(
            "queries.queries_selected", len(portfolio.selected)
        )
        self.tracer.count(
            "queries.pages_budgeted", portfolio.total_cost
        )
        self.event_log.emit(
            "portfolio_selected",
            driver_id=portfolio.driver_id,
            budget=portfolio.budget,
            n_candidates=n_candidates,
            n_selected=len(portfolio.selected),
            total_cost=portfolio.total_cost,
            precision_at_budget=round(
                portfolio.precision_at_budget, 4
            ),
        )


def plan_driver(
    driver,
    generator,
    evaluator,
    config: PlannerConfig | None = None,
    weights: FeedbackWeights | None = None,
    tracer=None,
    event_log=None,
) -> tuple[Portfolio, Portfolio, list[CandidateEvaluation]]:
    """Generate, evaluate, and plan one driver end to end.

    Returns ``(planned, baseline, evaluations)`` so callers can report
    the planner's lift over the hand-written seeds.
    """
    candidates = generator.generate(driver)
    evaluations = evaluator.evaluate_all(candidates)
    planner = PortfolioPlanner(
        config=config,
        weights=weights,
        tracer=tracer,
        event_log=event_log,
    )
    planned = planner.plan(driver.driver_id, evaluations)
    baseline = planner.baseline(driver.driver_id, evaluations)
    return planned, baseline, evaluations
