"""Candidate query generation: template expansion over driver lexicons.

The generator turns each driver's hand-written smart queries into the
*seed* candidates and expands a per-driver template set over slot
inventories — verb phrases from :mod:`repro.corpus.vocab`, orientation
phrases from :mod:`repro.core.lexicon`, and company-entity slots from
:mod:`repro.core.company` — into further candidates.  Expansion is
deterministic (registry order, no randomness) and deduplicated, so the
same driver always yields the same candidate list in the same order,
with the seeds first.
"""

from __future__ import annotations

import string
from dataclasses import dataclass, field
from itertools import product
from typing import Iterable, Mapping, Sequence

from repro.core.company import CompanyNormalizer
from repro.core.drivers import SalesDriver
from repro.core.lexicon import revenue_growth_lexicon
from repro.corpus import vocab
from repro.corpus.templates import (
    CHANGE_IN_MANAGEMENT,
    FUNDING_ROUNDS,
    LAYOFFS,
    MERGERS_ACQUISITIONS,
    REVENUE_GROWTH,
)
from repro.obs.tracer import NULL_TRACER

#: Where a candidate came from: a hand-written smart query or template
#: expansion.  Seeds always survive generation, so the planner's
#: baseline (the paper's behavior) is always in the candidate pool.
SOURCE_SEED = "seed"
SOURCE_TEMPLATE = "template"


@dataclass(frozen=True, slots=True)
class QueryCandidate:
    """One candidate smart query for a driver."""

    driver_id: str
    query: str
    source: str = SOURCE_TEMPLATE
    template: str = ""


@dataclass(frozen=True)
class DriverQueryLexicon:
    """Templates plus slot inventories for one driver's generator.

    ``templates`` are format strings whose ``{slot}`` placeholders are
    filled from ``slots``; quoting inside the template is passed through
    to the search engine verbatim, so ``'"{verb}"'`` yields phrase
    queries and ``'{company}'`` yields bare term queries.
    """

    driver_id: str
    templates: tuple[str, ...]
    slots: Mapping[str, tuple[str, ...]] = field(default_factory=dict)


def _head(items: Sequence[str], n: int) -> tuple[str, ...]:
    """The zipf-head of an inventory: the first ``n`` entries."""
    return tuple(items[:n])


def entity_slot_companies(
    n: int = 6, normalizer: CompanyNormalizer | None = None
) -> tuple[str, ...]:
    """Company-entity slot values: the most-mentioned organizations.

    The paper queries recent event *instances* ("IBM Daksh"); the
    synthetic analogue is the zipf head of the organization inventory,
    run through :class:`~repro.core.company.CompanyNormalizer` so slot
    values are canonical display names.
    """
    normalizer = normalizer or CompanyNormalizer()
    names = []
    for company in _head(vocab.ORGANIZATIONS, n):
        key = normalizer.register(company)
        names.append(normalizer.display_name(key))
    return tuple(names)


def _orientation_phrases() -> tuple[str, ...]:
    """Strong orientation phrases from the revenue-growth lexicon."""
    lexicon = revenue_growth_lexicon()
    return tuple(
        phrase
        for phrase, weight in sorted(lexicon.weights.items())
        if abs(weight) >= 2.0
    )


def default_lexicons(
    companies: Sequence[str] | None = None,
) -> dict[str, DriverQueryLexicon]:
    """The shipped per-driver template sets.

    ``companies`` overrides the company-entity slot (defaults to the
    zipf head of the organization inventory).
    """
    company_slot = tuple(companies or entity_slot_companies())
    return {
        MERGERS_ACQUISITIONS: DriverQueryLexicon(
            driver_id=MERGERS_ACQUISITIONS,
            templates=(
                '"{acq_verb}"',
                '"{acq_noun}"',
                '{company} "{acq_short}"',
            ),
            slots={
                "acq_verb": tuple(vocab.ACQUISITION_VERBS),
                "acq_noun": (
                    "tender offer", "all-stock transaction",
                    "definitive merger agreement", "approved the merger",
                    "acquisition of",
                ),
                "acq_short": ("acquire", "merger", "takeover"),
                "company": company_slot,
            },
        ),
        CHANGE_IN_MANAGEMENT: DriverQueryLexicon(
            driver_id=CHANGE_IN_MANAGEMENT,
            templates=(
                '"{appoint_verb}"',
                '"new {title}"',
                '"{depart_verb}"',
                '{company} "{title}"',
            ),
            slots={
                "appoint_verb": tuple(vocab.APPOINTMENT_VERBS),
                "depart_verb": tuple(vocab.DEPARTURE_VERBS),
                "title": ("ceo", "cto", "cfo", "coo", "president"),
                "company": company_slot,
            },
        ),
        REVENUE_GROWTH: DriverQueryLexicon(
            driver_id=REVENUE_GROWTH,
            templates=(
                '"{growth_verb} {growth_noun}"',
                '"{orientation}"',
                '"{growth_noun}"',
            ),
            slots={
                "growth_verb": tuple(vocab.GROWTH_VERBS),
                "growth_noun": tuple(vocab.GROWTH_NOUNS),
                "orientation": _orientation_phrases(),
            },
        ),
        FUNDING_ROUNDS: DriverQueryLexicon(
            driver_id=FUNDING_ROUNDS,
            templates=(
                '"{fund_verb}"',
                '"{round} funding"',
                '"{round} round"',
                '"{fund_noun}"',
                '{investor}',
            ),
            slots={
                "fund_verb": tuple(vocab.FUNDING_VERBS),
                "round": tuple(
                    name.lower() for name in vocab.FUNDING_ROUND_NAMES
                ),
                "fund_noun": (
                    "funding round", "new funding", "financing",
                    "valuation", "capital raised",
                ),
                "investor": tuple(vocab.INVESTOR_NAMES),
            },
        ),
        LAYOFFS: DriverQueryLexicon(
            driver_id=LAYOFFS,
            templates=(
                '"{layoff_verb}"',
                '"{layoff_noun}"',
            ),
            slots={
                "layoff_verb": tuple(vocab.LAYOFF_VERBS),
                "layoff_noun": (
                    "layoffs", "job cuts", "of its workforce",
                    "reduce headcount", "restructuring",
                    "cost-cutting", "announced layoffs",
                ),
            },
        ),
    }


def _expand_template(
    template: str, slots: Mapping[str, tuple[str, ...]]
) -> Iterable[str]:
    """All fillings of a template's slots, in inventory order."""
    names = [
        name
        for _, name, _, _ in string.Formatter().parse(template)
        if name
    ]
    if not names:
        yield template
        return
    for name in names:
        if name not in slots:
            raise KeyError(
                f"template {template!r} references unknown slot "
                f"{name!r}; known: {sorted(slots)}"
            )
    for values in product(*(slots[name] for name in names)):
        yield template.format(**dict(zip(names, values)))


class CandidateGenerator:
    """Deterministic, deduplicated candidate expansion per driver."""

    def __init__(
        self,
        lexicons: Mapping[str, DriverQueryLexicon] | None = None,
        max_candidates: int = 120,
        tracer=None,
    ) -> None:
        self.lexicons = (
            dict(lexicons) if lexicons is not None else default_lexicons()
        )
        self.max_candidates = max_candidates
        self.tracer = tracer or NULL_TRACER

    def generate(self, driver: SalesDriver) -> list[QueryCandidate]:
        """Candidates for one driver: seeds first, then expansions.

        Deduplication is by exact query string, first occurrence wins —
        so a template expansion that reproduces a hand-written seed is
        folded into the seed, never duplicated.  ``max_candidates``
        truncates the template tail; seeds are never dropped.
        """
        seen: set[str] = set()
        candidates: list[QueryCandidate] = []
        for query in driver.smart_queries:
            if query in seen:
                continue
            seen.add(query)
            candidates.append(
                QueryCandidate(
                    driver_id=driver.driver_id,
                    query=query,
                    source=SOURCE_SEED,
                )
            )
        lexicon = self.lexicons.get(driver.driver_id)
        if lexicon is not None:
            for template in lexicon.templates:
                for query in _expand_template(template, lexicon.slots):
                    if len(candidates) >= self.max_candidates:
                        break
                    if query in seen:
                        continue
                    seen.add(query)
                    candidates.append(
                        QueryCandidate(
                            driver_id=driver.driver_id,
                            query=query,
                            source=SOURCE_TEMPLATE,
                            template=template,
                        )
                    )
        self.tracer.count(
            "queries.candidates_generated", len(candidates)
        )
        return candidates
