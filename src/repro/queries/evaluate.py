"""Candidate evaluation: coverage, precision, and crawl cost.

Each candidate runs through the real :class:`~repro.search.engine.
SearchEngine` over the gathered collection; relevance is read from the
ground truth the gather stage already stores — every
:class:`~repro.gather.store.StoredDocument` carries its ``doc_type``
in metadata, and :func:`~repro.corpus.generator.driver_for_doc_type`
maps trigger doc types to drivers.  Cost is the crawl-budget unit used
by :mod:`repro.gather`: pages fetched, i.e. one page per retrieved
result a downstream pipeline would pull.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.corpus.generator import driver_for_doc_type
from repro.gather.store import DocumentStore
from repro.obs.events import NULL_EVENT_LOG
from repro.obs.tracer import NULL_TRACER
from repro.queries.generate import QueryCandidate
from repro.search.engine import SearchEngine


class StoreGroundTruth:
    """Driver-relevance labels read from a gathered document store."""

    def __init__(self, store: DocumentStore) -> None:
        self._driver_of: dict[str, str] = {}
        for document in store:
            driver_id = driver_for_doc_type(
                document.metadata.get("doc_type", "")
            )
            if driver_id is not None:
                self._driver_of[document.doc_id] = driver_id

    def is_relevant(self, driver_id: str, doc_id: str) -> bool:
        return self._driver_of.get(doc_id) == driver_id

    def relevant_docs(self, driver_id: str) -> frozenset[str]:
        """All stored documents carrying this driver's trigger events."""
        return frozenset(
            doc_id
            for doc_id, driver in self._driver_of.items()
            if driver == driver_id
        )


@dataclass(frozen=True)
class CandidateEvaluation:
    """One candidate's measured coverage / precision / cost."""

    candidate: QueryCandidate
    docs: tuple[str, ...]
    relevant: frozenset[str]

    @property
    def cost(self) -> int:
        """Pages fetched if this query's results are crawled."""
        return len(self.docs)

    @property
    def coverage(self) -> int:
        """Distinct relevant documents retrieved."""
        return len(self.relevant)

    @property
    def precision(self) -> float:
        return self.coverage / self.cost if self.cost else 0.0


class QueryEvaluator:
    """Runs candidates through the engine and scores them."""

    def __init__(
        self,
        engine: SearchEngine,
        ground_truth: StoreGroundTruth,
        top_k: int = 40,
        tracer=None,
        event_log=None,
    ) -> None:
        self.engine = engine
        self.ground_truth = ground_truth
        self.top_k = top_k
        self.tracer = tracer or NULL_TRACER
        self.event_log = event_log or NULL_EVENT_LOG

    def evaluate(self, candidate: QueryCandidate) -> CandidateEvaluation:
        results = self.engine.search(candidate.query, top_k=self.top_k)
        docs = tuple(result.doc_key for result in results)
        relevant = frozenset(
            doc_id
            for doc_id in docs
            if self.ground_truth.is_relevant(candidate.driver_id, doc_id)
        )
        evaluation = CandidateEvaluation(
            candidate=candidate, docs=docs, relevant=relevant
        )
        self.tracer.count("queries.candidates_evaluated")
        self.event_log.emit(
            "query_candidate_evaluated",
            driver_id=candidate.driver_id,
            query=candidate.query,
            source=candidate.source,
            coverage=evaluation.coverage,
            precision=round(evaluation.precision, 4),
            cost=evaluation.cost,
        )
        return evaluation

    def evaluate_all(
        self, candidates: Iterable[QueryCandidate]
    ) -> list[CandidateEvaluation]:
        with self.tracer.span("queries.evaluate"):
            return [self.evaluate(c) for c in candidates]


def seed_evaluations(
    evaluations: Sequence[CandidateEvaluation],
) -> list[CandidateEvaluation]:
    """The subset of evaluations for hand-written seed queries."""
    return [
        evaluation
        for evaluation in evaluations
        if evaluation.candidate.source == "seed"
    ]
