"""Experiment runners — one per table/figure in the paper's evaluation.

Each runner returns a structured result object and can render itself as
text; the benchmark harness in ``benchmarks/`` wraps these with
pytest-benchmark so every table and figure has a regenerating bench.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.drivers import get_driver
from repro.core.ranking import TriggerEvent
from repro.evaluation.datasets import (
    DatasetSpec,
    EvaluationDataset,
    build_evaluation_dataset,
)
from repro.evaluation.reporting import ascii_table, format_float, log_bar_chart
from repro.features.abstraction import AbstractionAnalyzer, RigComparison
from repro.ml.metrics import PrecisionRecallF1, precision_recall_f1
from repro.corpus.templates import (
    CHANGE_IN_MANAGEMENT,
    MERGERS_ACQUISITIONS,
    REVENUE_GROWTH,
)

#: The paper's Table 1, for side-by-side comparison in reports.
PAPER_TABLE1 = {
    MERGERS_ACQUISITIONS: PrecisionRecallF1(0.744, 0.806, 0.773),
    CHANGE_IN_MANAGEMENT: PrecisionRecallF1(0.656, 0.786, 0.715),
}


# ---------------------------------------------------------------------------
# Table 1 — precision / recall / F1 per driver
# ---------------------------------------------------------------------------

@dataclass
class Table1Row:
    driver_id: str
    driver_name: str
    precision: float
    recall: float
    f1: float


@dataclass
class Table1Result:
    rows: list[Table1Row] = field(default_factory=list)

    def render(self) -> str:
        rows = []
        for row in self.rows:
            paper = PAPER_TABLE1.get(row.driver_id)
            rows.append(
                [
                    row.driver_name,
                    format_float(row.precision),
                    format_float(row.recall),
                    format_float(row.f1),
                    format_float(paper.f1) if paper else "-",
                ]
            )
        return ascii_table(
            ["Sales driver", "Precision", "Recall", "F1", "Paper F1"],
            rows,
        )

    def f1_of(self, driver_id: str) -> float:
        for row in self.rows:
            if row.driver_id == driver_id:
                return row.f1
        raise KeyError(driver_id)


def run_table1(
    dataset: EvaluationDataset | None = None,
    spec: DatasetSpec | None = None,
    drivers: tuple[str, ...] = (
        MERGERS_ACQUISITIONS,
        CHANGE_IN_MANAGEMENT,
    ),
) -> Table1Result:
    """Train per section 3.3 and evaluate on the common test set.

    The paper's Table 1 covers the M&A and change-in-management drivers;
    pass ``drivers`` to include revenue growth as well.
    """
    dataset = dataset or build_evaluation_dataset(spec)
    etap = dataset.etap
    if not etap.classifiers:
        etap.train(pure_positive=dataset.pure_positive)
    result = Table1Result()
    for driver_id in drivers:
        predictions = etap.classifiers[driver_id].predict(
            dataset.test_items
        )
        measured = precision_recall_f1(
            dataset.test_labels[driver_id], predictions
        )
        result.rows.append(
            Table1Row(
                driver_id=driver_id,
                driver_name=get_driver(driver_id).name,
                precision=measured.precision,
                recall=measured.recall,
                f1=measured.f1,
            )
        )
    return result


# ---------------------------------------------------------------------------
# Figures 3 & 4 — PA vs IV relative information gain per category
# ---------------------------------------------------------------------------

@dataclass
class RigFigureResult:
    driver_id: str
    comparisons: list[RigComparison]

    def render(self) -> str:
        labels = [item.category for item in self.comparisons]
        series = {
            "PA": [item.rig_pa for item in self.comparisons],
            "IV": [item.rig_iv for item in self.comparisons],
        }
        chart = log_bar_chart(labels, series)
        table = ascii_table(
            ["Category", "RIG(PA)", "RIG(IV)", "Choose"],
            [
                [
                    item.category,
                    format_float(item.rig_pa, 5),
                    format_float(item.rig_iv, 5),
                    "abstract" if item.prefer_abstraction else "keep words",
                ]
                for item in self.comparisons
            ],
        )
        return f"{table}\n\n{chart}"

    def comparison(self, category: str) -> RigComparison:
        for item in self.comparisons:
            if item.category == category:
                return item
        raise KeyError(category)


def run_rig_figure(
    driver_id: str,
    dataset: EvaluationDataset | None = None,
    spec: DatasetSpec | None = None,
    smoothing: float = 1.0,
) -> RigFigureResult:
    """Figure 3 (M&A) or Figure 4 (change in management).

    The paper computes the figures over "the pure positive and negative
    classes ... generation ... is described in Section 3.3.1" — i.e. the
    filtered smart-query positives plus the random negative sample.  We
    use the same: the driver's (filtered) noisy-positive snippets plus
    the hand-labeled pure positives form the positive class; the test
    negatives form the negative class.
    """
    dataset = dataset or build_evaluation_dataset(spec)
    etap = dataset.etap
    from repro.core.drivers import get_driver as _get_driver

    noisy, _ = etap.training.noisy_positive(
        _get_driver(driver_id),
        top_k_per_query=etap.config.top_k_per_query,
    )
    positives = (
        list(noisy)
        + dataset.pure_positive[driver_id]
        + dataset.positives(driver_id)
    )
    negatives = [
        item
        for item, label in zip(
            dataset.test_items, dataset.test_labels[driver_id]
        )
        if label == 0
    ]
    texts = [item.annotated for item in positives + negatives]
    labels = [1] * len(positives) + [0] * len(negatives)
    analyzer = AbstractionAnalyzer(smoothing=smoothing)
    return RigFigureResult(
        driver_id=driver_id,
        comparisons=analyzer.compare_all(texts, labels),
    )


def run_figure3(**kwargs) -> RigFigureResult:
    return run_rig_figure(MERGERS_ACQUISITIONS, **kwargs)


def run_figure4(**kwargs) -> RigFigureResult:
    return run_rig_figure(CHANGE_IN_MANAGEMENT, **kwargs)


# ---------------------------------------------------------------------------
# Figures 5 & 6 — what a smart query returns: triggers and noise
# ---------------------------------------------------------------------------

@dataclass
class Figure56Result:
    query: str
    kept_snippets: list[str]
    rejected_snippets: list[str]

    def render(self, limit: int = 5) -> str:
        lines = [f'Query: {self.query}', "", "Trigger snippets (Figure 5):"]
        lines += [f"  + {text}" for text in self.kept_snippets[:limit]]
        lines += ["", "Noise snippets on the same pages (Figure 6):"]
        lines += [f"  - {text}" for text in self.rejected_snippets[:limit]]
        return "\n".join(lines)


def run_figure5_6(
    dataset: EvaluationDataset | None = None,
    spec: DatasetSpec | None = None,
    driver_id: str = CHANGE_IN_MANAGEMENT,
    query: str = '"new ceo"',
    top_k: int = 20,
) -> Figure56Result:
    """Reproduce the Figure 5/6 observation for the ``"new ceo"`` query:
    hit pages contain both genuine trigger snippets (pass the driver's
    filter) and noise snippets (rejected by it)."""
    dataset = dataset or build_evaluation_dataset(spec)
    etap = dataset.etap
    driver = get_driver(driver_id)
    kept: list[str] = []
    rejected: list[str] = []
    for hit in etap.engine.search(query, top_k=top_k):
        snippets = etap.training.snippets_of_document(hit.doc_key)
        for item in etap.training.annotate_snippets(snippets):
            if driver.snippet_filter(item.annotated):
                kept.append(item.snippet.text)
            else:
                rejected.append(item.snippet.text)
    return Figure56Result(
        query=query, kept_snippets=kept, rejected_snippets=rejected
    )


# ---------------------------------------------------------------------------
# Figures 7 & 8 — ranked ETAP output
# ---------------------------------------------------------------------------

@dataclass
class RankedOutputResult:
    driver_id: str
    events: list[TriggerEvent]

    def render(self, limit: int = 10) -> str:
        rows = [
            [
                event.rank,
                format_float(event.score),
                ", ".join(event.companies) or "-",
                _shorten(event.text),
            ]
            for event in self.events[:limit]
        ]
        return ascii_table(["Rank", "Score", "Companies", "Snippet"], rows)


def run_figure7(
    dataset: EvaluationDataset | None = None,
    spec: DatasetSpec | None = None,
) -> RankedOutputResult:
    """Change-in-management trigger events ranked by classifier score."""
    dataset = dataset or build_evaluation_dataset(spec)
    etap = dataset.etap
    if not etap.classifiers:
        etap.train(pure_positive=dataset.pure_positive)
    events = etap.extract_trigger_events()
    return RankedOutputResult(
        driver_id=CHANGE_IN_MANAGEMENT,
        events=events[CHANGE_IN_MANAGEMENT],
    )


def run_figure8(
    dataset: EvaluationDataset | None = None,
    spec: DatasetSpec | None = None,
) -> RankedOutputResult:
    """Revenue-growth trigger events ranked by semantic orientation."""
    dataset = dataset or build_evaluation_dataset(spec)
    etap = dataset.etap
    if not etap.classifiers:
        etap.train(pure_positive=dataset.pure_positive)
    events = etap.extract_trigger_events()
    reranked = etap.rank_by_semantic_orientation(events[REVENUE_GROWTH])
    return RankedOutputResult(driver_id=REVENUE_GROWTH, events=reranked)


# ---------------------------------------------------------------------------
# Equation 2 — company-level MRR report
# ---------------------------------------------------------------------------

@dataclass
class CompanyRankingResult:
    scores: list

    def render(self, limit: int = 10) -> str:
        rows = [
            [
                position,
                score.company,
                format_float(score.mrr),
                score.n_trigger_events,
            ]
            for position, score in enumerate(
                self.scores[:limit], start=1
            )
        ]
        return ascii_table(
            ["#", "Company", "MRR", "Trigger events"], rows
        )


def run_company_ranking(
    dataset: EvaluationDataset | None = None,
    spec: DatasetSpec | None = None,
) -> CompanyRankingResult:
    """Rank companies by Equation 2 across all three drivers."""
    dataset = dataset or build_evaluation_dataset(spec)
    etap = dataset.etap
    if not etap.classifiers:
        etap.train(pure_positive=dataset.pure_positive)
    events = etap.extract_trigger_events()
    return CompanyRankingResult(scores=etap.company_report(events))


def _shorten(text: str, limit: int = 70) -> str:
    return text if len(text) <= limit else text[: limit - 3] + "..."
