"""Experimental datasets mirroring section 5.1 of the paper.

The paper's setup: noisy positive data from five smart queries per driver
(top 200 documents each), a large random negative sample, a small
hand-labeled pure-positive set per driver, and a common test set of
72 M&A positives, 56 change-in-management positives and 2265 snippets
belonging to neither.  :func:`build_evaluation_dataset` reproduces that
setup over the synthetic web: the web itself feeds gathering/training,
and a disjoint held-out generation (different seed, distinct doc-id
namespace) supplies the labeled pure-positive and test snippets.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field

import numpy as np

from repro.core.etap import Etap, EtapConfig
from repro.core.snippets import Snippet, SnippetGenerator
from repro.core.training import AnnotatedSnippet
from repro.corpus.generator import CorpusConfig, CorpusGenerator, Document
from repro.corpus.templates import (
    CHANGE_IN_MANAGEMENT,
    MERGERS_ACQUISITIONS,
    REVENUE_GROWTH,
)
from repro.corpus.web import build_web
from repro.text.annotator import Annotator


@dataclass
class EvaluationDataset:
    """Everything an experiment needs, pre-annotated."""

    etap: Etap
    pure_positive: dict[str, list[AnnotatedSnippet]]
    test_items: list[AnnotatedSnippet]
    test_labels: dict[str, np.ndarray]

    def positives(self, driver_id: str) -> list[AnnotatedSnippet]:
        labels = self.test_labels[driver_id]
        return [
            item for item, label in zip(self.test_items, labels) if label
        ]


@dataclass(frozen=True)
class DatasetSpec:
    """Sizes for one experimental run (paper's numbers by default)."""

    n_web_docs: int = 3000
    n_pure_positive: int = 40
    n_test_positive_ma: int = 72
    n_test_positive_cim: int = 56
    n_test_positive_rg: int = 60
    n_test_negative: int = 2265
    seed: int = 7
    config: EtapConfig = field(default_factory=EtapConfig)
    #: Named fault profile (see :data:`repro.robustness.PROFILES`)
    #: injected into the gathering web; "none" keeps it failure-free.
    fault_profile: str = "none"

    @classmethod
    def small(cls) -> "DatasetSpec":
        """A fast profile for unit tests and smoke benches."""
        return cls(
            n_web_docs=600,
            n_pure_positive=15,
            n_test_positive_ma=20,
            n_test_positive_cim=20,
            n_test_positive_rg=20,
            n_test_negative=300,
            config=EtapConfig(
                top_k_per_query=60, negative_sample_size=1200
            ),
        )


_POSITIVE_DOC_TYPE = {
    MERGERS_ACQUISITIONS: "ma_news",
    CHANGE_IN_MANAGEMENT: "cim_news",
    REVENUE_GROWTH: "rg_news",
}
# Test negatives follow a plausible web mix: mostly off-topic pages,
# with business-flavoured near-positives (biographies, retrospectives,
# reviews) as the hard minority — the paper's 2265 negatives were random
# snippets "that did not belong to either of the two sales drivers".
# Mirrors the non-trigger portion of the default web mix, so the test
# negatives are a faithful random sample of "snippets that do not belong
# to either sales driver": mostly off-topic, with corporate boilerplate
# and the hard near-positive confusers (biographies, retrospectives) at
# their natural web density.
# Biographies and historical retrospectives — the paper's "misleading
# trigger events" — appear at their (low) natural density in a random
# sample of non-trigger snippets; they nevertheless account for most of
# the classifier's false positives, exactly as section 5.2 reports.
_NEGATIVE_MIX = {
    "company_profile": 0.535,
    "background": 0.27,
    "product_review": 0.175,
    "biography": 0.015,
    "retrospective": 0.005,
}


def _holdout_snippets(
    generator: CorpusGenerator,
    doc_type: str,
    windower: SnippetGenerator,
    wanted: int,
    keep,
    prefix: str,
) -> list[Snippet]:
    """Generate held-out docs of ``doc_type`` until ``wanted`` snippets
    satisfying ``keep`` have been collected."""
    collected: list[Snippet] = []
    guard = 0
    while len(collected) < wanted and guard < wanted * 40 + 200:
        guard += 1
        document = generator.generate_document(doc_type)
        document = dataclasses.replace(
            document, doc_id=f"{prefix}-{document.doc_id}"
        )
        for snippet in windower.from_document(document):
            if keep(snippet) and len(collected) < wanted:
                collected.append(snippet)
    if len(collected) < wanted:
        raise RuntimeError(
            f"could not collect {wanted} held-out snippets of {doc_type}"
        )
    return collected


def build_evaluation_dataset(
    spec: DatasetSpec | None = None,
) -> EvaluationDataset:
    """Construct the full section 5.1 experimental setup."""
    spec = spec or DatasetSpec()
    web = build_web(spec.n_web_docs, CorpusConfig(seed=spec.seed))
    if spec.fault_profile != "none":
        from repro.robustness import FaultyWeb, get_profile

        web = FaultyWeb(
            web, get_profile(spec.fault_profile), seed=spec.seed
        )
    etap = Etap.from_web(web, config=spec.config)
    etap.gather()

    holdout = CorpusGenerator(CorpusConfig(seed=spec.seed + 1000))
    windower = SnippetGenerator(window=spec.config.snippet_window)
    annotator = Annotator(spec.config.ner)

    def annotate(snippets: list[Snippet]) -> list[AnnotatedSnippet]:
        return [
            AnnotatedSnippet(
                snippet=snippet,
                annotated=annotator.annotate(snippet.text),
            )
            for snippet in snippets
        ]

    pure_positive: dict[str, list[AnnotatedSnippet]] = {}
    test_positive: dict[str, list[AnnotatedSnippet]] = {}
    wanted_test = {
        MERGERS_ACQUISITIONS: spec.n_test_positive_ma,
        CHANGE_IN_MANAGEMENT: spec.n_test_positive_cim,
        REVENUE_GROWTH: spec.n_test_positive_rg,
    }
    for driver_id, doc_type in _POSITIVE_DOC_TYPE.items():
        total = spec.n_pure_positive + wanted_test[driver_id]
        snippets = _holdout_snippets(
            holdout,
            doc_type,
            windower,
            total,
            keep=lambda s, d=driver_id: s.is_positive_for(d),
            prefix="holdout",
        )
        pure_positive[driver_id] = annotate(
            snippets[: spec.n_pure_positive]
        )
        test_positive[driver_id] = annotate(
            snippets[spec.n_pure_positive :]
        )

    rng = random.Random(spec.seed + 2000)
    negative_snippets: list[Snippet] = []
    for doc_type, fraction in _NEGATIVE_MIX.items():
        wanted = int(spec.n_test_negative * fraction) + 1
        negative_snippets.extend(
            _holdout_snippets(
                holdout,
                doc_type,
                windower,
                wanted,
                keep=lambda s: not s.true_drivers,
                prefix="holdneg",
            )
        )
    rng.shuffle(negative_snippets)
    test_negative = annotate(negative_snippets[: spec.n_test_negative])

    # Common test pool: all positives of every driver + shared negatives,
    # exactly the paper's "common test data for the classifiers".
    test_items: list[AnnotatedSnippet] = []
    for driver_id in _POSITIVE_DOC_TYPE:
        test_items.extend(test_positive[driver_id])
    test_items.extend(test_negative)

    test_labels = {
        driver_id: np.array(
            [
                1 if item.snippet.is_positive_for(driver_id) else 0
                for item in test_items
            ],
            dtype=np.int64,
        )
        for driver_id in _POSITIVE_DOC_TYPE
    }
    return EvaluationDataset(
        etap=etap,
        pure_positive=pure_positive,
        test_items=test_items,
        test_labels=test_labels,
    )
