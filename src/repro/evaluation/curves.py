"""Precision-recall curves and threshold selection.

The paper reports a single operating point per driver (Table 1); for a
deployed ETAP the analyst chooses the precision/recall trade-off by
thresholding the classifier's posterior.  This module sweeps the
threshold, renders the curve, and picks the F1-optimal operating point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.ml.metrics import precision_recall_f1


@dataclass(frozen=True, slots=True)
class CurvePoint:
    """One operating point on the PR curve."""

    threshold: float
    precision: float
    recall: float
    f1: float


def precision_recall_curve(
    y_true: Sequence[int],
    scores: Sequence[float],
    thresholds: Sequence[float] | None = None,
) -> list[CurvePoint]:
    """Operating points over a threshold sweep (descending recall).

    Default thresholds: the deciles of the observed scores plus the
    conventional 0.5, deduplicated.
    """
    y_true = np.asarray(y_true, dtype=np.int64)
    scores = np.asarray(scores, dtype=np.float64)
    if y_true.shape != scores.shape:
        raise ValueError("y_true and scores must align")
    if thresholds is None:
        deciles = np.unique(
            np.percentile(scores, np.arange(0, 101, 10))
        )
        thresholds = sorted(set(np.round(deciles, 6)) | {0.5})
    points = []
    for threshold in thresholds:
        predictions = (scores >= threshold).astype(np.int64)
        measured = precision_recall_f1(y_true, predictions)
        points.append(
            CurvePoint(
                threshold=float(threshold),
                precision=measured.precision,
                recall=measured.recall,
                f1=measured.f1,
            )
        )
    return points


def best_operating_point(points: Sequence[CurvePoint]) -> CurvePoint:
    """The F1-maximizing point (ties: lower threshold, more recall)."""
    if not points:
        raise ValueError("no curve points given")
    return max(points, key=lambda p: (p.f1, -p.threshold))


def render_curve(points: Sequence[CurvePoint], width: int = 30) -> str:
    """ASCII rendering: one row per threshold with a precision bar."""
    lines = [f"{'thr':>8s} {'P':>6s} {'R':>6s} {'F1':>6s}  precision"]
    for point in points:
        bar = "#" * int(round(point.precision * width))
        lines.append(
            f"{point.threshold:8.3f} {point.precision:6.3f} "
            f"{point.recall:6.3f} {point.f1:6.3f}  |{bar}"
        )
    return "\n".join(lines)
