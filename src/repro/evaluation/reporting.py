"""ASCII rendering of experiment outputs (tables and log-bar charts).

The benchmark harness prints the same rows/series the paper reports;
these helpers keep that presentation consistent across benches.
"""

from __future__ import annotations

import math
from typing import Sequence


def ascii_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render a fixed-width table with a header rule."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for column, value in enumerate(row):
            widths[column] = max(widths[column], len(value))

    def render_row(values: Sequence[str]) -> str:
        return " | ".join(
            value.ljust(widths[column])
            for column, value in enumerate(values)
        )

    rule = "-+-".join("-" * width for width in widths)
    lines = [render_row(list(headers)), rule]
    lines.extend(render_row(row) for row in cells)
    return "\n".join(lines)


def log_bar_chart(
    labels: Sequence[str],
    series: dict[str, Sequence[float]],
    width: int = 40,
    floor: float = 1e-6,
) -> str:
    """Horizontal bars of log10(value), like the Y axes of Figures 3-4.

    Each label gets one bar per series; values at or below ``floor``
    render as empty bars.
    """
    if not series:
        return ""
    floors = [
        max(float(value), floor)
        for values in series.values()
        for value in values
    ]
    log_values = [math.log10(value) for value in floors]
    low, high = min(log_values), max(log_values)
    span = (high - low) or 1.0

    lines = []
    label_width = max((len(label) for label in labels), default=0)
    name_width = max(len(name) for name in series)
    for index, label in enumerate(labels):
        for name, values in series.items():
            value = max(float(values[index]), floor)
            filled = int(
                round((math.log10(value) - low) / span * width)
            )
            bar = "#" * filled
            lines.append(
                f"{label.ljust(label_width)} {name.ljust(name_width)} "
                f"|{bar.ljust(width)}| log10={math.log10(value):7.3f}"
            )
        lines.append("")
    return "\n".join(lines).rstrip()


def format_float(value: float, digits: int = 3) -> str:
    return f"{value:.{digits}f}"
