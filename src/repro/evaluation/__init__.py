"""Evaluation harness: datasets, experiment runners, reporting."""

from repro.evaluation.curves import (
    CurvePoint,
    best_operating_point,
    precision_recall_curve,
    render_curve,
)
from repro.evaluation.datasets import (
    DatasetSpec,
    EvaluationDataset,
    build_evaluation_dataset,
)
from repro.evaluation.experiments import (
    PAPER_TABLE1,
    CompanyRankingResult,
    Figure56Result,
    RankedOutputResult,
    RigFigureResult,
    Table1Result,
    run_company_ranking,
    run_figure3,
    run_figure4,
    run_figure5_6,
    run_figure7,
    run_figure8,
    run_rig_figure,
    run_table1,
)
from repro.evaluation.error_analysis import (
    ErrorReport,
    analyze_errors,
    classify_false_positive,
)
from repro.evaluation.report import generate_report, write_report
from repro.evaluation.significance import (
    BootstrapInterval,
    McNemarResult,
    bootstrap_f1_interval,
    mcnemar_test,
)
from repro.evaluation.reporting import ascii_table, format_float, log_bar_chart

__all__ = [
    "BootstrapInterval",
    "CompanyRankingResult",
    "CurvePoint",
    "ErrorReport",
    "McNemarResult",
    "analyze_errors",
    "classify_false_positive",
    "bootstrap_f1_interval",
    "mcnemar_test",
    "best_operating_point",
    "precision_recall_curve",
    "render_curve",
    "DatasetSpec",
    "EvaluationDataset",
    "Figure56Result",
    "PAPER_TABLE1",
    "RankedOutputResult",
    "RigFigureResult",
    "Table1Result",
    "ascii_table",
    "build_evaluation_dataset",
    "format_float",
    "generate_report",
    "log_bar_chart",
    "write_report",
    "run_company_ranking",
    "run_figure3",
    "run_figure4",
    "run_figure5_6",
    "run_figure7",
    "run_figure8",
    "run_rig_figure",
    "run_table1",
]
