"""Automated error analysis: where do the false positives come from?

Section 5.2 diagnoses the change-in-management classifier's errors by
hand ("a recurring example is the biographical description of a
person").  This module does that diagnosis programmatically: it buckets
false positives by the linguistic signature of the snippet — historical
anchor (biography/retrospective), business boilerplate, cross-driver
trigger — and false negatives by what the classifier under-weighted.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.temporal import resolve
from repro.core.training import AnnotatedSnippet

#: FP bucket identifiers, most diagnostic first.
FP_BUCKETS = (
    "historical",        # biography / retrospective (past-anchored)
    "cross_driver",      # a genuine trigger — for a different driver
    "business_boilerplate",  # ORG-rich non-event text
    "other",
)


def classify_false_positive(
    item: AnnotatedSnippet,
    other_driver_labels: Sequence[int] = (),
    reference_year: int = 2006,
) -> str:
    """Assign one false positive to a bucket."""
    if any(other_driver_labels):
        return "cross_driver"
    reading = resolve(item.annotated.text, reference_year)
    if (
        reading.resolved_year is not None
        and reading.resolved_year < reference_year - 1
        and not reading.has_current_marker
    ):
        return "historical"
    has_org = any(
        entity.label == "ORG" for entity in item.annotated.entities
    )
    if has_org:
        return "business_boilerplate"
    return "other"


@dataclass
class ErrorReport:
    """Bucketized errors for one driver on one test set."""

    driver_id: str
    n_true_positive: int
    n_false_positive: int
    n_false_negative: int
    fp_buckets: Counter = field(default_factory=Counter)
    fp_examples: dict[str, str] = field(default_factory=dict)

    @property
    def dominant_fp_bucket(self) -> str | None:
        if not self.fp_buckets:
            return None
        return self.fp_buckets.most_common(1)[0][0]

    def render(self) -> str:
        lines = [
            f"driver: {self.driver_id}",
            f"TP={self.n_true_positive}  FP={self.n_false_positive}  "
            f"FN={self.n_false_negative}",
            "false-positive buckets:",
        ]
        for bucket in FP_BUCKETS:
            count = self.fp_buckets.get(bucket, 0)
            if count == 0:
                continue
            lines.append(f"  {bucket:22s} {count:5d}")
            example = self.fp_examples.get(bucket)
            if example:
                lines.append(f"    e.g. {example[:90]}")
        return "\n".join(lines)


def analyze_errors(
    driver_id: str,
    items: Sequence[AnnotatedSnippet],
    y_true: Sequence[int],
    y_pred: Sequence[int],
    other_labels: dict[str, Sequence[int]] | None = None,
    reference_year: int = 2006,
) -> ErrorReport:
    """Bucket the errors of one driver's predictions.

    ``other_labels`` maps *other* driver ids to their ground-truth
    vectors over the same items, enabling the cross-driver bucket.
    """
    y_true = np.asarray(y_true, dtype=np.int64)
    y_pred = np.asarray(y_pred, dtype=np.int64)
    if not (len(items) == len(y_true) == len(y_pred)):
        raise ValueError("items, y_true and y_pred must align")
    other_labels = other_labels or {}

    report = ErrorReport(
        driver_id=driver_id,
        n_true_positive=int(((y_true == 1) & (y_pred == 1)).sum()),
        n_false_positive=int(((y_true == 0) & (y_pred == 1)).sum()),
        n_false_negative=int(((y_true == 1) & (y_pred == 0)).sum()),
    )
    for index, item in enumerate(items):
        if not (y_true[index] == 0 and y_pred[index] == 1):
            continue
        others = [
            labels[index] for labels in other_labels.values()
        ]
        bucket = classify_false_positive(
            item, others, reference_year=reference_year
        )
        report.fp_buckets[bucket] += 1
        report.fp_examples.setdefault(bucket, item.annotated.text)
    return report
