"""One-command reproduction report: every table/figure, one Markdown file.

``python -m repro reproduce --out report.md`` (or
:func:`generate_report`) builds the evaluation dataset, runs each
experiment from :mod:`repro.evaluation.experiments`, and writes a
self-contained Markdown report with the paper's reference numbers next
to the measured ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.corpus.templates import (
    CHANGE_IN_MANAGEMENT,
    MERGERS_ACQUISITIONS,
    REVENUE_GROWTH,
)
from repro.evaluation.datasets import (
    DatasetSpec,
    EvaluationDataset,
    build_evaluation_dataset,
)
from repro.evaluation.experiments import (
    PAPER_TABLE1,
    run_company_ranking,
    run_figure3,
    run_figure4,
    run_figure5_6,
    run_figure7,
    run_figure8,
    run_table1,
)


@dataclass
class ReportSection:
    title: str
    body: str


def _code(text: str) -> str:
    return f"```\n{text}\n```"


def _table1_section(dataset: EvaluationDataset) -> ReportSection:
    result = run_table1(
        dataset=dataset,
        drivers=(
            MERGERS_ACQUISITIONS,
            CHANGE_IN_MANAGEMENT,
            REVENUE_GROWTH,
        ),
    )
    paper = "\n".join(
        f"- paper {driver_id}: P={prf.precision} R={prf.recall} "
        f"F1={prf.f1}"
        for driver_id, prf in PAPER_TABLE1.items()
    )
    return ReportSection(
        "Table 1 — precision / recall / F1 per sales driver",
        f"{_code(result.render())}\n\nPaper reference:\n{paper}\n",
    )


def _rig_section(dataset: EvaluationDataset) -> ReportSection:
    fig3 = run_figure3(dataset=dataset)
    fig4 = run_figure4(dataset=dataset)
    body = (
        "### Figure 3 (mergers & acquisitions)\n"
        f"{_code(fig3.render())}\n\n"
        "### Figure 4 (change in management)\n"
        f"{_code(fig4.render())}\n\n"
        "Paper reading: entities (e.g. PLC, ORG) prefer presence-"
        "absence; vb/rb/nn/jj prefer instance values.\n"
    )
    return ReportSection(
        "Figures 3-4 — PA vs IV relative information gain", body
    )


def _fig56_section(dataset: EvaluationDataset) -> ReportSection:
    result = run_figure5_6(dataset=dataset)
    return ReportSection(
        'Figures 5-6 — smart query "new ceo": triggers and noise',
        _code(result.render(limit=3)),
    )


def _fig7_section(dataset: EvaluationDataset) -> ReportSection:
    result = run_figure7(dataset=dataset)
    return ReportSection(
        "Figure 7 — change-in-management events by classifier score",
        _code(result.render(limit=8)),
    )


def _fig8_section(dataset: EvaluationDataset) -> ReportSection:
    result = run_figure8(dataset=dataset)
    return ReportSection(
        "Figure 8 — revenue-growth events by semantic orientation",
        _code(result.render(limit=8)),
    )


def _company_section(dataset: EvaluationDataset) -> ReportSection:
    result = run_company_ranking(dataset=dataset)
    return ReportSection(
        "Equation 2 — company-level MRR lead list",
        _code(result.render(limit=10)),
    )


def generate_report(
    spec: DatasetSpec | None = None,
    dataset: EvaluationDataset | None = None,
) -> str:
    """Run every experiment and return the Markdown report text."""
    dataset = dataset or build_evaluation_dataset(spec)
    if not dataset.etap.classifiers:
        dataset.etap.train(pure_positive=dataset.pure_positive)

    sections = [
        _table1_section(dataset),
        _rig_section(dataset),
        _fig56_section(dataset),
        _fig7_section(dataset),
        _fig8_section(dataset),
        _company_section(dataset),
    ]
    header = (
        "# ETAP reproduction report\n\n"
        "Automatic Sales Lead Generation from Web Data (ICDE 2006) — "
        "all evaluation artifacts regenerated on the synthetic corpus.\n"
        f"\nCorpus: {len(dataset.etap.store)} documents; test set: "
        f"{len(dataset.test_items)} snippets.\n"
    )
    parts = [header]
    for section in sections:
        parts.append(f"\n## {section.title}\n\n{section.body}")
    return "\n".join(parts)


def write_report(
    path: str | Path,
    spec: DatasetSpec | None = None,
    dataset: EvaluationDataset | None = None,
) -> Path:
    """Generate the report and write it to ``path``."""
    path = Path(path)
    path.write_text(
        generate_report(spec=spec, dataset=dataset), encoding="utf-8"
    )
    return path
