"""Statistical significance for classifier comparisons.

The paper reports point estimates; honest comparisons on a 2,400-snippet
test set need uncertainty: bootstrap confidence intervals for F1, and
McNemar's paired test for "is classifier A actually better than B on
the same test set".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats

from repro.ml.metrics import precision_recall_f1


@dataclass(frozen=True, slots=True)
class BootstrapInterval:
    """A percentile bootstrap confidence interval."""

    point: float
    lower: float
    upper: float
    confidence: float

    def contains(self, value: float) -> bool:
        return self.lower <= value <= self.upper


def bootstrap_f1_interval(
    y_true: Sequence[int],
    y_pred: Sequence[int],
    n_resamples: int = 1000,
    confidence: float = 0.95,
    seed: int = 47,
) -> BootstrapInterval:
    """Percentile bootstrap CI for the F1 of ``y_pred``."""
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    y_true = np.asarray(y_true, dtype=np.int64)
    y_pred = np.asarray(y_pred, dtype=np.int64)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must align")
    n = len(y_true)
    if n == 0:
        raise ValueError("empty test set")
    rng = np.random.default_rng(seed)
    point = precision_recall_f1(y_true, y_pred).f1
    samples = []
    for _ in range(n_resamples):
        index = rng.integers(0, n, size=n)
        samples.append(
            precision_recall_f1(y_true[index], y_pred[index]).f1
        )
    alpha = (1 - confidence) / 2
    lower, upper = np.percentile(
        samples, [100 * alpha, 100 * (1 - alpha)]
    )
    return BootstrapInterval(
        point=point,
        lower=float(lower),
        upper=float(upper),
        confidence=confidence,
    )


@dataclass(frozen=True, slots=True)
class McNemarResult:
    """Outcome of McNemar's paired test."""

    n_a_only_correct: int
    n_b_only_correct: int
    statistic: float
    p_value: float

    @property
    def significant_at_05(self) -> bool:
        return self.p_value < 0.05


def mcnemar_test(
    y_true: Sequence[int],
    pred_a: Sequence[int],
    pred_b: Sequence[int],
) -> McNemarResult:
    """McNemar's test on the discordant pairs of two classifiers.

    Uses the exact binomial form when discordant pairs are few (< 25),
    the chi-square approximation with continuity correction otherwise.
    """
    y_true = np.asarray(y_true, dtype=np.int64)
    pred_a = np.asarray(pred_a, dtype=np.int64)
    pred_b = np.asarray(pred_b, dtype=np.int64)
    if not (y_true.shape == pred_a.shape == pred_b.shape):
        raise ValueError("all inputs must align")
    a_correct = pred_a == y_true
    b_correct = pred_b == y_true
    n01 = int((a_correct & ~b_correct).sum())  # A right, B wrong
    n10 = int((~a_correct & b_correct).sum())  # B right, A wrong
    discordant = n01 + n10
    if discordant == 0:
        return McNemarResult(n01, n10, 0.0, 1.0)
    if discordant < 25:
        p_value = float(
            stats.binomtest(
                min(n01, n10), discordant, 0.5, alternative="two-sided"
            ).pvalue
        )
        statistic = float(min(n01, n10))
    else:
        statistic = (abs(n01 - n10) - 1) ** 2 / discordant
        p_value = float(stats.chi2.sf(statistic, df=1))
    return McNemarResult(
        n_a_only_correct=n01,
        n_b_only_correct=n10,
        statistic=statistic,
        p_value=p_value,
    )
