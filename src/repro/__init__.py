"""repro — reproduction of *Automatic Sales Lead Generation from Web
Data* (Ramakrishnan et al., ICDE 2006): the ETAP trigger-event pipeline
plus every substrate it depends on, built from scratch.

Quick start::

    from repro import Etap, build_web

    etap = Etap.from_web(build_web(2000))
    etap.gather()
    etap.train()
    events = etap.extract_trigger_events()
    leads = etap.company_report(events)
"""

from repro.core.etap import Etap, EtapConfig
from repro.corpus.web import build_web

__version__ = "1.0.0"

__all__ = ["Etap", "EtapConfig", "build_web", "__version__"]
