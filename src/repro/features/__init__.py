"""Feature pipeline: RIG analysis, abstraction, selection, vectorizing."""

from repro.features.abstraction import (
    AbstractionAnalyzer,
    AbstractionPolicy,
    RigComparison,
    abstract_tokens,
    iv_pairs,
    pa_pairs,
)
from repro.features.batch import batch_transform, joint_counts_from_matrix
from repro.features.rig import (
    conditional_entropy,
    entropy,
    information_gain,
    joint_from_pairs,
    marginal_y,
    relative_information_gain,
)
from repro.features.selection import (
    FeatureScore,
    chi_square_scores,
    information_gain_scores,
    mutual_information_scores,
    select_top_k,
)
from repro.features.vectorizer import Vectorizer, VectorizerConfig

__all__ = [
    "AbstractionAnalyzer",
    "AbstractionPolicy",
    "FeatureScore",
    "RigComparison",
    "Vectorizer",
    "VectorizerConfig",
    "abstract_tokens",
    "batch_transform",
    "chi_square_scores",
    "conditional_entropy",
    "entropy",
    "information_gain",
    "information_gain_scores",
    "iv_pairs",
    "joint_counts_from_matrix",
    "joint_from_pairs",
    "marginal_y",
    "mutual_information_scores",
    "pa_pairs",
    "relative_information_gain",
    "select_top_k",
]
