"""Bag-of-words vectorizer over abstracted feature tokens.

Turns token sequences (produced by
:func:`repro.features.abstraction.abstract_tokens`) into sparse count or
binary matrices for the classifiers in :mod:`repro.ml`.  The vocabulary
is fixed at :meth:`Vectorizer.fit` time; unseen tokens at transform time
are ignored, the standard open-vocabulary behaviour.
"""

from __future__ import annotations

import sys
from collections import Counter
from dataclasses import dataclass
from typing import Sequence

from scipy import sparse

from repro.features.batch import batch_transform


@dataclass(frozen=True)
class VectorizerConfig:
    """Vectorizer knobs.

    min_df: drop features seen in fewer documents.
    binary: 0/1 presence instead of counts.
    max_features: keep only the most document-frequent features.
    ngram_range: (lo, hi) word n-gram sizes; (1, 2) adds bigrams such
        as ``new_ceo`` alongside the unigrams.
    """

    min_df: int = 1
    binary: bool = False
    max_features: int | None = None
    ngram_range: tuple[int, int] = (1, 1)


class Vectorizer:
    """Fit a vocabulary, then map token lists to CSR matrices."""

    def __init__(self, config: VectorizerConfig | None = None) -> None:
        self.config = config or VectorizerConfig()
        self.vocabulary: dict[str, int] = {}
        self._fitted = False

    @property
    def n_features(self) -> int:
        return len(self.vocabulary)

    def _expand(self, tokens: Sequence[str]) -> list[str]:
        """Emit the configured n-grams for one token sequence."""
        lo, hi = self.config.ngram_range
        if (lo, hi) == (1, 1):
            return list(tokens)
        expanded: list[str] = []
        for n in range(lo, hi + 1):
            if n == 1:
                expanded.extend(tokens)
                continue
            for start in range(len(tokens) - n + 1):
                expanded.append("_".join(tokens[start : start + n]))
        return expanded

    def fit(self, documents: Sequence[Sequence[str]]) -> "Vectorizer":
        """Build the vocabulary from training documents."""
        if self.config.min_df < 1:
            raise ValueError("min_df must be >= 1")
        lo, hi = self.config.ngram_range
        if not 1 <= lo <= hi:
            raise ValueError("ngram_range must satisfy 1 <= lo <= hi")
        document_frequency: Counter = Counter()
        for tokens in documents:
            document_frequency.update(set(self._expand(tokens)))
        kept = [
            (feature, df)
            for feature, df in document_frequency.items()
            if df >= self.config.min_df
        ]
        # Highest-df first makes truncation by max_features meaningful;
        # alphabetical tie-break keeps the mapping deterministic.
        kept.sort(key=lambda item: (-item[1], item[0]))
        if self.config.max_features is not None:
            kept = kept[: self.config.max_features]
        # Feature names are interned: every abstracted token list holds
        # the same handful of category strings thousands of times, so
        # vocabulary probes become pointer comparisons and the strings
        # are stored once process-wide.
        self.vocabulary = {
            sys.intern(feature): index
            for index, (feature, _) in enumerate(sorted(kept))
        }
        self._fitted = True
        return self

    def transform(
        self, documents: Sequence[Sequence[str]]
    ) -> sparse.csr_matrix:
        """Map token lists to a (n_docs, n_features) sparse matrix.

        Delegates to :func:`repro.features.batch.batch_transform`: the
        whole batch is assembled as one flat COO triple and deduplicated
        in C, instead of one ``Counter`` and three growing Python lists
        per document.
        """
        if not self._fitted:
            raise RuntimeError("vectorizer must be fit before transform")
        lo, hi = self.config.ngram_range
        return batch_transform(
            documents,
            self.vocabulary,
            binary=self.config.binary,
            expand=None if (lo, hi) == (1, 1) else self._expand,
        )

    def fit_transform(
        self, documents: Sequence[Sequence[str]]
    ) -> sparse.csr_matrix:
        return self.fit(documents).transform(documents)

    def feature_names(self) -> list[str]:
        """Feature names ordered by column index."""
        names = [""] * self.n_features
        for feature, index in self.vocabulary.items():
            names[index] = feature
        return names
