"""Feature abstraction: PA vs IV representations and the level chooser.

Section 3.2.2 of the paper contrasts, for every abstraction category
(entity label or POS tag), two random-variable representations:

* **PA (presence-absence)** — X is 1 when the category occurs in a
  snippet, 0 otherwise;
* **IV (instance-valued)** — X ranges over the concrete instances of the
  category ("Washington", "acquired", ...).

Comparing RIG(Y | PA(X)) and RIG(Y | IV(X)) per category tells ETAP which
categories to *abstract* (replace every instance by the category tag —
chosen when PA wins) and which to keep as words (IV wins — the paper
finds this for vb, rb, nn, np, jj).  :class:`AbstractionAnalyzer`
implements the comparison; :class:`AbstractionPolicy` is the resulting
decision, and :func:`abstract_tokens` applies it to annotated text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.features.rig import (
    joint_from_pairs,
    relative_information_gain,
)
from repro.text.annotator import AnnotatedText
from repro.text.ner import ENTITY_CATEGORIES
from repro.text.pos import OPEN_CLASS_TAGS
from repro.text.stem import PorterStemmer
from repro.text.stopwords import is_stopword

def pa_pairs(
    texts: Sequence[AnnotatedText],
    labels: Sequence[int],
    category: str,
) -> list[tuple[str, int]]:
    """Presence-absence observations, one per snippet."""
    pairs = []
    for annotated, label in zip(texts, labels):
        present = any(
            token.category == category for token in annotated.tokens
        )
        pairs.append(("present" if present else "absent", label))
    return pairs


def iv_pairs(
    texts: Sequence[AnnotatedText],
    labels: Sequence[int],
    category: str,
) -> list[tuple[str, int]]:
    """Instance-valued observations: one per occurrence of the category.

    For entity categories the instance is the whole entity surface
    ("acme inc"); for POS categories it is the token.  Snippets without
    the category contribute nothing: IV measures whether the *specific
    instance* carries information beyond mere presence.  (Including an
    absent-marker would make IV a strict refinement of PA, and PA could
    never win the Figure 3/4 comparison.)
    """
    is_entity = category in ENTITY_CATEGORIES
    pairs = []
    for annotated, label in zip(texts, labels):
        if is_entity:
            for entity in annotated.entities:
                if entity.label == category:
                    pairs.append((entity.text.lower(), label))
        else:
            for token in annotated.tokens:
                if token.category == category:
                    pairs.append((token.text.lower(), label))
    return pairs


@dataclass(frozen=True, slots=True)
class RigComparison:
    """RIG of the two representations for one abstraction category."""

    category: str
    rig_pa: float
    rig_iv: float

    @property
    def prefer_abstraction(self) -> bool:
        """True when presence-absence carries at least as much signal."""
        return self.rig_pa >= self.rig_iv


class AbstractionAnalyzer:
    """Computes Figure 3/4-style PA-vs-IV RIG comparisons.

    ``smoothing`` is the Laplace pseudo-count used when estimating
    conditional entropy; it penalizes the spurious information that
    near-unique instance values (company names, person names) appear to
    carry in a finite sample.
    """

    def __init__(self, smoothing: float = 1.0) -> None:
        self.smoothing = smoothing

    def compare(
        self,
        texts: Sequence[AnnotatedText],
        labels: Sequence[int],
        category: str,
    ) -> RigComparison:
        joint_pa = joint_from_pairs(pa_pairs(texts, labels, category))
        joint_iv = joint_from_pairs(iv_pairs(texts, labels, category))
        return RigComparison(
            category=category,
            rig_pa=relative_information_gain(
                joint_pa, smoothing=self.smoothing
            ),
            rig_iv=relative_information_gain(
                joint_iv, smoothing=self.smoothing
            ),
        )

    def compare_all(
        self,
        texts: Sequence[AnnotatedText],
        labels: Sequence[int],
        categories: Iterable[str] | None = None,
    ) -> list[RigComparison]:
        if categories is None:
            categories = list(ENTITY_CATEGORIES) + list(OPEN_CLASS_TAGS)
        return [
            self.compare(texts, labels, category) for category in categories
        ]

    def derive_policy(
        self,
        texts: Sequence[AnnotatedText],
        labels: Sequence[int],
    ) -> "AbstractionPolicy":
        """Choose, per category, the representation with higher RIG."""
        abstract = set()
        for comparison in self.compare_all(texts, labels):
            if (
                comparison.category in ENTITY_CATEGORIES
                and comparison.prefer_abstraction
            ):
                abstract.add(comparison.category)
        return AbstractionPolicy(abstract_categories=frozenset(abstract))


@dataclass(frozen=True)
class AbstractionPolicy:
    """Which categories get abstracted to their tag.

    Tokens whose category is in ``abstract_categories`` are replaced by a
    ``__CATEGORY__`` pseudo-token; all other alphabetic tokens are kept as
    (lower-cased, stemmed) words.  Stop words and punctuation/closed-class
    tokens are dropped, matching the paper's pre-processing.
    """

    abstract_categories: frozenset[str] = field(default_factory=frozenset)

    @classmethod
    def paper_default(cls) -> "AbstractionPolicy":
        """The paper's conclusion: abstract every entity category."""
        return cls(abstract_categories=frozenset(ENTITY_CATEGORIES))

    @classmethod
    def none(cls) -> "AbstractionPolicy":
        """No abstraction — the plain bag-of-words baseline."""
        return cls(abstract_categories=frozenset())

    def placeholder(self, category: str) -> str:
        return f"__{category}__"


_DROPPED_POS = frozenset({"punct", "sym", "dt", "in", "prp", "cc", "to", "md"})


#: Placeholder strings per category, built once — the f-string format
#: used to run once per abstracted token.
_PLACEHOLDERS: dict[str, str] = {}


def abstract_tokens(
    annotated: AnnotatedText,
    policy: AbstractionPolicy,
    stemmer: PorterStemmer | None = None,
) -> list[str]:
    """Convert an annotated snippet to its feature-token sequence."""
    stemmer = stemmer or PorterStemmer()
    features: list[str] = []
    previous_placeholder: str | None = None
    abstract_categories = policy.abstract_categories
    stem = stemmer.stem
    for token in annotated.tokens:
        entity = token.entity
        if entity is not None and entity in abstract_categories:
            placeholder = _PLACEHOLDERS.get(entity)
            if placeholder is None:
                placeholder = policy.placeholder(entity)
                _PLACEHOLDERS[entity] = placeholder
            # A multi-token entity yields one placeholder, not one per token.
            if placeholder != previous_placeholder:
                features.append(placeholder)
            previous_placeholder = placeholder
            continue
        previous_placeholder = None
        if entity is None and token.pos in _DROPPED_POS:
            continue
        word = token.text.lower()
        if is_stopword(word):
            continue
        if not word[0].isalnum() and not any(ch.isalnum() for ch in word):
            continue
        features.append(stem(word))
    return features
