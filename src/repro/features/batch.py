"""Batched CSR construction for abstracted-feature matrices.

The per-document transform path (one ``Counter`` per row, three Python
lists of boxed floats) was the vectorization hot spot of training: every
denoise iteration re-transforms thousands of snippets.  This module
builds the whole matrix in one pass instead:

* one flat column-id array for all documents (a single Python loop over
  tokens — the dict lookups are unavoidable, everything after is numpy);
* row ids via :func:`numpy.repeat` over per-document occurrence counts;
* duplicate ``(row, col)`` cells summed by scipy's C-level COO→CSR
  conversion, replacing the per-row ``Counter``.

The result is numerically identical to the per-document path: same
shape, same counts, same canonical CSR layout.
"""

from __future__ import annotations

from typing import Callable, Hashable, Sequence

import numpy as np
from scipy import sparse


def batch_transform(
    documents: Sequence[Sequence[str]],
    vocabulary: dict[str, int],
    *,
    binary: bool = False,
    expand: Callable[[Sequence[str]], Sequence[str]] | None = None,
) -> sparse.csr_matrix:
    """Vectorize token lists against a fixed vocabulary in one batch.

    ``expand`` optionally maps each document's tokens to the feature
    stream to count (e.g. the vectorizer's n-gram expansion); unknown
    features are skipped (open-vocabulary behaviour).  With ``binary``
    every present feature counts 1.0 regardless of multiplicity.
    """
    n_features = len(vocabulary)
    cols: list[int] = []
    lengths = np.empty(len(documents), dtype=np.intp)
    lookup = vocabulary.get
    for i, tokens in enumerate(documents):
        if expand is not None:
            tokens = expand(tokens)
        before = len(cols)
        cols.extend(
            col
            for col in map(lookup, tokens)
            if col is not None
        )
        lengths[i] = len(cols) - before
    rows = np.repeat(np.arange(len(documents), dtype=np.intp), lengths)
    data = np.ones(len(cols), dtype=np.float64)
    # COO -> CSR sums duplicate (row, col) cells in C: this is the
    # batched replacement for one Counter per document.
    matrix = sparse.csr_matrix(
        (data, (rows, np.asarray(cols, dtype=np.intp))),
        shape=(len(documents), n_features),
        dtype=np.float64,
    )
    if binary:
        matrix.data.fill(1.0)
    return matrix


def counts_from_token_ids(
    token_ids: "np.ndarray",
    doc_ptr: "np.ndarray",
    n_features: int,
) -> sparse.csr_matrix:
    """Term-count CSR matrix straight from a flat token-id stream.

    ``token_ids`` is one contiguous array of vocabulary ids for a whole
    shard and ``doc_ptr`` its per-document slice boundaries (the same
    flat layout :class:`repro.search.index.FlatPostings` consumes), so
    a shard worker vectorizes its documents without ever materializing
    per-document token lists.  Numerically identical to
    :func:`batch_transform` over the equivalent string tokens.
    """
    n_docs = len(doc_ptr) - 1
    lengths = np.diff(doc_ptr)
    rows = np.repeat(np.arange(n_docs, dtype=np.intp), lengths)
    data = np.ones(len(token_ids), dtype=np.float64)
    return sparse.csr_matrix(
        (data, (rows, np.asarray(token_ids, dtype=np.intp))),
        shape=(n_docs, n_features),
        dtype=np.float64,
    )


def joint_counts_from_matrix(
    matrix: sparse.spmatrix,
    labels: Sequence[Hashable],
    feature_names: Sequence[str],
) -> dict[str, dict[Hashable, float]]:
    """Feature-presence/label joint counts for RIG analysis.

    Bridges a batched feature matrix to
    :func:`repro.features.rig.relative_information_gain`: for each
    feature, counts how often it is present in a document of each
    label.  Works column-wise on the CSC layout, so cost is one pass
    over the nonzeros rather than ``n_docs * n_features``.
    """
    if matrix.shape[0] != len(labels):
        raise ValueError("labels must align with matrix rows")
    if matrix.shape[1] != len(feature_names):
        raise ValueError("feature_names must align with matrix columns")
    labels_array = np.asarray(labels, dtype=object)
    csc = matrix.tocsc()
    joint: dict[str, dict[Hashable, float]] = {}
    indptr = csc.indptr
    indices = csc.indices
    for col, name in enumerate(feature_names):
        row_ids = indices[indptr[col] : indptr[col + 1]]
        if len(row_ids) == 0:
            continue
        counts: dict[Hashable, float] = {}
        for label in labels_array[row_ids]:
            counts[label] = counts.get(label, 0.0) + 1.0
        joint[name] = counts
    return joint
