"""Entropy and relative information gain (Equation 1 of the paper).

    RIG(Y|X) = (H(Y) - H(Y|X)) / H(Y)

*"Given two random variables X and Y, and given that Y is to be
transmitted, what fraction of bits would be saved if X was known at both
sender's and receiver's ends."*

The joint distribution is estimated from co-occurrence counts.  Because
instance-valued (IV) representations can have thousands of values that
each occur a handful of times, the empirical plug-in estimate of
``H(Y|X)`` is badly biased toward zero for sparse X; an optional Laplace
``smoothing`` pseudo-count counteracts that, mirroring what any practical
implementation over web-scale data must do.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Hashable, Iterable, Mapping

#: Joint counts: value of X -> (value of Y -> count).
JointCounts = Mapping[Hashable, Mapping[Hashable, float]]


def entropy(counts: Mapping[Hashable, float]) -> float:
    """Shannon entropy (bits) of a distribution given by counts."""
    total = sum(counts.values())
    if total <= 0:
        return 0.0
    result = 0.0
    for count in counts.values():
        p = count / total
        if p <= 0:  # also guards subnormal counts underflowing to 0
            continue
        result -= p * math.log2(p)
    return result


def joint_from_pairs(
    pairs: Iterable[tuple[Hashable, Hashable]]
) -> dict[Hashable, dict[Hashable, float]]:
    """Accumulate joint counts from ``(x, y)`` observation pairs."""
    joint: dict[Hashable, dict[Hashable, float]] = defaultdict(
        lambda: defaultdict(float)
    )
    for x, y in pairs:
        joint[x][y] += 1.0
    return {x: dict(ys) for x, ys in joint.items()}


def _y_values(joint: JointCounts) -> set[Hashable]:
    values: set[Hashable] = set()
    for ys in joint.values():
        values.update(ys)
    return values


def marginal_y(joint: JointCounts) -> dict[Hashable, float]:
    """Marginal counts of Y from a joint table."""
    marginal: dict[Hashable, float] = defaultdict(float)
    for ys in joint.values():
        for y, count in ys.items():
            marginal[y] += count
    return dict(marginal)


def conditional_entropy(joint: JointCounts, smoothing: float = 0.0) -> float:
    """H(Y|X) in bits, with optional Laplace smoothing per (x, y) cell."""
    if smoothing < 0:
        raise ValueError("smoothing must be non-negative")
    y_values = _y_values(joint)
    if not y_values:
        return 0.0
    grand_total = 0.0
    weighted = 0.0
    for ys in joint.values():
        row = {y: ys.get(y, 0.0) + smoothing for y in y_values}
        row_total = sum(row.values())
        raw_total = sum(ys.values())
        if row_total <= 0:
            continue
        weighted += raw_total * entropy(row)
        grand_total += raw_total
    if grand_total <= 0:
        return 0.0
    return weighted / grand_total


def relative_information_gain(
    joint: JointCounts, smoothing: float = 0.0
) -> float:
    """RIG(Y|X) per Equation 1; 0 when H(Y) is 0."""
    h_y = entropy(marginal_y(joint))
    if h_y <= 0:
        return 0.0
    h_y_given_x = conditional_entropy(joint, smoothing=smoothing)
    gain = (h_y - h_y_given_x) / h_y
    # Smoothing can push H(Y|X) above H(Y) for uninformative X; the
    # quantity is a *gain*, clamp at zero.
    return max(gain, 0.0)


def information_gain(joint: JointCounts, smoothing: float = 0.0) -> float:
    """Unnormalized mutual information I(X; Y) = H(Y) - H(Y|X), in bits."""
    h_y = entropy(marginal_y(joint))
    return max(h_y - conditional_entropy(joint, smoothing=smoothing), 0.0)
