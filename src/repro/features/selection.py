"""Classic feature-selection measures: chi-square, information gain, MI.

Section 3.2.1: *"statistical measures are used to compute the amount of
information that tokens (features) contain with respect to the label-set.
Standard measures used are chi-2, information gain, and mutual
information.  Features are ranked by one of these measures and only the
top few features are retained."*  These scorers operate on binary
presence counts per document, the standard formulation for text.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True, slots=True)
class FeatureScore:
    feature: str
    score: float


def _presence_counts(
    documents: Sequence[Sequence[str]], labels: Sequence[int]
) -> tuple[dict[str, Counter], Counter, int]:
    """Per-feature presence counts by class, class totals, and N."""
    by_feature: dict[str, Counter] = defaultdict(Counter)
    class_totals: Counter = Counter()
    for tokens, label in zip(documents, labels):
        class_totals[label] += 1
        for feature in set(tokens):
            by_feature[feature][label] += 1
    return by_feature, class_totals, len(documents)


def chi_square_scores(
    documents: Sequence[Sequence[str]], labels: Sequence[int]
) -> list[FeatureScore]:
    """Chi-square statistic of each feature against the label set."""
    by_feature, class_totals, n = _presence_counts(documents, labels)
    if n == 0:
        return []
    scores = []
    for feature, presence in by_feature.items():
        present_total = sum(presence.values())
        statistic = 0.0
        for label, class_total in class_totals.items():
            observed_present = presence.get(label, 0)
            observed_absent = class_total - observed_present
            expected_present = class_total * present_total / n
            expected_absent = class_total * (n - present_total) / n
            if expected_present > 0:
                statistic += (
                    (observed_present - expected_present) ** 2
                    / expected_present
                )
            if expected_absent > 0:
                statistic += (
                    (observed_absent - expected_absent) ** 2
                    / expected_absent
                )
        scores.append(FeatureScore(feature, statistic))
    return sorted(scores, key=lambda s: (-s.score, s.feature))


def information_gain_scores(
    documents: Sequence[Sequence[str]], labels: Sequence[int]
) -> list[FeatureScore]:
    """IG(Y; present(feature)) for each feature, in bits."""
    by_feature, class_totals, n = _presence_counts(documents, labels)
    if n == 0:
        return []
    h_y = _entropy_from_counter(class_totals)
    scores = []
    for feature, presence in by_feature.items():
        present_total = sum(presence.values())
        absent = Counter(
            {
                label: class_totals[label] - presence.get(label, 0)
                for label in class_totals
            }
        )
        p_present = present_total / n
        conditional = p_present * _entropy_from_counter(presence) + (
            1 - p_present
        ) * _entropy_from_counter(absent)
        scores.append(FeatureScore(feature, max(h_y - conditional, 0.0)))
    return sorted(scores, key=lambda s: (-s.score, s.feature))


def mutual_information_scores(
    documents: Sequence[Sequence[str]], labels: Sequence[int]
) -> list[FeatureScore]:
    """Pointwise MI of feature presence with the *positive* class (label 1).

    The classic text-categorization MI: log p(f, c) / (p(f) p(c)).
    """
    by_feature, class_totals, n = _presence_counts(documents, labels)
    if n == 0 or 1 not in class_totals:
        return []
    p_class = class_totals[1] / n
    scores = []
    for feature, presence in by_feature.items():
        p_feature = sum(presence.values()) / n
        p_joint = presence.get(1, 0) / n
        if p_joint == 0 or p_feature == 0:
            score = float("-inf")
        else:
            score = math.log2(p_joint / (p_feature * p_class))
        scores.append(FeatureScore(feature, score))
    return sorted(scores, key=lambda s: (-s.score, s.feature))


def select_top_k(scores: list[FeatureScore], k: int) -> set[str]:
    """The top-k feature names from a ranked score list."""
    if k < 0:
        raise ValueError("k must be non-negative")
    return {score.feature for score in scores[:k]}


def _entropy_from_counter(counts: Counter) -> float:
    total = sum(counts.values())
    if total <= 0:
        return 0.0
    result = 0.0
    for count in counts.values():
        if count <= 0:
            continue
        p = count / total
        result -= p * math.log2(p)
    return result
