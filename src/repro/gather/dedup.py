"""Near-duplicate detection: shingling + MinHash + LSH banding.

The document store's exact-hash dedup catches byte-identical mirrors,
but the web also serves *near*-duplicates — the same wire story with a
different site header, a re-paginated article, a lightly edited press
release.  Left in the collection they flood the ranked trigger-event
list with repeats.

Standard construction: a document becomes a set of word ``k``-shingles;
a MinHash signature of ``n`` permutations estimates Jaccard similarity;
LSH banding finds candidate pairs without comparing every pair.
"""

from __future__ import annotations

import hashlib
import struct
from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.obs.events import NULL_EVENT_LOG, AnyEventLog

_MERSENNE = (1 << 61) - 1
_MAX_HASH = (1 << 32) - 1


def shingles(text: str, k: int = 3) -> set[str]:
    """Word k-shingles of ``text`` (lower-cased, whitespace tokenized)."""
    if k <= 0:
        raise ValueError("k must be positive")
    words = text.lower().split()
    if len(words) < k:
        return {" ".join(words)} if words else set()
    return {
        " ".join(words[i : i + k]) for i in range(len(words) - k + 1)
    }


def jaccard(a: set[str], b: set[str]) -> float:
    """Exact Jaccard similarity of two shingle sets."""
    if not a and not b:
        return 1.0
    if not a or not b:
        return 0.0
    return len(a & b) / len(a | b)


def _base_hash(shingle: str) -> int:
    digest = hashlib.sha1(shingle.encode("utf-8")).digest()
    return struct.unpack("<Q", digest[:8])[0] & _MAX_HASH


class MinHasher:
    """Fixed family of ``n_permutations`` universal hash functions."""

    def __init__(self, n_permutations: int = 96, seed: int = 41) -> None:
        if n_permutations <= 0:
            raise ValueError("n_permutations must be positive")
        self.n_permutations = n_permutations
        import random

        rng = random.Random(seed)
        self._a = [
            rng.randrange(1, _MERSENNE) for _ in range(n_permutations)
        ]
        self._b = [
            rng.randrange(0, _MERSENNE) for _ in range(n_permutations)
        ]

    def signature(self, shingle_set: Iterable[str]) -> tuple[int, ...]:
        """MinHash signature; empty input gets an all-max signature."""
        hashes = [_base_hash(s) for s in shingle_set]
        if not hashes:
            return tuple([_MAX_HASH] * self.n_permutations)
        signature = []
        for a, b in zip(self._a, self._b):
            signature.append(
                min(
                    ((a * h + b) % _MERSENNE) & _MAX_HASH
                    for h in hashes
                )
            )
        return tuple(signature)

    @staticmethod
    def estimate_similarity(
        sig_a: Sequence[int], sig_b: Sequence[int]
    ) -> float:
        """Fraction of agreeing components estimates Jaccard."""
        if len(sig_a) != len(sig_b):
            raise ValueError("signatures must have equal length")
        if not sig_a:
            return 0.0
        agree = sum(1 for x, y in zip(sig_a, sig_b) if x == y)
        return agree / len(sig_a)


@dataclass(frozen=True, slots=True)
class DuplicatePair:
    """A candidate near-duplicate pair with its estimated similarity."""

    first: str
    second: str
    similarity: float


class NearDuplicateIndex:
    """LSH-banded MinHash index over documents.

    ``bands`` x ``rows`` must equal the hasher's permutation count.
    With the defaults (24 bands of 4 rows over 96 permutations) the
    candidate threshold sits around similarity ~0.45.
    """

    def __init__(
        self,
        hasher: MinHasher | None = None,
        bands: int = 24,
        shingle_k: int = 3,
        threshold: float = 0.8,
        event_log: AnyEventLog | None = None,
    ) -> None:
        self.hasher = hasher or MinHasher()
        self.event_log = event_log or NULL_EVENT_LOG
        if self.hasher.n_permutations % bands != 0:
            raise ValueError(
                "bands must divide the number of permutations"
            )
        if not 0 < threshold <= 1:
            raise ValueError("threshold must be in (0, 1]")
        self.bands = bands
        self.rows = self.hasher.n_permutations // bands
        self.shingle_k = shingle_k
        self.threshold = threshold
        self._signatures: dict[str, tuple[int, ...]] = {}
        self._buckets: list[dict[tuple[int, ...], list[str]]] = [
            defaultdict(list) for _ in range(bands)
        ]

    def __len__(self) -> int:
        return len(self._signatures)

    def _band_keys(self, signature: tuple[int, ...]):
        for band in range(self.bands):
            yield band, signature[
                band * self.rows : (band + 1) * self.rows
            ]

    def add(self, key: str, text: str) -> list[DuplicatePair]:
        """Index ``text`` under ``key``; returns near-duplicates found.

        Pairs are deduplicated and filtered by the similarity
        ``threshold`` (estimated from signatures).
        """
        if key in self._signatures:
            raise KeyError(f"key {key!r} already indexed")
        signature = self.hasher.signature(
            shingles(text, self.shingle_k)
        )
        candidates: set[str] = set()
        for band, band_key in self._band_keys(signature):
            candidates.update(self._buckets[band][band_key])
        pairs = []
        for other in sorted(candidates):
            similarity = self.hasher.estimate_similarity(
                signature, self._signatures[other]
            )
            if similarity >= self.threshold:
                pairs.append(DuplicatePair(other, key, similarity))
                self.event_log.emit(
                    "near_duplicate",
                    lineage_id=key,
                    key=key,
                    duplicate_of=other,
                    similarity=similarity,
                )
        self._signatures[key] = signature
        for band, band_key in self._band_keys(signature):
            self._buckets[band][band_key].append(key)
        return pairs

    def is_near_duplicate(self, text: str) -> bool:
        """Would this text collide with anything already indexed?"""
        signature = self.hasher.signature(
            shingles(text, self.shingle_k)
        )
        for band, band_key in self._band_keys(signature):
            for other in self._buckets[band][band_key]:
                similarity = self.hasher.estimate_similarity(
                    signature, self._signatures[other]
                )
                if similarity >= self.threshold:
                    return True
        return False


def deduplicate_texts(
    texts: dict[str, str],
    threshold: float = 0.8,
    shingle_k: int = 3,
) -> tuple[list[str], list[DuplicatePair]]:
    """Greedy near-dedup of a keyed text collection.

    Returns (kept keys in input order, duplicate pairs dropped).
    """
    index = NearDuplicateIndex(threshold=threshold, shingle_k=shingle_k)
    kept: list[str] = []
    dropped: list[DuplicatePair] = []
    for key, text in texts.items():
        pairs = index.add(key, text)
        if pairs:
            dropped.append(pairs[0])
        else:
            kept.append(key)
    return kept, dropped
