"""Document store for the data-gathering component.

ETAP's data-gathering component [2] accumulates documents from crawls and
proprietary corpora into a collection *D*.  This store provides the
database half of that component: content-hash deduplication (crawls
re-fetch the same page; mirrors host identical articles), stable insert
order, lookup by id/url, and JSONL persistence so a gathered collection
can be saved and reloaded between pipeline stages.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator


@dataclass(frozen=True)
class StoredDocument:
    """A document as held by the store."""

    doc_id: str
    url: str
    title: str
    text: str
    metadata: dict = field(default_factory=dict)


def content_hash(text: str) -> str:
    """Stable fingerprint of document content for deduplication."""
    normalized = " ".join(text.split()).lower()
    return hashlib.sha256(normalized.encode("utf-8")).hexdigest()


class DuplicateDocumentError(ValueError):
    """Raised by :meth:`DocumentStore.add` in strict mode on duplicates."""


class DocumentStore:
    """In-memory document collection with dedup and JSONL persistence."""

    def __init__(self) -> None:
        self._by_id: dict[str, StoredDocument] = {}
        self._by_url: dict[str, str] = {}
        self._hashes: dict[str, str] = {}
        self._order: list[str] = []

    # -- writes ---------------------------------------------------------------

    def add(
        self,
        document: StoredDocument,
        strict: bool = False,
    ) -> bool:
        """Add a document; returns True if stored, False if deduplicated.

        Duplicates (same id, same url, or same content hash) are skipped,
        or raise :class:`DuplicateDocumentError` when ``strict``.
        """
        fingerprint = content_hash(document.text)
        duplicate_of = None
        if document.doc_id in self._by_id:
            duplicate_of = document.doc_id
        elif document.url and document.url in self._by_url:
            duplicate_of = self._by_url[document.url]
        elif fingerprint in self._hashes:
            duplicate_of = self._hashes[fingerprint]
        if duplicate_of is not None:
            if strict:
                raise DuplicateDocumentError(
                    f"{document.doc_id} duplicates {duplicate_of}"
                )
            return False
        self._by_id[document.doc_id] = document
        if document.url:
            self._by_url[document.url] = document.doc_id
        self._hashes[fingerprint] = document.doc_id
        self._order.append(document.doc_id)
        return True

    def add_many(self, documents: Iterable[StoredDocument]) -> int:
        """Add documents; returns how many were actually stored."""
        return sum(1 for document in documents if self.add(document))

    # -- reads ------------------------------------------------------------------

    def get(self, doc_id: str) -> StoredDocument:
        return self._by_id[doc_id]

    def get_by_url(self, url: str) -> StoredDocument:
        return self._by_id[self._by_url[url]]

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._by_id

    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self) -> Iterator[StoredDocument]:
        # Iterate over a snapshot of the id list: the serve layer
        # re-indexes the store while a crawl may still be adding, and
        # an iterator over the live list would see a moving tail (or,
        # for dict-backed views, RuntimeError: changed size).  Readers
        # get the documents present when iteration started.
        order = tuple(self._order)
        return (self._by_id[doc_id] for doc_id in order)

    def doc_ids(self) -> list[str]:
        return list(self._order)

    # -- persistence --------------------------------------------------------

    def save_jsonl(self, path: str | Path) -> None:
        """Write the collection to a JSON-lines file."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            for document in self:
                record = {
                    "doc_id": document.doc_id,
                    "url": document.url,
                    "title": document.title,
                    "text": document.text,
                    "metadata": document.metadata,
                }
                handle.write(json.dumps(record) + "\n")

    @classmethod
    def load_jsonl(cls, path: str | Path) -> "DocumentStore":
        """Load a collection previously written by :meth:`save_jsonl`."""
        store = cls()
        path = Path(path)
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                store.add(
                    StoredDocument(
                        doc_id=record["doc_id"],
                        url=record.get("url", ""),
                        title=record.get("title", ""),
                        text=record["text"],
                        metadata=record.get("metadata", {}),
                    )
                )
        return store
