"""Document store for the data-gathering component.

ETAP's data-gathering component [2] accumulates documents from crawls and
proprietary corpora into a collection *D*.  This store provides the
database half of that component: content-hash deduplication (crawls
re-fetch the same page; mirrors host identical articles), stable insert
order, lookup by id/url, and JSONL persistence so a gathered collection
can be saved and reloaded between pipeline stages.

Storage layout
--------------

Document text — by far the largest payload — is held in a single
contiguous UTF-8 arena (``bytearray``) with an ``array('Q')`` of slice
offsets, not as per-document Python string objects.  Ids, urls and
titles stay as ordinal-indexed lists, and the common metadata shape
(``doc_type`` / ``published_day``) is stored columnar with a raw-dict
overflow for anything else.  :class:`StoredDocument` values handed back
by :meth:`DocumentStore.get` / iteration are materialized lazily from
the arena.  The flat layout keeps memory-per-doc low at 100k+ documents
and lets sharded ingestion ship a worker's slice of the corpus between
processes as two flat buffers (:meth:`DocumentStore.flat_texts`)
instead of a pickled object graph.
"""

from __future__ import annotations

import hashlib
import json
import sys
from array import array
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator


@dataclass(frozen=True)
class StoredDocument:
    """A document as held by the store."""

    doc_id: str
    url: str
    title: str
    text: str
    metadata: dict = field(default_factory=dict)


def content_hash(text: str) -> str:
    """Stable fingerprint of document content for deduplication."""
    normalized = " ".join(text.split()).lower()
    return hashlib.sha256(normalized.encode("utf-8")).hexdigest()


class DuplicateDocumentError(ValueError):
    """Raised by :meth:`DocumentStore.add` in strict mode on duplicates."""


class DocumentStore:
    """In-memory document collection with dedup and JSONL persistence.

    Backed by a flat text arena (see module docstring); the public
    surface still speaks :class:`StoredDocument`.
    """

    def __init__(self) -> None:
        self._arena = bytearray()
        self._offsets = array("Q", [0])
        self._ids: list[str] = []
        self._urls: list[str] = []
        self._titles: list[str] = []
        # Columnar metadata for the standard {"doc_type", "published_day"}
        # shape; anything else keeps its raw dict in the overflow map.
        self._doc_types: list[str | None] = []
        self._days: list[int | None] = []
        self._meta_overflow: dict[int, dict] = {}
        self._by_id: dict[str, int] = {}
        self._by_url: dict[str, int] = {}
        self._hashes: dict[str, int] = {}
        # Point lookups hand out one canonical view per document (so
        # callers that annotate the returned metadata in place observe
        # their own writes on later gets); bulk iteration materializes
        # transient views and never populates this.
        self._materialized: dict[int, StoredDocument] = {}

    # -- writes ---------------------------------------------------------------

    def add(
        self,
        document: StoredDocument,
        strict: bool = False,
    ) -> bool:
        """Add a document; returns True if stored, False if deduplicated.

        Duplicates (same id, same url, or same content hash) are skipped,
        or raise :class:`DuplicateDocumentError` when ``strict``.
        """
        stored, _, _ = self.try_add(document, strict=strict)
        return stored

    def try_add(
        self,
        document: StoredDocument,
        strict: bool = False,
    ) -> tuple[bool, int, str | None]:
        """Like :meth:`add`, but reports the outcome in full.

        Returns ``(stored, ordinal, fingerprint)`` where ``ordinal`` is
        the document's position in insert order (``-1`` if deduplicated)
        and ``fingerprint`` is the :func:`content_hash` — ``None`` when
        the id or url already deduplicated the document, in which case
        the hash is never computed.  The sharded ingester reuses the
        fingerprint for shard routing so content is hashed exactly once.
        """
        duplicate_of = None
        fingerprint: str | None = None
        if document.doc_id in self._by_id:
            duplicate_of = document.doc_id
        elif document.url and document.url in self._by_url:
            duplicate_of = self._ids[self._by_url[document.url]]
        else:
            # Only hash content once the cheap id/url checks have passed:
            # crawl re-fetches dedupe on url long before the sha256.
            fingerprint = content_hash(document.text)
            if fingerprint in self._hashes:
                duplicate_of = self._ids[self._hashes[fingerprint]]
        if duplicate_of is not None:
            if strict:
                raise DuplicateDocumentError(
                    f"{document.doc_id} duplicates {duplicate_of}"
                )
            return False, -1, fingerprint
        ordinal = len(self._ids)
        self._arena += document.text.encode("utf-8")
        self._offsets.append(len(self._arena))
        self._urls.append(document.url)
        self._titles.append(document.title)
        self._append_metadata(ordinal, document.metadata)
        self._by_id[document.doc_id] = ordinal
        if document.url:
            self._by_url[document.url] = ordinal
        self._hashes[fingerprint] = ordinal  # type: ignore[index]
        # Appended last: concurrent readers snapshot len(_ids), so a
        # document becomes visible only once every column is written.
        self._ids.append(document.doc_id)
        return True, ordinal, fingerprint

    def _append_metadata(self, ordinal: int, metadata: dict) -> None:
        doc_type = metadata.get("doc_type")
        day = metadata.get("published_day")
        standard = (
            set(metadata) <= {"doc_type", "published_day"}
            and (doc_type is None or isinstance(doc_type, str))
            and (day is None or (isinstance(day, int) and not isinstance(day, bool)))
            and all(metadata[key] is not None for key in metadata)
        )
        if standard:
            self._doc_types.append(doc_type)
            self._days.append(day)
        else:
            self._doc_types.append(None)
            self._days.append(None)
            self._meta_overflow[ordinal] = metadata

    def add_many(self, documents: Iterable[StoredDocument]) -> int:
        """Add documents; returns how many were actually stored."""
        return sum(1 for document in documents if self.add(document))

    # -- reads ------------------------------------------------------------------

    def _metadata_at(self, ordinal: int) -> dict:
        overflow = self._meta_overflow.get(ordinal)
        if overflow is not None:
            return overflow
        metadata: dict = {}
        doc_type = self._doc_types[ordinal]
        if doc_type is not None:
            metadata["doc_type"] = doc_type
        day = self._days[ordinal]
        if day is not None:
            metadata["published_day"] = day
        return metadata

    def text_at(self, ordinal: int) -> str:
        """Decode one document's text straight from the arena."""
        start, end = self._offsets[ordinal], self._offsets[ordinal + 1]
        return self._arena[start:end].decode("utf-8")

    def _materialize(self, ordinal: int) -> StoredDocument:
        canonical = self._materialized.get(ordinal)
        if canonical is not None:
            return canonical
        return StoredDocument(
            doc_id=self._ids[ordinal],
            url=self._urls[ordinal],
            title=self._titles[ordinal],
            text=self.text_at(ordinal),
            metadata=self._metadata_at(ordinal),
        )

    def _get_canonical(self, ordinal: int) -> StoredDocument:
        document = self._materialized.get(ordinal)
        if document is None:
            document = self._materialized.setdefault(
                ordinal, self._materialize(ordinal)
            )
        return document

    def get(self, doc_id: str) -> StoredDocument:
        return self._get_canonical(self._by_id[doc_id])

    def get_by_url(self, url: str) -> StoredDocument:
        return self._get_canonical(self._by_url[url])

    def ordinal_of(self, doc_id: str) -> int:
        """Insert-order position of a stored document."""
        return self._by_id[doc_id]

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._by_id

    def __len__(self) -> int:
        return len(self._ids)

    def __iter__(self) -> Iterator[StoredDocument]:
        # Iterate over a snapshot of the ordinal range: the serve layer
        # re-indexes the store while a crawl may still be adding, and an
        # iterator over a live tail would see a moving end.  Columns are
        # append-only, so ordinals below the snapshot never change.
        count = len(self._ids)
        return (self._materialize(ordinal) for ordinal in range(count))

    def doc_ids(self) -> list[str]:
        return list(self._ids)

    # -- flat transport --------------------------------------------------------

    def flat_texts(self, ordinals: Iterable[int]) -> tuple[bytes, array]:
        """Pack the given documents' texts into one flat buffer.

        Returns ``(buffer, offsets)`` where ``offsets`` is an
        ``array('Q')`` of ``len(ordinals) + 1`` slice boundaries.  This
        is the cross-process transport for sharded ingestion: a worker
        receives its shard as two picklable flat buffers and decodes
        texts on demand, never a list of per-document objects.
        """
        packed = bytearray()
        offsets = array("Q", [0])
        for ordinal in ordinals:
            start, end = self._offsets[ordinal], self._offsets[ordinal + 1]
            packed += self._arena[start:end]
            offsets.append(len(packed))
        return bytes(packed), offsets

    def memory_bytes(self) -> int:
        """Approximate resident size of the stored collection.

        Counts the text arena, the offset array, and the per-document
        id/url/title/metadata columns.  Tracked by the ingest bench as
        memory-per-doc.
        """
        total = sys.getsizeof(self._arena)
        total += sys.getsizeof(self._offsets)
        for column in (self._ids, self._urls, self._titles):
            total += sys.getsizeof(column)
            total += sum(sys.getsizeof(value) for value in column)
        total += sys.getsizeof(self._doc_types) + sys.getsizeof(self._days)
        total += sum(sys.getsizeof(meta) for meta in self._meta_overflow.values())
        return total

    # -- persistence --------------------------------------------------------

    def save_jsonl(self, path: str | Path) -> None:
        """Write the collection to a JSON-lines file."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            for document in self:
                record = {
                    "doc_id": document.doc_id,
                    "url": document.url,
                    "title": document.title,
                    "text": document.text,
                    "metadata": document.metadata,
                }
                handle.write(json.dumps(record) + "\n")

    @classmethod
    def load_jsonl(cls, path: str | Path) -> "DocumentStore":
        """Load a collection previously written by :meth:`save_jsonl`."""
        store = cls()
        path = Path(path)
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                store.add(
                    StoredDocument(
                        doc_id=record["doc_id"],
                        url=record.get("url", ""),
                        title=record.get("title", ""),
                        text=record["text"],
                        metadata=record.get("metadata", {}),
                    )
                )
        return store
