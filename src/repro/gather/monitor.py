"""Web content monitoring: page-change detection (eShopMonitor [2]).

The paper's data-gathering component is built on eShopMonitor, "a web
content monitoring tool": it re-fetches known pages, detects which
changed, and extracts what is new.  :class:`PageMonitor` implements
that: it fingerprints each page's sentences, and on re-observation
reports the page-level change plus the *new sentences* — the exact
payload ETAP wants, since fresh sentences are where fresh trigger
events live.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.corpus.web import SyntheticWeb
from repro.robustness.faults import FetchError
from repro.text.sentences import split_sentence_texts


def _sentence_fingerprints(text: str) -> dict[str, str]:
    """sentence-hash -> sentence, preserving one entry per distinct
    sentence."""
    fingerprints: dict[str, str] = {}
    for sentence in split_sentence_texts(text):
        digest = hashlib.sha256(
            " ".join(sentence.lower().split()).encode("utf-8")
        ).hexdigest()
        fingerprints[digest] = sentence
    return fingerprints


@dataclass(frozen=True)
class PageChange:
    """One observed page change."""

    url: str
    kind: str  # "new" | "modified" | "removed"
    new_sentences: tuple[str, ...] = ()
    removed_sentences: int = 0


@dataclass
class ObservationReport:
    """Outcome of one monitoring sweep."""

    observed: int = 0
    #: URLs that failed transiently this sweep; their state is kept
    #: untouched, so the next sweep diffs against the last good fetch.
    unreachable: int = 0
    changes: list[PageChange] = field(default_factory=list)

    @property
    def new_pages(self) -> list[PageChange]:
        return [c for c in self.changes if c.kind == "new"]

    @property
    def modified_pages(self) -> list[PageChange]:
        return [c for c in self.changes if c.kind == "modified"]

    @property
    def removed_pages(self) -> list[PageChange]:
        return [c for c in self.changes if c.kind == "removed"]

    def all_new_sentences(self) -> list[str]:
        return [
            sentence
            for change in self.changes
            for sentence in change.new_sentences
        ]


class PageMonitor:
    """Tracks page content across observations of a set of URLs."""

    def __init__(self, web: SyntheticWeb) -> None:
        self.web = web
        self._known: dict[str, dict[str, str]] = {}

    @property
    def tracked_urls(self) -> list[str]:
        return list(self._known)

    def observe(self, urls: list[str] | None = None) -> ObservationReport:
        """Fetch ``urls`` (default: every tracked URL plus any new ones
        passed explicitly) and report changes since last observation."""
        if urls is None:
            urls = self.tracked_urls
        report = ObservationReport()
        for url in urls:
            report.observed += 1
            if not self.web.has(url):
                if url in self._known:
                    report.changes.append(
                        PageChange(url=url, kind="removed")
                    )
                    del self._known[url]
                continue
            try:
                text = self.web.fetch(url).text
            except FetchError as exc:
                if exc.transient:
                    # Leave known state alone; retry next sweep.
                    report.unreachable += 1
                    continue
                # Permanently dead: same treatment as a 404 removal.
                if url in self._known:
                    report.changes.append(
                        PageChange(url=url, kind="removed")
                    )
                    del self._known[url]
                continue
            fingerprints = _sentence_fingerprints(text)
            previous = self._known.get(url)
            if previous is None:
                report.changes.append(
                    PageChange(
                        url=url,
                        kind="new",
                        new_sentences=tuple(fingerprints.values()),
                    )
                )
            else:
                added = {
                    digest: sentence
                    for digest, sentence in fingerprints.items()
                    if digest not in previous
                }
                removed = sum(
                    1 for digest in previous if digest not in fingerprints
                )
                if added or removed:
                    report.changes.append(
                        PageChange(
                            url=url,
                            kind="modified",
                            new_sentences=tuple(added.values()),
                            removed_sentences=removed,
                        )
                    )
            self._known[url] = fingerprints
        return report
