"""Data-gathering pipeline: crawl -> store -> index.

This is component (1) of Figure 1 in the paper: "gathers a collection of
documents D from various sources ... as well as from a focused crawl of
the Web."  :class:`DataGatherer` runs the focused crawler over a
:class:`~repro.corpus.web.SyntheticWeb`, deposits article pages into a
deduplicating :class:`~repro.gather.store.DocumentStore`, and builds the
search index that the training-data generator later queries.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.corpus.web import SyntheticWeb
from repro.gather.dedup import NearDuplicateIndex
from repro.gather.store import DocumentStore, StoredDocument
from repro.search.crawler import FocusedCrawler, PageScorer, business_relevance
from repro.search.engine import SearchEngine


@dataclass
class GatherReport:
    """Summary of one gathering run."""

    pages_fetched: int
    documents_stored: int
    duplicates_skipped: int
    near_duplicates_skipped: int = 0


class DataGatherer:
    """Crawls a web, stores article documents and indexes them."""

    def __init__(
        self,
        web: SyntheticWeb,
        max_pages: int = 5000,
        scorer: PageScorer = business_relevance,
        near_dedup: bool = False,
        near_dedup_threshold: float = 0.7,
    ) -> None:
        self.web = web
        self.store = DocumentStore()
        self.engine = SearchEngine()
        self._crawler = FocusedCrawler(
            web, scorer=scorer, max_pages=max_pages, max_depth=10
        )
        self._near_index = (
            NearDuplicateIndex(threshold=near_dedup_threshold)
            if near_dedup
            else None
        )

    def gather(self) -> GatherReport:
        """Run the crawl and populate store and index.

        With ``near_dedup`` enabled, syndicated near-copies (wire
        stories republished with minor edits) are dropped in addition
        to the store's exact-content dedup.
        """
        crawl = self._crawler.crawl()
        stored = 0
        skipped = 0
        near_skipped = 0
        for page in crawl.pages:
            if page.document is None:
                continue  # hub/index pages are navigation, not content
            if (
                self._near_index is not None
                and page.document.doc_id not in self.store
                and self._near_index.is_near_duplicate(page.text)
            ):
                near_skipped += 1
                continue
            document = StoredDocument(
                doc_id=page.document.doc_id,
                url=page.url,
                title=page.title,
                text=page.text,
                metadata={
                    "doc_type": page.document.doc_type,
                    "published_day": page.document.published_day,
                },
            )
            if self.store.add(document):
                stored += 1
                self.engine.add_document(
                    document.doc_id, document.text, document.title
                )
                if self._near_index is not None:
                    self._near_index.add(document.doc_id, document.text)
            else:
                skipped += 1
        return GatherReport(
            pages_fetched=len(crawl.pages),
            documents_stored=stored,
            duplicates_skipped=skipped,
            near_duplicates_skipped=near_skipped,
        )
