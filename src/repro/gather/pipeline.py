"""Data-gathering pipeline: crawl -> store -> index.

This is component (1) of Figure 1 in the paper: "gathers a collection of
documents D from various sources ... as well as from a focused crawl of
the Web."  :class:`DataGatherer` runs the focused crawler over a
:class:`~repro.corpus.web.SyntheticWeb`, deposits article pages into a
deduplicating :class:`~repro.gather.store.DocumentStore`, and builds the
search index that the training-data generator later queries.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.corpus.web import SyntheticWeb
from repro.gather.dedup import NearDuplicateIndex
from repro.gather.ingest import AcceptedDoc, ShardedIngester
from repro.gather.store import DocumentStore, StoredDocument
from repro.obs.events import NULL_EVENT_LOG, AnyEventLog
from repro.obs.timeseries import NULL_TELEMETRY, AnyTelemetry
from repro.obs.tracer import NULL_TRACER, AnyTracer
from repro.robustness.faults import FaultyWeb
from repro.robustness.fetcher import ResilientFetcher
from repro.search.crawler import FocusedCrawler, PageScorer, business_relevance
from repro.search.engine import SearchEngine
from repro.text.engine import AnnotationEngine

#: Default page budget for a gathering crawl.  Shared with
#: :class:`~repro.core.etap.EtapConfig.max_crawl_pages` so the direct
#: ``DataGatherer(web)`` path and the ``Etap.from_web`` path honor the
#: same budget.
DEFAULT_MAX_CRAWL_PAGES = 100_000


@dataclass
class GatherReport:
    """Summary of one gathering run.

    The ``*_seconds`` fields are populated when the gatherer runs with
    a real :class:`~repro.obs.Tracer`; under the default null tracer
    they stay 0.0 (measuring would cost clock reads on the hot path).
    """

    pages_fetched: int
    documents_stored: int
    duplicates_skipped: int
    near_duplicates_skipped: int = 0
    crawl_seconds: float = 0.0
    index_seconds: float = 0.0
    total_seconds: float = 0.0
    #: Fetch-path degradation (non-zero only under fault injection):
    #: retry attempts spent, URLs permanently failed (crawled around),
    #: pages served degraded, degraded docs excluded from the index,
    #: and the resilient fetcher's dead-letter count.
    pages_retried: int = 0
    pages_failed: int = 0
    pages_degraded: int = 0
    degraded_skipped: int = 0
    dead_letters: int = 0


class DataGatherer:
    """Crawls a web, stores article documents and indexes them."""

    def __init__(
        self,
        web: SyntheticWeb,
        max_pages: int | None = None,
        scorer: PageScorer = business_relevance,
        near_dedup: bool = False,
        near_dedup_threshold: float = 0.7,
        tracer: AnyTracer | None = None,
        event_log: AnyEventLog | None = None,
        fetcher: ResilientFetcher | None = None,
        index_degraded: bool = False,
        text_engine: AnnotationEngine | None = None,
        workers: int = 1,
        telemetry: AnyTelemetry | None = None,
        mp_start_method: str | None = None,
    ) -> None:
        self.web = web
        self.tracer = tracer or NULL_TRACER
        self.event_log = event_log or NULL_EVENT_LOG
        self.telemetry = telemetry or NULL_TELEMETRY
        self.store = DocumentStore()
        #: Shared annotate-once engine; downstream stages (training,
        #: extraction, serve rebuilds) reuse its caches.
        self.text_engine = text_engine
        #: Ingestion fan-out width.  With ``workers > 1`` the initial
        #: gather partitions accepted documents by content hash and
        #: each worker *process* owns its shard end-to-end — tokenize,
        #: vectorize, build its postings slice — before a deterministic
        #: merge (see :mod:`repro.gather.ingest`); output is
        #: bit-identical to ``workers=1``.  Incremental re-gathers
        #: (e.g. alert polling) fall back to the serial per-document
        #: path with threaded cache warming.
        self.workers = max(1, workers)
        #: Multiprocessing start method for shard workers (``fork``,
        #: ``spawn``, ``forkserver``; ``None`` = platform default).
        self.mp_start_method = mp_start_method
        #: Populated by the initial sharded gather: the corpus
        #: term-count CSR matrix and its term -> column vocabulary.
        self.doc_term_matrix = None
        self.vocabulary: dict[str, int] | None = None
        self._memory_counted = 0
        self.engine = SearchEngine(
            tracer=self.tracer,
            event_log=self.event_log,
            text_engine=text_engine,
        )
        # A faulty web without an explicit fetcher gets the resilient
        # path by default: transparent retries, breakers, dead letters.
        if fetcher is None and isinstance(web, FaultyWeb):
            fetcher = ResilientFetcher(
                web,
                seed=web.seed,
                tracer=self.tracer,
                event_log=self.event_log,
                telemetry=self.telemetry,
            )
        self.fetcher = fetcher
        #: Degraded (truncated/garbled) pages are counted but, by
        #: default, kept out of the store and index: corrupted text
        #: must never mint trigger events a healthy fetch would not.
        self.index_degraded = index_degraded
        self._crawler = FocusedCrawler(
            web,
            scorer=scorer,
            max_pages=(
                DEFAULT_MAX_CRAWL_PAGES if max_pages is None else max_pages
            ),
            max_depth=10,
            tracer=self.tracer,
            event_log=self.event_log,
            fetcher=fetcher,
        )
        self._near_index = (
            NearDuplicateIndex(
                threshold=near_dedup_threshold,
                event_log=self.event_log,
            )
            if near_dedup
            else None
        )

    @property
    def max_pages(self) -> int:
        return self._crawler.max_pages

    def _warm_annotation_cache(self, texts: list[str]) -> None:
        """Pre-tokenize page texts into the shared engine, fanned out.

        This is the *incremental* re-gather path (the initial gather
        shards across processes instead — see
        :mod:`repro.gather.ingest`): ``workers`` threads each take a
        chunk of the candidate texts and populate the engine's
        content-keyed caches.  Cache fills are order independent (same
        content -> same entry), so the serial merge that follows reads
        identical values regardless of worker count or interleaving —
        parallelism changes wall time, never output.
        """
        if self.text_engine is None or not texts:
            return
        with self.tracer.span("gather.warm_cache") as span:
            engine = self.text_engine
            if self.workers <= 1 or len(texts) <= 1:
                for text in texts:
                    engine.index_terms(text)
            else:
                n_workers = min(self.workers, len(texts))
                chunks: list[list[str]] = [[] for _ in range(n_workers)]
                for i, text in enumerate(texts):
                    chunks[i % n_workers].append(text)

                def warm(chunk: list[str]) -> None:
                    for text in chunk:
                        engine.index_terms(text)

                with ThreadPoolExecutor(max_workers=n_workers) as pool:
                    # list() propagates any worker exception here.
                    list(pool.map(warm, chunks))
            span.add_items(len(texts))
        self.tracer.count("ingest.warm_texts", len(texts))
        self.tracer.count("ingest.warm_workers", min(self.workers, len(texts)))

    def gather(self) -> GatherReport:
        """Run the crawl and populate store and index.

        With ``near_dedup`` enabled, syndicated near-copies (wire
        stories republished with minor edits) are dropped in addition
        to the store's exact-content dedup.
        """
        with self.tracer.span("gather") as gather_span:
            crawl = self._crawler.crawl()
            # The initial gather of a fresh store takes the sharded
            # flat-buffer path; incremental re-gathers (alert polling
            # over an already-built index) use the serial per-document
            # path, whose deltas are small by construction.
            sharded = len(self.store) == 0
            if not sharded:
                self._warm_annotation_cache(
                    [
                        page.text
                        for page in crawl.pages
                        if page.document is not None
                        and (
                            self.index_degraded
                            or page.url not in crawl.degraded_urls
                        )
                    ]
                )
            stored = 0
            skipped = 0
            near_skipped = 0
            degraded_skipped = 0
            accepted: list[AcceptedDoc] = []
            with self.tracer.span("gather.store_index") as index_span:
                for page in crawl.pages:
                    if page.document is None:
                        continue  # hub/index pages are navigation, not content
                    if (
                        not self.index_degraded
                        and page.url in crawl.degraded_urls
                    ):
                        degraded_skipped += 1
                        continue
                    if (
                        self._near_index is not None
                        and page.document.doc_id not in self.store
                        and self._near_index.is_near_duplicate(page.text)
                    ):
                        near_skipped += 1
                        self.event_log.emit(
                            "doc_deduped",
                            lineage_id=page.document.doc_id,
                            doc_id=page.document.doc_id,
                            url=page.url,
                            reason="near",
                        )
                        continue
                    document = StoredDocument(
                        doc_id=page.document.doc_id,
                        url=page.url,
                        title=page.title,
                        text=page.text,
                        metadata={
                            "doc_type": page.document.doc_type,
                            "published_day": page.document.published_day,
                        },
                    )
                    added, _, fingerprint = self.store.try_add(document)
                    if added:
                        stored += 1
                        if sharded:
                            accepted.append(
                                AcceptedDoc(
                                    seq=len(accepted),
                                    doc_id=document.doc_id,
                                    title=document.title,
                                    fingerprint=fingerprint,  # type: ignore[arg-type]
                                )
                            )
                        else:
                            self.engine.add_document(
                                document.doc_id,
                                document.text,
                                document.title,
                            )
                        self.event_log.emit(
                            "doc_indexed",
                            lineage_id=document.doc_id,
                            doc_id=document.doc_id,
                            url=document.url,
                            title=document.title,
                        )
                        if self._near_index is not None:
                            self._near_index.add(
                                document.doc_id, document.text
                            )
                    else:
                        skipped += 1
                        self.event_log.emit(
                            "doc_deduped",
                            lineage_id=document.doc_id,
                            doc_id=document.doc_id,
                            url=document.url,
                            reason="exact",
                        )
                if sharded and accepted:
                    ingester = ShardedIngester(
                        self.workers,
                        text_engine=self.text_engine,
                        tracer=self.tracer,
                        event_log=self.event_log,
                        mp_start_method=self.mp_start_method,
                    )
                    result = ingester.ingest(self.store, accepted)
                    self.engine.index.adopt_flat(result.flat)
                    self.doc_term_matrix = result.matrix
                    self.vocabulary = result.vocabulary
                    self.tracer.count(
                        "engine.documents_indexed", stored
                    )
                    self.tracer.count(
                        "ingest.cache_hits", result.sentence_hits
                    )
                    self.tracer.count(
                        "ingest.cache_misses", result.sentence_misses
                    )
                index_span.add_items(stored)
            gather_span.add_items(stored)
            self.tracer.count("gather.documents_stored", stored)
            self.tracer.count("gather.duplicates_skipped", skipped)
            self.tracer.count(
                "gather.near_duplicates_skipped", near_skipped
            )
            self.tracer.count(
                "gather.degraded_skipped", degraded_skipped
            )
            self.tracer.count("ingest.documents_indexed", stored)
            # Keep the cumulative counter equal to the store's current
            # resident size so the memory-per-doc gauge stays honest
            # across repeated gathers.
            memory = self.store.memory_bytes()
            self.tracer.count(
                "ingest.memory_bytes", memory - self._memory_counted
            )
            self._memory_counted = memory
            if self.telemetry.enabled:
                self.telemetry.record("ingest.docs", n=stored)
                self.telemetry.record("ingest.pages", n=len(crawl.pages))
                self.telemetry.record(
                    "ingest.dedup_skipped", n=skipped + near_skipped
                )
            if self.text_engine is not None:
                stats = self.text_engine.stats()
                self.tracer.count("ingest.cache_hits", stats.hits)
                self.tracer.count("ingest.cache_misses", stats.misses)
        crawl_seconds = next(
            (
                child.duration
                for child in gather_span.children
                if child.name == "gather.crawl"
            ),
            0.0,
        )
        return GatherReport(
            pages_fetched=len(crawl.pages),
            documents_stored=stored,
            duplicates_skipped=skipped,
            near_duplicates_skipped=near_skipped,
            crawl_seconds=crawl_seconds,
            index_seconds=index_span.duration,
            total_seconds=gather_span.duration,
            pages_retried=crawl.retried,
            pages_failed=crawl.dead,
            pages_degraded=crawl.degraded,
            degraded_skipped=degraded_skipped,
            dead_letters=(
                len(self.fetcher.dead_letters)
                if self.fetcher is not None
                else 0
            ),
        )
