"""Data gathering: store, crawl pipeline, dedup, monitoring, schedule."""

from repro.gather.dedup import (
    DuplicatePair,
    MinHasher,
    NearDuplicateIndex,
    deduplicate_texts,
    jaccard,
    shingles,
)
from repro.gather.monitor import ObservationReport, PageChange, PageMonitor
from repro.gather.pipeline import DataGatherer, GatherReport
from repro.gather.scheduler import RevisitScheduler
from repro.gather.store import (
    DocumentStore,
    DuplicateDocumentError,
    StoredDocument,
    content_hash,
)

__all__ = [
    "DataGatherer",
    "DocumentStore",
    "DuplicateDocumentError",
    "DuplicatePair",
    "GatherReport",
    "MinHasher",
    "NearDuplicateIndex",
    "ObservationReport",
    "PageChange",
    "PageMonitor",
    "RevisitScheduler",
    "StoredDocument",
    "content_hash",
    "deduplicate_texts",
    "jaccard",
    "shingles",
]
