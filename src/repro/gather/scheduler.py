"""Adaptive revisit scheduling for the monitoring crawler.

A monitoring tool cannot re-fetch every page every cycle.  The classic
policy (used by production monitors like the paper's eShopMonitor):
track each page's observed change behaviour and revisit frequently
changing pages more often.  Multiplicative adaptation — halve the
revisit interval when a change is observed, grow it when the page is
unchanged — bounded to [min_interval, max_interval] ticks.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass


@dataclass
class _Entry:
    interval: float
    next_due: float


class RevisitScheduler:
    """Per-URL adaptive revisit intervals over integer ticks."""

    def __init__(
        self,
        min_interval: float = 1.0,
        max_interval: float = 64.0,
        initial_interval: float = 4.0,
        grow_factor: float = 1.5,
        shrink_factor: float = 0.5,
    ) -> None:
        if not 0 < min_interval <= initial_interval <= max_interval:
            raise ValueError(
                "need 0 < min_interval <= initial_interval "
                "<= max_interval"
            )
        if grow_factor <= 1.0:
            raise ValueError("grow_factor must exceed 1")
        if not 0 < shrink_factor < 1.0:
            raise ValueError("shrink_factor must be in (0, 1)")
        self.min_interval = min_interval
        self.max_interval = max_interval
        self.initial_interval = initial_interval
        self.grow_factor = grow_factor
        self.shrink_factor = shrink_factor
        self._entries: dict[str, _Entry] = {}
        self._heap: list[tuple[float, int, str]] = []
        self._counter = itertools.count()
        self.now = 0.0

    def __contains__(self, url: str) -> bool:
        return url in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def queue_depth(self) -> int:
        """Pending queue entries (includes lazily removed URLs)."""
        return len(self._heap)

    def track(self, url: str) -> None:
        """Start tracking a URL; due immediately."""
        if url in self._entries:
            return
        entry = _Entry(interval=self.initial_interval, next_due=self.now)
        self._entries[url] = entry
        heapq.heappush(
            self._heap, (entry.next_due, next(self._counter), url)
        )

    def forget(self, url: str) -> None:
        """Stop tracking a URL (lazy removal from the queue)."""
        self._entries.pop(url, None)

    def due(self, budget: int) -> list[str]:
        """Advance one tick and pop up to ``budget`` due URLs."""
        if budget <= 0:
            raise ValueError("budget must be positive")
        self.now += 1.0
        popped: list[str] = []
        while self._heap and len(popped) < budget:
            next_due, _, url = self._heap[0]
            if next_due > self.now:
                break
            heapq.heappop(self._heap)
            if url not in self._entries:
                continue  # forgotten
            if url in popped:
                continue  # stale duplicate queue entry
            popped.append(url)
        return popped

    def report(self, url: str, changed: bool) -> float:
        """Feed back an observation; returns the new interval."""
        entry = self._entries.get(url)
        if entry is None:
            raise KeyError(f"{url!r} is not tracked")
        if changed:
            entry.interval = max(
                self.min_interval, entry.interval * self.shrink_factor
            )
        else:
            entry.interval = min(
                self.max_interval, entry.interval * self.grow_factor
            )
        entry.next_due = self.now + entry.interval
        heapq.heappush(
            self._heap, (entry.next_due, next(self._counter), url)
        )
        return entry.interval

    def interval_of(self, url: str) -> float:
        return self._entries[url].interval
