"""Process-sharded ingestion with a deterministic flat-buffer merge.

The gather pipeline's serial annotate→vectorize→index loop is the
ingestion critical path.  This module refactors it into shard
ownership: accepted documents are partitioned by content hash, each
worker owns its shard end-to-end — decode texts from a flat buffer,
tokenize (sentence-cached, see :mod:`repro.text.engine`), vectorize
(:func:`repro.features.batch.counts_from_token_ids`) and build its
postings slice as numpy arrays — and the parent merges the slices into
one :class:`~repro.search.index.FlatPostings` the inverted index adopts
wholesale.

Determinism contract (pinned by the golden snapshot and the
workers-equivalence suites):

* **Dedup stays serial.**  The parent accepts/rejects documents in
  crawl order *before* partitioning, so duplicate resolution can never
  depend on shard interleaving.
* **Shard routing is content-addressed.**  ``shard_of(fingerprint)``
  uses the store's content hash, so the same corpus shards the same
  way on every run and every machine.
* **The merge re-establishes global order.**  Worker-local token
  streams are scattered back into one corpus-ordered stream, term ids
  are renumbered by *global first occurrence* (exactly the order a
  serial build would have discovered them), and the flat postings sort
  is stable — so postings, document frequencies and positions are
  bit-identical to ``workers=1``.

Workers are plain processes (``fork`` or ``spawn`` both work: the
payloads are picklable flat buffers and the worker function is a
module-level callable).  With ``workers=1`` the same shard code runs
inline against the shared annotation engine, warming its sentence
caches for the downstream training and extraction stages.
"""

from __future__ import annotations

from array import array
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import get_context
from typing import Sequence

import numpy as np
from scipy import sparse

from repro.features.batch import counts_from_token_ids
from repro.obs.events import NULL_EVENT_LOG, AnyEventLog
from repro.obs.tracer import NULL_TRACER, AnyTracer
from repro.search.index import FlatPostings
from repro.text.engine import AnnotationEngine, terms_compose
from repro.text.sentences import split_sentences
from repro.text.tokenizer import tokenize_words


def shard_of(fingerprint: str, n_shards: int) -> int:
    """Deterministic shard for a content fingerprint (hex sha256)."""
    return int(fingerprint[:8], 16) % n_shards


@dataclass(frozen=True)
class AcceptedDoc:
    """One document the serial dedup pass accepted, pre-partitioning."""

    seq: int  # position in global accept order (== store ordinal on a fresh store)
    doc_id: str
    title: str
    fingerprint: str


@dataclass
class ShardResult:
    """Everything a worker ships back: flat buffers plus accounting."""

    shard_id: int
    vocab: list[str]
    token_terms: "np.ndarray"  # int32 local term ids, doc-major
    doc_ptr: "np.ndarray"  # int64, len n_docs + 1
    first_doc: "np.ndarray"  # per local term: local doc index of first occurrence
    first_pos: "np.ndarray"  # per local term: in-doc position of first occurrence
    csr_data: "np.ndarray"
    csr_indices: "np.ndarray"
    csr_indptr: "np.ndarray"
    sentence_hits: int
    sentence_misses: int
    fallbacks: int


@dataclass
class IngestResult:
    """The merged output of one sharded ingestion."""

    flat: FlatPostings
    matrix: sparse.csr_matrix
    vocabulary: dict[str, int]
    shard_docs: list[int]
    sentence_hits: int = 0
    sentence_misses: int = 0
    fallbacks: int = 0


def tokenize_shard(
    shard_id: int,
    buffer: bytes,
    offsets: "array[int]",
    engine: AnnotationEngine | None = None,
) -> ShardResult:
    """Tokenize one shard's documents from their flat text buffer.

    Builds the shard-local vocabulary in first-appearance order, the
    doc-major token-id stream, the shard's term-count CSR, and the
    first-occurrence coordinates the merge uses to renumber terms
    globally.  A sentence-level memo caches the id array of every
    distinct sentence — templated corpora repeat sentences heavily, so
    most sentences tokenize exactly once per shard.

    ``engine`` is the shared annotation engine for the inline
    (``workers=1``) path; worker processes pass ``None`` and tokenize
    directly, shipping their cache accounting home in the result.
    """
    vocab_ids: dict[str, int] = {}
    sentence_memo: dict[str, "np.ndarray"] = {}
    doc_arrays: list[np.ndarray] = []
    hits = misses = fallbacks = 0
    n_docs = len(offsets) - 1
    for j in range(n_docs):
        text = buffer[offsets[j]:offsets[j + 1]].decode("utf-8")
        if engine is not None:
            spans = engine.sentence_spans(text)
        else:
            spans = split_sentences(text)
        if terms_compose(text, spans):
            parts: list[np.ndarray] = []
            for span in spans:
                ids = sentence_memo.get(span.text)
                if ids is None:
                    misses += 1
                    if engine is not None:
                        terms = engine.sentence_terms(span.text)
                    else:
                        terms = [
                            word.lower()
                            for word in tokenize_words(span.text)
                        ]
                    ids = np.fromiter(
                        (
                            vocab_ids.setdefault(term, len(vocab_ids))
                            for term in terms
                        ),
                        dtype=np.int32,
                        count=len(terms),
                    )
                    sentence_memo[span.text] = ids
                else:
                    hits += 1
                parts.append(ids)
            doc_arrays.append(
                np.concatenate(parts)
                if parts
                else np.empty(0, dtype=np.int32)
            )
        else:
            # Composability guard tripped: tokenize the whole document.
            fallbacks += 1
            if engine is not None:
                terms = engine.index_terms(text)
            else:
                terms = [word.lower() for word in tokenize_words(text)]
            doc_arrays.append(
                np.fromiter(
                    (
                        vocab_ids.setdefault(term, len(vocab_ids))
                        for term in terms
                    ),
                    dtype=np.int32,
                    count=len(terms),
                )
            )
    lengths = np.fromiter(
        (len(arr) for arr in doc_arrays), dtype=np.int64, count=n_docs
    )
    doc_ptr = np.zeros(n_docs + 1, dtype=np.int64)
    np.cumsum(lengths, out=doc_ptr[1:])
    token_terms = (
        np.concatenate(doc_arrays)
        if doc_arrays
        else np.empty(0, dtype=np.int32)
    )
    n_terms = len(vocab_ids)
    # First occurrence of each term in the shard stream: the sentence
    # memo reuses id arrays, so this is recovered from the stream
    # itself rather than tracked during tokenization.
    first_idx = np.full(n_terms, len(token_terms), dtype=np.int64)
    if len(token_terms):
        np.minimum.at(
            first_idx, token_terms, np.arange(len(token_terms))
        )
    first_doc = np.searchsorted(doc_ptr, first_idx, side="right") - 1
    first_pos = first_idx - doc_ptr[first_doc]
    matrix = counts_from_token_ids(token_terms, doc_ptr, n_terms)
    return ShardResult(
        shard_id=shard_id,
        vocab=list(vocab_ids),
        token_terms=token_terms,
        doc_ptr=doc_ptr,
        first_doc=first_doc,
        first_pos=first_pos,
        csr_data=matrix.data,
        csr_indices=matrix.indices,
        csr_indptr=matrix.indptr,
        sentence_hits=hits,
        sentence_misses=misses,
        fallbacks=fallbacks,
    )


def _tokenize_shard_payload(
    payload: tuple[int, bytes, "array[int]"],
) -> ShardResult:
    """Top-level worker entry point (picklable under fork *and* spawn)."""
    shard_id, buffer, offsets = payload
    return tokenize_shard(shard_id, buffer, offsets, engine=None)


class ShardedIngester:
    """Partition accepted documents by content hash and merge the shards.

    ``workers`` is the number of shard-owning processes; ``1`` runs the
    single shard inline (no subprocess, shared annotation engine).  The
    merge result is identical for any worker count — see the module
    docstring for the contract.
    """

    def __init__(
        self,
        workers: int = 1,
        *,
        text_engine: AnnotationEngine | None = None,
        tracer: AnyTracer | None = None,
        event_log: AnyEventLog | None = None,
        mp_start_method: str | None = None,
    ) -> None:
        self.workers = max(1, workers)
        self.text_engine = text_engine
        self.tracer = tracer or NULL_TRACER
        self.event_log = event_log or NULL_EVENT_LOG
        #: ``fork``/``spawn``/``forkserver`` override for the worker
        #: pool; ``None`` uses the platform default.  The spawn path is
        #: exercised in CI so workers never silently depend on fork.
        self.mp_start_method = mp_start_method

    def ingest(
        self,
        store,
        accepted: Sequence[AcceptedDoc],
    ) -> IngestResult:
        """Shard, tokenize and merge the accepted documents.

        ``store`` is the :class:`~repro.gather.store.DocumentStore`
        already holding the accepted documents (the serial dedup pass
        stored them in crawl order); its flat text arena supplies the
        per-shard transport buffers.
        """
        n_shards = min(self.workers, max(1, len(accepted)))
        shards: list[list[AcceptedDoc]] = [[] for _ in range(n_shards)]
        for doc in accepted:
            shards[shard_of(doc.fingerprint, n_shards)].append(doc)
        payloads = []
        for shard_id, docs in enumerate(shards):
            buffer, offsets = store.flat_texts(
                store.ordinal_of(doc.doc_id) for doc in docs
            )
            payloads.append((shard_id, buffer, offsets))
        with self.tracer.span("ingest.shards") as span:
            if self.workers <= 1 or len(accepted) <= 1:
                results = [
                    tokenize_shard(
                        shard_id, buffer, offsets, engine=self.text_engine
                    )
                    for shard_id, buffer, offsets in payloads
                ]
            else:
                context = (
                    get_context(self.mp_start_method)
                    if self.mp_start_method
                    else None
                )
                with ProcessPoolExecutor(
                    max_workers=n_shards, mp_context=context
                ) as pool:
                    results = list(
                        pool.map(_tokenize_shard_payload, payloads)
                    )
            span.add_items(len(accepted))
        with self.tracer.span("ingest.merge"):
            merged = self._merge(shards, results, accepted)
        for shard_id, docs in enumerate(shards):
            result = results[shard_id]
            self.tracer.count(
                f"ingest.shard_docs[{shard_id}]", len(docs)
            )
            self.tracer.count(
                f"ingest.shard_tokens[{shard_id}]",
                len(result.token_terms),
            )
            self.event_log.emit(
                "shard_merged",
                shard=shard_id,
                docs=len(docs),
                tokens=len(result.token_terms),
                terms=len(result.vocab),
            )
        self.tracer.count("ingest.shards_merged", n_shards)
        if merged.fallbacks:
            self.tracer.count(
                "ingest.compose_fallbacks", merged.fallbacks
            )
        return merged

    def _merge(
        self,
        shards: list[list[AcceptedDoc]],
        results: list[ShardResult],
        accepted: Sequence[AcceptedDoc],
    ) -> IngestResult:
        n_docs = len(accepted)
        seq_arrays = [
            np.fromiter(
                (doc.seq for doc in docs), dtype=np.int64, count=len(docs)
            )
            for docs in shards
        ]
        # Base offset of every accept-order seq: documents were accepted
        # contiguously, so seq values are dense 0..n-1 *relative to this
        # gather* — normalize in case the store already held documents.
        seq_base = min(doc.seq for doc in accepted) if accepted else 0
        # Global vocabulary, renumbered by first occurrence in accept
        # order — the exact discovery order of a serial build.
        first_seen: dict[str, tuple[int, int, int]] = {}
        for docs, result, seqs in zip(shards, results, seq_arrays):
            if not docs:
                continue
            for tid, term in enumerate(result.vocab):
                key = (
                    int(seqs[result.first_doc[tid]]),
                    int(result.first_pos[tid]),
                    tid,
                )
                known = first_seen.get(term)
                if known is None or key < known:
                    first_seen[term] = key
        vocab = sorted(first_seen, key=first_seen.__getitem__)
        term_ids = {term: tid for tid, term in enumerate(vocab)}
        # Scatter each shard's doc-major stream back into accept order.
        lengths = np.zeros(n_docs, dtype=np.int64)
        for result, seqs in zip(results, seq_arrays):
            if len(seqs):
                lengths[seqs - seq_base] = np.diff(result.doc_ptr)
        doc_ptr = np.zeros(n_docs + 1, dtype=np.int64)
        np.cumsum(lengths, out=doc_ptr[1:])
        token_terms = np.empty(int(doc_ptr[-1]), dtype=np.int32)
        rows_parts: list[np.ndarray] = []
        cols_parts: list[np.ndarray] = []
        data_parts: list[np.ndarray] = []
        for result, seqs in zip(results, seq_arrays):
            if not len(seqs):
                continue
            remap = np.fromiter(
                (term_ids[term] for term in result.vocab),
                dtype=np.int32,
                count=len(result.vocab),
            )
            shard_lengths = np.diff(result.doc_ptr)
            targets = np.repeat(
                doc_ptr[seqs - seq_base] - result.doc_ptr[:-1],
                shard_lengths,
            ) + np.arange(len(result.token_terms), dtype=np.int64)
            token_terms[targets] = remap[result.token_terms]
            rows_parts.append(
                np.repeat(seqs - seq_base, np.diff(result.csr_indptr))
            )
            cols_parts.append(remap[result.csr_indices])
            data_parts.append(result.csr_data)
        matrix = sparse.csr_matrix(
            (
                np.concatenate(data_parts)
                if data_parts
                else np.empty(0, dtype=np.float64),
                (
                    np.concatenate(rows_parts)
                    if rows_parts
                    else np.empty(0, dtype=np.intp),
                    np.concatenate(cols_parts)
                    if cols_parts
                    else np.empty(0, dtype=np.intp),
                ),
            ),
            shape=(n_docs, len(vocab)),
            dtype=np.float64,
        )
        flat = FlatPostings(
            vocab=vocab,
            doc_keys=[doc.doc_id for doc in accepted],
            titles=[doc.title for doc in accepted],
            token_terms=token_terms,
            doc_ptr=doc_ptr,
        )
        return IngestResult(
            flat=flat,
            matrix=matrix,
            vocabulary=term_ids,
            shard_docs=[len(docs) for docs in shards],
            sentence_hits=sum(r.sentence_hits for r in results),
            sentence_misses=sum(r.sentence_misses for r in results),
            fallbacks=sum(r.fallbacks for r in results),
        )
