"""Command-line interface: the ETAP pipeline as a workspace tool.

A *workspace* directory holds the gathered document collection
(``store.jsonl``) and the trained per-driver classifiers
(``models/*.classifier.json``), so each stage can run as a separate
process::

    python -m repro gather  --workspace ws --docs 1500
    python -m repro train   --workspace ws
    python -m repro extract --workspace ws --top 10
    python -m repro report  --workspace ws

``python -m repro demo`` runs everything in one go on a small corpus.

Every subcommand takes ``--profile``, which traces the run and prints a
per-stage tree (wall-time, items, throughput) to stderr; ``repro
trace`` replays the demo pipeline and emits the same data as JSON.

Pipeline subcommands also take ``--record FILE``, which turns on the
flight recorder and writes every pipeline event as JSONL.  The recorded
log feeds three observability subcommands::

    repro demo --record events.jsonl --cycles 2
    repro explain <alert-id> --events events.jsonl
    repro events --file events.jsonl --type alert_emitted --tail 5
    repro events --validate events.jsonl
    repro metrics --docs 500
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.drivers import builtin_drivers
from repro.core.etap import Etap, EtapConfig
from repro.core.persistence import load_classifiers, save_classifiers
from repro.corpus.generator import CorpusConfig
from repro.corpus.web import build_web
from repro.evaluation.reporting import ascii_table, format_float
from repro.gather.store import DocumentStore
from repro.obs import (
    EXIT_CODES,
    NULL_EVENT_LOG,
    NULL_TRACER,
    AnyEventLog,
    AnyTracer,
    EventLog,
    HealthMonitor,
    ProvenanceGraph,
    SloEngine,
    StageReport,
    Telemetry,
    Tracer,
    default_slos,
    derive_gauges,
    fetcher_probe,
    gather_probe,
    load_slo_config,
    parse_prometheus_text,
    portal_probe,
    processor_probe,
    prometheus_text,
    read_events,
    validate_jsonl,
)
from repro.robustness import FaultyWeb, get_profile, profile_names
from repro.search.engine import SearchEngine

STORE_FILE = "store.jsonl"
INDEX_FILE = "index.json"
MODELS_DIR = "models"


def _workspace(path: str) -> Path:
    workspace = Path(path)
    workspace.mkdir(parents=True, exist_ok=True)
    return workspace


def _tracer(args: argparse.Namespace) -> AnyTracer:
    return getattr(args, "tracer", None) or NULL_TRACER


def _event_log(args: argparse.Namespace) -> AnyEventLog:
    return getattr(args, "event_log", None) or NULL_EVENT_LOG


def _load_etap(
    workspace: Path,
    config: EtapConfig,
    tracer: AnyTracer = NULL_TRACER,
    event_log: AnyEventLog = NULL_EVENT_LOG,
) -> Etap:
    """Rebuild an Etap from a workspace: store + (cached) index."""
    store_path = workspace / STORE_FILE
    if not store_path.exists():
        raise SystemExit(
            f"no gathered collection at {store_path}; run "
            f"`repro gather` first"
        )
    store = DocumentStore.load_jsonl(store_path)
    index_path = workspace / INDEX_FILE
    if index_path.exists():
        from repro.search.index import InvertedIndex

        engine = SearchEngine(
            index=InvertedIndex.load_json(index_path), tracer=tracer
        )
    else:
        engine = SearchEngine(tracer=tracer)
        for document in store:
            engine.add_document(
                document.doc_id, document.text, document.title
            )
    return Etap(
        store=store,
        engine=engine,
        config=config,
        tracer=tracer,
        event_log=event_log,
    )


def _maybe_faulty(web, args: argparse.Namespace):
    """Wrap the web in seeded fault injection when requested."""
    name = getattr(args, "fault_profile", "none")
    if name == "none":
        return web
    return FaultyWeb(web, get_profile(name), seed=args.seed)


def _degradation_note(report) -> str:
    """One-line fetch-degradation summary for a gather report."""
    if not (report.pages_retried or report.pages_failed
            or report.pages_degraded):
        return ""
    return (
        f" [degraded: {report.pages_retried} retries, "
        f"{report.pages_failed} failed, "
        f"{report.pages_degraded} degraded pages, "
        f"{report.dead_letters} dead-lettered]"
    )


def _load_slos(value: str | None):
    """SLO specs from a config path, or the committed defaults."""
    if not value or value == "default":
        return default_slos()
    return load_slo_config(value)


def _serve_queries() -> list[str]:
    """The portal query mix every load-driving subcommand uses."""
    return [
        query
        for driver in builtin_drivers()
        for query in driver.smart_queries
    ] + ["acquisition", "revenue growth", "new ceo appointment"]


def _health_monitor(
    specs,
    telemetry,
    event_log,
    etap=None,
    gather_report=None,
    portal=None,
    processor=None,
) -> HealthMonitor:
    """Assemble the standard monitor: SLO engine + component probes."""
    engine = SloEngine(specs, telemetry, event_log=event_log)
    monitor = HealthMonitor(engine, event_log=event_log)
    if gather_report is not None:
        monitor.register("ingest", gather_probe(gather_report))
    gatherer = getattr(etap, "_gatherer", None) if etap else None
    if gatherer is not None and gatherer.fetcher is not None:
        monitor.register("fetch", fetcher_probe(gatherer.fetcher))
    if portal is not None:
        monitor.register("serve", portal_probe(portal))
    if processor is not None:
        monitor.register("stream", processor_probe(processor))
    return monitor


def _config_from_args(args: argparse.Namespace) -> EtapConfig:
    return EtapConfig(
        top_k_per_query=getattr(args, "top_k", 200),
        negative_sample_size=getattr(args, "negatives", 6000),
        workers=getattr(args, "workers", 1),
    )


# -- subcommands --------------------------------------------------------------

def cmd_gather(args: argparse.Namespace) -> int:
    workspace = _workspace(args.workspace)
    web = _maybe_faulty(
        build_web(args.docs, CorpusConfig(seed=args.seed)), args
    )
    etap = Etap.from_web(
        web, config=EtapConfig(workers=args.workers),
        tracer=_tracer(args), event_log=_event_log(args),
    )
    report = etap.gather()
    etap.store.save_jsonl(workspace / STORE_FILE)
    etap.engine.index.save_json(workspace / INDEX_FILE)
    print(f"gathered {report.documents_stored} documents "
          f"({report.pages_fetched} pages) -> "
          f"{workspace / STORE_FILE}"
          f"{_degradation_note(report)}")
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    workspace = _workspace(args.workspace)
    etap = _load_etap(
        workspace, _config_from_args(args), _tracer(args),
        _event_log(args),
    )
    summaries = etap.train()
    paths = save_classifiers(etap.classifiers, workspace / MODELS_DIR)
    rows = [
        [
            summary.driver_id,
            summary.n_noisy_positive,
            summary.n_noisy_kept,
            summary.n_negative,
            summary.n_features,
        ]
        for summary in summaries.values()
    ]
    print(ascii_table(
        ["Driver", "Noisy+", "Kept", "Negatives", "Features"], rows
    ))
    print(f"saved {len(paths)} classifiers -> {workspace / MODELS_DIR}")
    return 0


def _load_trained_etap(args: argparse.Namespace) -> Etap:
    workspace = _workspace(args.workspace)
    etap = _load_etap(
        workspace, _config_from_args(args), _tracer(args),
        _event_log(args),
    )
    classifiers = load_classifiers(workspace / MODELS_DIR)
    if not classifiers:
        raise SystemExit(
            f"no trained classifiers in {workspace / MODELS_DIR}; run "
            f"`repro train` first"
        )
    etap.classifiers = classifiers
    return etap


def cmd_extract(args: argparse.Namespace) -> int:
    etap = _load_trained_etap(args)
    events = etap.extract_trigger_events(threshold=args.threshold)
    driver_ids = (
        [args.driver] if args.driver else sorted(events)
    )
    for driver_id in driver_ids:
        if driver_id not in events:
            raise SystemExit(f"unknown driver {driver_id!r}; "
                             f"trained: {sorted(events)}")
        print(f"\n== {driver_id} "
              f"({len(events[driver_id])} trigger events) ==")
        rows = [
            [
                event.rank,
                format_float(event.score),
                ", ".join(event.companies) or "-",
                event.text[:70],
            ]
            for event in events[driver_id][: args.top]
        ]
        print(ascii_table(["Rank", "Score", "Companies", "Snippet"],
                          rows))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    etap = _load_trained_etap(args)
    events = etap.extract_trigger_events()
    industry = None
    if args.industry:
        from repro.core.industry import get_industry

        industry = get_industry(args.industry)
    leads = etap.company_report(events, industry=industry)
    rows = [
        [
            position,
            etap.normalizer.display_name(lead.company),
            format_float(lead.mrr),
            lead.n_trigger_events,
        ]
        for position, lead in enumerate(leads[: args.top], start=1)
    ]
    print(ascii_table(["#", "Company", "MRR", "Trigger events"], rows))
    return 0


def cmd_demo(args: argparse.Namespace) -> int:
    web = _maybe_faulty(
        build_web(args.docs, CorpusConfig(seed=args.seed)), args
    )
    etap = Etap.from_web(
        web,
        config=EtapConfig(top_k_per_query=80, negative_sample_size=1500),
        tracer=_tracer(args),
        event_log=_event_log(args),
    )
    report = etap.gather()
    note = _degradation_note(report)
    if note:
        print(f"gathered {report.documents_stored} documents{note}")
    etap.train()
    events = etap.extract_trigger_events()
    print("trigger events per driver:")
    for driver in builtin_drivers():
        driver_events = events[driver.driver_id]
        best = driver_events[0].text[:60] if driver_events else "-"
        print(f"  {driver.name:24s} {len(driver_events):4d}  "
              f"top: {best}")
    print("\ntop leads (Equation 2 MRR):")
    for position, lead in enumerate(
        etap.company_report(events)[:5], start=1
    ):
        print(f"  {position}. "
              f"{etap.normalizer.display_name(lead.company):24s}"
              f" MRR={lead.mrr:.3f} ({lead.n_trigger_events} events)")
    if args.cycles > 0:
        _demo_alert_cycles(args, etap, web)
    return 0


def _demo_alert_cycles(
    args: argparse.Namespace, etap: Etap, web
) -> int:
    """Evolve the web and poll the alert service ``--cycles`` times."""
    from repro.core.alerts import AlertService
    from repro.corpus.evolve import WebEvolver

    service = AlertService(etap, threshold=args.alert_threshold)
    evolver = WebEvolver(web, CorpusConfig(seed=args.seed + 1))
    print("\nalert cycles:")
    for cycle in range(1, args.cycles + 1):
        evolver.advance(args.new_docs)
        report = service.poll()
        print(f"  cycle {cycle}: {report.new_documents} new docs -> "
              f"{len(report.alerts)} alerts")
        for alert in report.alerts[:5]:
            companies = ", ".join(alert.event.companies) or "-"
            print(f"    {alert.alert_id}  [{alert.score:.2f}] "
                  f"{alert.driver_id}  ({companies})")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    from repro.corpus.generator import CorpusConfig, CorpusGenerator
    from repro.corpus.stats import compute_stats, render_stats

    generator = CorpusGenerator(CorpusConfig(seed=args.seed))
    stats = compute_stats(generator.generate(args.docs))
    print(render_stats(stats))
    return 0


def cmd_reproduce(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.evaluation.datasets import DatasetSpec
    from repro.evaluation.report import write_report

    spec = (
        DatasetSpec() if args.scale == "full" else DatasetSpec.small()
    )
    fault_profile = getattr(args, "fault_profile", "none")
    if fault_profile != "none":
        spec = dataclasses.replace(spec, fault_profile=fault_profile)
    workers = getattr(args, "workers", 1)
    if workers != 1:
        spec = dataclasses.replace(
            spec,
            config=dataclasses.replace(spec.config, workers=workers),
        )
    path = write_report(args.out, spec=spec)
    print(f"wrote reproduction report -> {path}")
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    """Render one alert's provenance chain from a recorded event log."""
    path = Path(args.events)
    if not path.exists():
        raise SystemExit(f"no event log at {path}; record one with "
                         f"`repro demo --record {path} --cycles 1`")
    graph = ProvenanceGraph.from_events(read_events(path))
    try:
        chain = graph.explain(args.alert_id)
    except KeyError as exc:
        raise SystemExit(str(exc.args[0])) from None
    print(chain.render())
    return 0


def cmd_events(args: argparse.Namespace) -> int:
    """Tail/filter a recorded event log, or schema-validate it."""
    if not args.validate and not args.file:
        raise SystemExit("pass --file LOG to read or --validate LOG "
                         "to schema-check")
    path = Path(args.validate if args.validate else args.file)
    if not path.exists():
        raise SystemExit(f"no event log at {path}")
    if args.validate:
        with path.open("r", encoding="utf-8") as handle:
            problems = validate_jsonl(handle)
        if problems:
            for lineno, error in problems:
                print(f"{path}:{lineno}: {error}", file=sys.stderr)
            print(f"{len(problems)} schema problem(s)", file=sys.stderr)
            return 1
        n_lines = sum(
            1 for line in path.read_text(encoding="utf-8").splitlines()
            if line.strip()
        )
        print(f"{path}: {n_lines} events OK (schema v1)")
        return 0
    events = read_events(path)
    if args.type:
        events = [e for e in events if e.event_type == args.type]
    if args.tail:
        events = events[-args.tail:]
    for event in events:
        print(event.to_json())
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """Run the demo pipeline and dump Prometheus-format metrics.

    With ``--watch N`` the command keeps the pipeline alive after the
    first dump: every N seconds (for ``--rounds`` rounds) it evolves
    the web, polls the alert service, and re-renders — so a live run is
    inspectable without a separate exporter.  Windowed-rate/quantile
    gauges and stream/serve rollups ride along via
    :func:`~repro.obs.export.derive_gauges`.
    """
    tracer = _tracer(args)
    if not tracer.enabled:
        tracer = Tracer()
    event_log = _event_log(args)
    telemetry = Telemetry()
    web = _maybe_faulty(
        build_web(args.docs, CorpusConfig(seed=args.seed)), args
    )
    etap = Etap.from_web(
        web,
        config=EtapConfig(top_k_per_query=80, negative_sample_size=1500),
        tracer=tracer,
        event_log=event_log,
        telemetry=telemetry,
    )
    etap.gather()
    etap.train()
    events = etap.extract_trigger_events()
    etap.company_report(events)

    def render() -> None:
        text = prometheus_text(
            tracer.registry,
            gauges=derive_gauges(
                tracer.registry, event_log=event_log,
                telemetry=telemetry,
            ),
        )
        parse_prometheus_text(text)  # self-check: must be parseable
        print(text, end="")

    render()
    if args.watch is None:
        return 0

    import time

    from repro.core.alerts import AlertService
    from repro.corpus.evolve import WebEvolver

    service = AlertService(etap)
    evolver = WebEvolver(web, CorpusConfig(seed=args.seed + 1))
    for round_no in range(1, args.rounds + 1):
        if args.watch > 0:
            time.sleep(args.watch)
        evolver.advance(args.new_docs)
        report = service.poll()
        telemetry.record("metrics.alerts", n=len(report.alerts))
        print(f"# watch round {round_no}: {report.new_documents} new "
              f"docs, {len(report.alerts)} alerts")
        render()
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Gather a corpus, stand up the portal, and drive seeded load."""
    from repro.serve import AlertPortal, LoadGenerator

    tracer = _tracer(args)
    if not tracer.enabled:
        tracer = Tracer()
    event_log = _event_log(args)
    telemetry = Telemetry()
    web = _maybe_faulty(
        build_web(args.docs, CorpusConfig(seed=args.seed)), args
    )
    etap = Etap.from_web(
        web, config=EtapConfig(workers=args.workers),
        tracer=tracer, event_log=event_log, telemetry=telemetry,
    )
    report = etap.gather()
    note = _degradation_note(report)
    print(f"gathered {report.documents_stored} documents{note}")
    with AlertPortal.from_etap(
        etap,
        n_shards=args.shards,
        n_replicas=args.replicas,
        hedge_after=args.hedge_after,
        hedging=not args.no_hedging,
    ) as portal:
        for spec in args.kill_replica:
            try:
                shard_text, replica_text = spec.split(":", 1)
                shard, replica = int(shard_text), int(replica_text)
            except ValueError:
                print(f"bad --kill-replica {spec!r}; expected S:R")
                return 2
            if args.replicas <= 1:
                print("--kill-replica requires --replicas > 1")
                return 2
            portal.kill_replica(shard, replica)
            print(f"killed replica shard{shard}/r{replica}")
        queries = _serve_queries()
        generator = LoadGenerator(
            portal,
            queries,
            n_clients=args.clients,
            n_queries=args.queries,
            seed=args.seed,
        )
        load = generator.run()
        payload = load.to_dict()
        print(ascii_table(
            ["Metric", "Value"],
            [
                ["queries served", payload["n_queries"]],
                ["clients", payload["n_clients"]],
                ["QPS", payload["qps"]],
                ["p50 latency (ms)", payload["p50_ms"]],
                ["p99 latency (ms)", payload["p99_ms"]],
                ["cache hit rate",
                 format_float(payload["cache_hit_rate"])],
                ["shard docs",
                 "/".join(str(n) for n in payload["shard_docs"])],
                ["shard balance (max/mean)",
                 format_float(payload["shard_balance"])],
                ["index generation", payload["generation"]],
                ["statuses",
                 ", ".join(f"{status}={count}" for status, count
                           in payload["statuses"].items())],
            ],
        ))
        if portal.replicas is not None:
            replica_stats = portal.replicas.stats()
            print("\nreplica groups:")
            for group in replica_stats["groups"]:
                print(
                    f"  shard{group['shard']}: "
                    f"{group['up']}/{group['n_replicas']} up, "
                    f"gen {group['latest_generation']}, "
                    f"max lag {group['max_lag']}, "
                    f"breakers open {group['breakers_open']}"
                )
        slo_statuses = None
        if args.slo_config:
            monitor = _health_monitor(
                _load_slos(args.slo_config), telemetry, event_log,
                etap=etap, gather_report=report, portal=portal,
            )
            health = monitor.rollup()
            slo_statuses = health.slos
            print("\n" + health.render())
            breaching = [s.name for s in health.slos if s.breaching]
            if breaching:
                print(f"slo breach(es): {', '.join(breaching)}")
        text = prometheus_text(
            tracer.registry,
            gauges=derive_gauges(
                tracer.registry, portal=portal, telemetry=telemetry,
                slo_statuses=slo_statuses,
            ),
        )
        parse_prometheus_text(text)  # self-check
        serve_lines = [
            line for line in text.splitlines()
            if "serve" in line and not line.startswith("#")
        ]
        if serve_lines:
            print("\nserve.* metrics:")
            for line in serve_lines:
                print(f"  {line}")
    return 0


def cmd_stream(args: argparse.Namespace) -> int:
    """Run the continuous streaming processor with WAL + checkpoints.

    The checkpoint directory is the unit of recovery: it holds the
    trained classifiers, the write-ahead log and the numbered
    checkpoints.  Re-running the command with the same corpus
    parameters and the same directory resumes where the previous
    process stopped — including after a ``--kill-after`` simulated
    crash (exit code 3).  See docs/STREAMING.md.
    """
    from repro.core.persistence import CheckpointStore, WriteAheadLog
    from repro.stream import (
        EvolvingWebStream,
        SimulatedCrash,
        StreamProcessor,
    )

    tracer = _tracer(args)
    event_log = _event_log(args)
    telemetry = Telemetry()
    checkpoint_dir = Path(args.checkpoint_dir)
    checkpoint_dir.mkdir(parents=True, exist_ok=True)
    models_dir = checkpoint_dir / MODELS_DIR
    wal_path = checkpoint_dir / "wal.jsonl"
    checkpoints = CheckpointStore(checkpoint_dir / "checkpoints")

    # The base pipeline is a pure function of (--docs, --seed): the
    # resumed process rebuilds it deterministically, and classifiers
    # are persisted so resumes never retrain.
    web = _maybe_faulty(
        build_web(args.docs, CorpusConfig(seed=args.seed)), args
    )
    etap = Etap.from_web(
        web,
        config=EtapConfig(top_k_per_query=80, negative_sample_size=1500),
        tracer=tracer, event_log=event_log, telemetry=telemetry,
    )
    gather_report = etap.gather()
    classifiers = load_classifiers(models_dir)
    if classifiers:
        etap.classifiers = classifiers
        print(f"loaded {len(classifiers)} classifiers "
              f"from {models_dir}")
    else:
        etap.train()
        save_classifiers(etap.classifiers, models_dir)
        print(f"trained and saved {len(etap.classifiers)} "
              f"classifiers -> {models_dir}")

    source = EvolvingWebStream(
        web,
        config=CorpusConfig(seed=args.seed + 1),
        docs_per_cycle=args.docs_per_cycle,
    )
    lateness = (
        None if args.allowed_lateness < 0 else args.allowed_lateness
    )
    wal = WriteAheadLog(wal_path, kill_after=args.kill_after)
    resuming = wal.last_seq >= 0 or checkpoints.latest() is not None
    if resuming:
        processor, info = StreamProcessor.resume(
            etap, wal, checkpoints,
            allowed_lateness=lateness,
            checkpoint_every=args.checkpoint_every,
            threshold=args.alert_threshold,
            n_shards=args.shards,
            tracer=tracer, event_log=event_log,
        )
        print(f"resumed from checkpoint "
              f"{info.checkpoint_id if info.checkpoint_id is not None else '-'} "
              f"at cycle {info.cycle} "
              f"({info.wal_records_replayed} WAL records replayed, "
              f"{len(info.recovered_alert_keys)} alerts already durable)")
        source.seek(info.cycle)
    else:
        processor = StreamProcessor(
            etap, wal=wal, checkpoints=checkpoints,
            allowed_lateness=lateness,
            checkpoint_every=args.checkpoint_every,
            threshold=args.alert_threshold,
            n_shards=args.shards,
            tracer=tracer, event_log=event_log,
        )
    with processor:
        try:
            while source.cycle < args.cycles:
                report = processor.process_batch(source.next_batch())
                marker = " [checkpoint]" if report.checkpointed else ""
                print(f"  cycle {report.cycle}: "
                      f"{report.n_ingested} ingested, "
                      f"{report.n_late} late, "
                      f"{len(report.alerts)} alerts, "
                      f"gen {report.generation}, "
                      f"watermark {report.watermark}{marker}")
                for alert in report.alerts[:3]:
                    companies = ", ".join(alert.companies) or "-"
                    recovered = " (recovered)" if alert.recovered else ""
                    print(f"    {alert.alert_id}  [{alert.score:.2f}] "
                          f"{alert.driver_id}  ({companies}){recovered}")
        except SimulatedCrash as crash:
            print(f"simulated crash after WAL record "
                  f"{crash.records_written}; re-run with the same "
                  f"--checkpoint-dir to resume", file=sys.stderr)
            return 3
    recovered = sum(1 for a in processor.alerts if a.recovered)
    print(f"stream done: cycle {processor.cycle}, "
          f"{len(processor.alerts)} alerts "
          f"({recovered} recovered), "
          f"{len(processor.late_arrivals)} late arrivals, "
          f"watermark {processor.watermark}, "
          f"index gen {processor.index.generation}")
    if source.dropped or source.degraded:
        print(f"  fetch degradation: {source.dropped} dropped, "
              f"{source.degraded} degraded pages excluded")
    if args.slo_config:
        monitor = _health_monitor(
            _load_slos(args.slo_config), telemetry, event_log,
            etap=etap, gather_report=gather_report,
            processor=processor,
        )
        health = monitor.rollup()
        print("\n" + health.render())
        breaching = [s.name for s in health.slos if s.breaching]
        if breaching:
            print(f"slo breach(es): {', '.join(breaching)}")
    return 0


def _stand_up_portal(args: argparse.Namespace, telemetry):
    """Gather a (possibly faulty) corpus and open a portal over it.

    Shared by ``repro health`` and ``repro top``: search-only serving
    needs no trained classifiers, so this is gather + index + portal.
    Returns ``(etap, gather report, portal)``; caller closes the
    portal.
    """
    from repro.serve import AlertPortal

    web = _maybe_faulty(
        build_web(args.docs, CorpusConfig(seed=args.seed)), args
    )
    etap = Etap.from_web(
        web,
        config=EtapConfig(top_k_per_query=80, negative_sample_size=1500),
        tracer=_tracer(args),
        event_log=_event_log(args),
        telemetry=telemetry,
    )
    report = etap.gather()
    portal = AlertPortal.from_etap(etap, n_shards=args.shards)
    return etap, report, portal


def cmd_health(args: argparse.Namespace) -> int:
    """One-shot health rollup: gather, serve a load slice, evaluate.

    Exit code mirrors the overall status: 0 ok, 1 degraded,
    2 critical — scriptable as a readiness/chaos check.
    """
    import json as json_module

    from repro.serve import LoadGenerator

    event_log = _event_log(args)
    telemetry = Telemetry()
    etap, report, portal = _stand_up_portal(args, telemetry)
    with portal:
        LoadGenerator(
            portal,
            _serve_queries(),
            n_clients=args.clients,
            n_queries=args.queries,
            seed=args.seed,
        ).run()
        monitor = _health_monitor(
            _load_slos(args.slo_config), telemetry, event_log,
            etap=etap, gather_report=report, portal=portal,
        )
        health = monitor.rollup()
    if args.json:
        print(json_module.dumps(health.to_dict(), indent=2))
    else:
        print(health.render())
    return EXIT_CODES[health.status]


def _top_frame(
    round_no: int, telemetry, engine, portal, fetcher
) -> str:
    """One rendered console frame: QPS, latency, budgets, breakers."""
    stats = portal.stats()
    sketch = telemetry.sketch("serve.latency")
    budgets = engine.budgets()
    lines = [
        f"repro top — round {round_no}",
        f"  qps(60s): {telemetry.rate('serve.requests', 60.0):8.1f}   "
        f"p50: {sketch.quantile(0.5) * 1000:7.2f} ms   "
        f"p99: {sketch.quantile(0.99) * 1000:7.2f} ms",
        f"  cache hit rate: {stats['cache_hit_rate']:.2f}   "
        f"queue depth: {stats['queue_depth']}   "
        f"generation: {stats['generation']}",
        "  budgets remaining: "
        + "  ".join(
            f"{name}={remaining * 100:.0f}%"
            for name, remaining in budgets.items()
        ),
    ]
    if fetcher is not None:
        states = fetcher.breaker_states()
        open_hosts = sum(
            1 for state in states.values() if state == "open"
        )
        lines.append(
            f"  breakers: {len(states)} host(s), {open_hosts} open   "
            f"dead letters: {len(fetcher.dead_letters)}"
        )
    return "\n".join(lines)


def cmd_top(args: argparse.Namespace) -> int:
    """Live health console: periodic load + telemetry re-render."""
    import time

    from repro.serve import LoadGenerator

    event_log = _event_log(args)
    telemetry = Telemetry()
    etap, _, portal = _stand_up_portal(args, telemetry)
    gatherer = getattr(etap, "_gatherer", None)
    fetcher = gatherer.fetcher if gatherer is not None else None
    engine = SloEngine(
        _load_slos(args.slo_config), telemetry, event_log=event_log
    )
    clear = not args.no_clear and sys.stdout.isatty()
    queries = _serve_queries()
    with portal:
        for round_no in range(1, args.rounds + 1):
            LoadGenerator(
                portal,
                queries,
                n_clients=args.clients,
                n_queries=args.queries_per_round,
                seed=args.seed + round_no,
            ).run()
            engine.evaluate()
            frame = _top_frame(
                round_no, telemetry, engine, portal, fetcher
            )
            if clear:
                print("\x1b[2J\x1b[H", end="")
            print(frame, flush=True)
            if args.refresh > 0 and round_no < args.rounds:
                time.sleep(args.refresh)
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Replay the demo pipeline under a tracer; emit the report as JSON."""
    tracer = _tracer(args)
    if not tracer.enabled:
        tracer = Tracer()
    web = build_web(args.docs, CorpusConfig(seed=args.seed))
    etap = Etap.from_web(
        web,
        config=EtapConfig(top_k_per_query=80, negative_sample_size=1500),
        tracer=tracer,
    )
    etap.gather()
    etap.train()
    events = etap.extract_trigger_events()
    etap.company_report(events)
    print(StageReport.from_tracer(tracer).to_json())
    return 0


# -- parser -------------------------------------------------------------------

def cmd_queries_plan(args: argparse.Namespace) -> int:
    """Plan smart-query portfolios against a gathered synthetic web."""
    from repro.core.drivers import available_driver_ids, get_driver
    from repro.queries.recipes import PlannerSettings, plan_portfolios

    driver_ids = args.drivers or available_driver_ids()
    try:
        drivers = [get_driver(driver_id) for driver_id in driver_ids]
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    mix = dict(CorpusConfig().mix)
    from repro.corpus.generator import DOC_TYPE_FOR_DRIVER

    for driver in drivers:
        mix.setdefault(DOC_TYPE_FOR_DRIVER[driver.driver_id], 0.07)
    web = _maybe_faulty(
        build_web(args.docs, CorpusConfig(seed=args.seed, mix=mix)),
        args,
    )
    etap = Etap.from_web(
        web,
        drivers=drivers,
        config=EtapConfig(top_k_per_query=args.top_k),
        tracer=_tracer(args),
        event_log=_event_log(args),
    )
    report = etap.gather()
    print(f"gathered {report.documents_stored} documents "
          f"({report.pages_fetched} pages fetched)")
    plans = plan_portfolios(
        etap,
        PlannerSettings(
            budget=args.budget,
            top_k=args.top_k,
            max_queries=args.max_queries,
        ),
        tracer=_tracer(args),
        event_log=_event_log(args),
    )
    for plan in plans.values():
        planned, baseline = plan.planned, plan.baseline
        print(f"\n{plan.driver_id}  "
              f"(budget {planned.budget} pages, "
              f"{plan.n_candidates} candidates)")
        rows = [
            (
                item.evaluation.candidate.query,
                item.evaluation.candidate.source,
                format_float(item.marginal_gain, 1),
                str(item.marginal_cost),
                format_float(item.gain_per_page, 3),
                str(item.cumulative_cost),
            )
            for item in planned.selected
        ]
        print(ascii_table(
            ("query", "source", "gain", "cost", "gain/page", "cum"),
            rows,
        ))
        print(f"  planned:  {len(planned.selected)} queries, "
              f"cost {planned.total_cost}, "
              f"coverage {planned.coverage}, "
              f"P@B {planned.precision_at_budget:.3f}")
        print(f"  seeds:    {len(baseline.selected)} queries, "
              f"cost {baseline.total_cost}, "
              f"coverage {baseline.coverage}, "
              f"P@B {baseline.precision_at_budget:.3f}")
    return 0


def _load_recipe_or_exit(path: str):
    from repro.queries.recipes import RecipeError, load_recipe

    try:
        return load_recipe(path)
    except RecipeError as exc:
        print(str(exc), file=sys.stderr)
        return None


def cmd_recipe_run(args: argparse.Namespace) -> int:
    from repro.queries.recipes import run_recipe

    recipe = _load_recipe_or_exit(args.file)
    if recipe is None:
        return 2
    result = run_recipe(
        recipe,
        tracer=_tracer(args),
        event_log=_event_log(args),
        n_docs=args.docs,
    )
    print(result.render())
    return 0


def cmd_recipe_validate(args: argparse.Namespace) -> int:
    recipe = _load_recipe_or_exit(args.file)
    if recipe is None:
        return 2
    print(f"recipe {recipe.name!r} is valid: "
          f"drivers={list(recipe.drivers)}, n_docs={recipe.n_docs}, "
          f"fault_profile={recipe.fault_profile}, "
          f"budget={recipe.planner.budget}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ETAP: automatic sales lead generation "
                    "(ICDE 2006 reproduction)",
    )
    profiled = argparse.ArgumentParser(add_help=False)
    profiled.add_argument(
        "--profile", action="store_true",
        help="trace the run and print a per-stage tree "
             "(wall-time, items, throughput) to stderr",
    )
    profiled.add_argument(
        "--record", metavar="FILE", default=None,
        help="turn on the flight recorder and write every pipeline "
             "event to FILE as JSONL",
    )
    faulty = argparse.ArgumentParser(add_help=False)
    faulty.add_argument(
        "--fault-profile", dest="fault_profile", default="none",
        choices=profile_names(),
        help="inject seeded fetch faults into the synthetic web "
             "(deterministic per seed; see docs/ROBUSTNESS.md)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gather = sub.add_parser("gather", parents=[profiled, faulty],
                            help="crawl a synthetic web into "
                                 "a workspace")
    gather.add_argument("--workspace", required=True)
    gather.add_argument("--docs", type=int, default=1500)
    gather.add_argument("--seed", type=int, default=7)
    gather.add_argument(
        "--workers", type=int, default=1,
        help="shard-owning ingestion processes (content-hash "
             "partitioned, deterministic merge); output is "
             "bit-identical for any value (see docs/PERFORMANCE.md)",
    )
    gather.set_defaults(func=cmd_gather)

    train = sub.add_parser("train", parents=[profiled],
                           help="train per-driver classifiers")
    train.add_argument("--workspace", required=True)
    train.add_argument("--top-k", type=int, default=200,
                       dest="top_k",
                       help="documents per smart query")
    train.add_argument("--negatives", type=int, default=6000)
    train.set_defaults(func=cmd_train)

    extract = sub.add_parser("extract", parents=[profiled],
                             help="extract + rank trigger events")
    extract.add_argument("--workspace", required=True)
    extract.add_argument("--driver", default=None)
    extract.add_argument("--top", type=int, default=10)
    extract.add_argument("--threshold", type=float, default=None)
    extract.set_defaults(func=cmd_extract)

    report = sub.add_parser("report", parents=[profiled],
                            help="company-level lead list "
                                 "(Equation 2)")
    report.add_argument("--workspace", required=True)
    report.add_argument("--top", type=int, default=15)
    report.add_argument(
        "--industry", default=None,
        help="weight drivers per industry profile (it, steel)",
    )
    report.set_defaults(func=cmd_report)

    demo = sub.add_parser("demo", parents=[profiled, faulty],
                          help="end-to-end demo, no workspace")
    demo.add_argument("--docs", type=int, default=800)
    demo.add_argument("--seed", type=int, default=7)
    demo.add_argument(
        "--cycles", type=int, default=0,
        help="after training, evolve the web and poll the alert "
             "service this many times (alerts land in --record)",
    )
    demo.add_argument("--new-docs", type=int, default=30,
                      dest="new_docs",
                      help="fresh documents published per cycle")
    demo.add_argument("--alert-threshold", type=float, default=0.9,
                      dest="alert_threshold")
    demo.set_defaults(func=cmd_demo)

    stats = sub.add_parser(
        "stats", parents=[profiled],
        help="corpus statistics of a generated web",
    )
    stats.add_argument("--docs", type=int, default=2000)
    stats.add_argument("--seed", type=int, default=7)
    stats.set_defaults(func=cmd_stats)

    reproduce = sub.add_parser(
        "reproduce", parents=[profiled, faulty],
        help="regenerate every paper table/figure into a Markdown "
             "report",
    )
    reproduce.add_argument("--out", required=True)
    reproduce.add_argument(
        "--scale", choices=["small", "full"], default="small",
        help="corpus scale: 'full' matches the paper's test counts",
    )
    reproduce.add_argument(
        "--workers", type=int, default=1,
        help="shard-owning ingestion processes; the report is "
             "bit-identical for any value",
    )
    reproduce.set_defaults(func=cmd_reproduce)

    serve = sub.add_parser(
        "serve", parents=[profiled, faulty],
        help="stand up the alert portal over a gathered corpus and "
             "drive seeded closed-loop query load (see "
             "docs/SERVING.md)",
    )
    serve.add_argument("--docs", type=int, default=800)
    serve.add_argument("--seed", type=int, default=7)
    serve.add_argument("--queries", type=int, default=400,
                       help="total queries issued across all clients")
    serve.add_argument("--clients", type=int, default=8,
                       help="concurrent closed-loop client threads")
    serve.add_argument(
        "--slo-config", default=None,
        help="evaluate SLOs after the stress run and print a health "
             "rollup ('default' for built-ins, or a yaml/json path)",
    )
    serve.add_argument("--shards", type=int, default=4,
                       help="index shards (doc-id hash partitioned)")
    serve.add_argument(
        "--workers", type=int, default=1,
        help="shard-owning ingestion processes during gathering; "
             "served results are bit-identical for any value",
    )
    serve.add_argument(
        "--replicas", type=int, default=1,
        help="replicas per shard group; >1 serves through the hedged "
             "router (docs/SERVING.md, replication section)",
    )
    serve.add_argument(
        "--hedge-after", type=float, default=0.05,
        help="hedge deadline in simulated ticks before a second "
             "replica is tried (requires --replicas > 1)",
    )
    serve.add_argument(
        "--no-hedging", action="store_true",
        help="disable hedged requests (tail latencies eat timeouts)",
    )
    serve.add_argument(
        "--kill-replica", action="append", default=[],
        metavar="SHARD:REPLICA",
        help="kill a replica before the load run (repeatable), e.g. "
             "--kill-replica 0:1",
    )
    serve.set_defaults(func=cmd_serve)

    stream = sub.add_parser(
        "stream", parents=[profiled, faulty],
        help="continuously ingest an evolving web with WAL + "
             "checkpoint recovery (see docs/STREAMING.md)",
    )
    stream.add_argument("--docs", type=int, default=800,
                        help="base corpus size gathered before "
                             "streaming starts")
    stream.add_argument("--seed", type=int, default=7)
    stream.add_argument("--cycles", type=int, default=5,
                        help="publication cycles (micro-batches) to "
                             "consume, counted from cycle 1 — a resume "
                             "continues toward the same total")
    stream.add_argument("--docs-per-cycle", type=int, default=20,
                        dest="docs_per_cycle")
    stream.add_argument("--checkpoint-dir", required=True,
                        dest="checkpoint_dir",
                        help="durability root: classifiers, WAL and "
                             "checkpoints; re-run with the same "
                             "directory to resume")
    stream.add_argument("--checkpoint-every", type=int, default=1,
                        dest="checkpoint_every",
                        help="checkpoint every N committed cycles")
    stream.add_argument("--allowed-lateness", type=int, default=2,
                        dest="allowed_lateness",
                        help="watermark slack in days; late docs go to "
                             "the side channel (negative disables the "
                             "watermark entirely)")
    stream.add_argument("--kill-after", type=int, default=None,
                        dest="kill_after",
                        help="simulate a crash after N WAL records "
                             "(exit code 3; resume by re-running)")
    stream.add_argument("--alert-threshold", type=float, default=0.9,
                        dest="alert_threshold")
    stream.add_argument(
        "--slo-config", default=None,
        help="evaluate SLOs after the streaming run and print a "
             "health rollup ('default' for built-ins, or a path)",
    )
    stream.add_argument("--shards", type=int, default=2,
                        help="serving-index shards")
    stream.set_defaults(func=cmd_stream)

    trace = sub.add_parser(
        "trace", parents=[profiled],
        help="replay the demo pipeline under a tracer and emit the "
             "stage report as JSON",
    )
    trace.add_argument("--docs", type=int, default=800)
    trace.add_argument("--seed", type=int, default=7)
    trace.set_defaults(func=cmd_trace)

    explain = sub.add_parser(
        "explain",
        help="render an alert's full provenance chain (URL -> doc -> "
             "snippet -> features -> score -> rank) from an event log",
    )
    explain.add_argument("alert_id",
                         help="alert id printed by `repro demo --cycles`")
    explain.add_argument("--events", required=True,
                         help="JSONL event log written via --record")
    explain.set_defaults(func=cmd_explain)

    events = sub.add_parser(
        "events",
        help="tail/filter a recorded JSONL event log, or validate it "
             "against the event schema",
    )
    events.add_argument("--file", default=None,
                        help="JSONL event log to read")
    events.add_argument("--type", default=None,
                        help="only events of this type")
    events.add_argument("--tail", type=int, default=0,
                        help="only the last N matching events")
    events.add_argument("--validate", metavar="FILE", default=None,
                        help="schema-check FILE and exit non-zero on "
                             "any invalid record")
    events.set_defaults(func=cmd_events)

    metrics = sub.add_parser(
        "metrics", parents=[profiled, faulty],
        help="run the demo pipeline and dump its metrics in "
             "Prometheus text format",
    )
    metrics.add_argument("--docs", type=int, default=800)
    metrics.add_argument("--seed", type=int, default=7)
    metrics.add_argument(
        "--watch", type=float, default=None, metavar="SECONDS",
        help="after the first dump, keep evolving the corpus and "
             "re-dump every SECONDS (0 to skip sleeping)",
    )
    metrics.add_argument("--rounds", type=int, default=2,
                         help="watch rounds to run before exiting")
    metrics.add_argument("--new-docs", type=int, default=30,
                         help="documents added to the corpus per "
                              "watch round")
    metrics.set_defaults(func=cmd_metrics)

    health = sub.add_parser(
        "health", parents=[profiled, faulty],
        help="gather, serve a load slice, and print a one-shot "
             "ok/degraded/critical health rollup (exit code "
             "0/1/2 mirrors the status)",
    )
    health.add_argument("--docs", type=int, default=400)
    health.add_argument("--seed", type=int, default=7)
    health.add_argument("--queries", type=int, default=60,
                        help="portal queries to issue before the "
                             "rollup")
    health.add_argument("--clients", type=int, default=2)
    health.add_argument("--shards", type=int, default=2)
    health.add_argument(
        "--slo-config", default="default",
        help="'default' for built-in SLOs, or a yaml/json path",
    )
    health.add_argument("--json", action="store_true",
                        help="emit the rollup as JSON instead of text")
    health.set_defaults(func=cmd_health)

    top = sub.add_parser(
        "top", parents=[profiled, faulty],
        help="live health console: per-round QPS, latency "
             "quantiles, cache hit rate, error budgets, breakers",
    )
    top.add_argument("--docs", type=int, default=400)
    top.add_argument("--seed", type=int, default=7)
    top.add_argument("--rounds", type=int, default=3,
                     help="frames to render before exiting")
    top.add_argument("--refresh", type=float, default=1.0,
                     help="seconds between frames (0 = no sleep)")
    top.add_argument("--queries-per-round", type=int, default=40,
                     help="portal queries issued per frame")
    top.add_argument("--clients", type=int, default=2)
    top.add_argument("--shards", type=int, default=2)
    top.add_argument(
        "--slo-config", default="default",
        help="'default' for built-in SLOs, or a yaml/json path",
    )
    top.add_argument("--no-clear", action="store_true",
                     help="never emit ANSI clear codes between frames")
    top.set_defaults(func=cmd_top)

    queries = sub.add_parser(
        "queries",
        help="smart-query planner: candidate portfolios under a "
             "crawl budget (docs/QUERIES.md)",
    )
    queries_sub = queries.add_subparsers(
        dest="queries_command", required=True
    )
    plan = queries_sub.add_parser(
        "plan", parents=[profiled, faulty],
        help="generate, evaluate, and select query portfolios "
             "per driver",
    )
    plan.add_argument("--docs", type=int, default=600)
    plan.add_argument("--seed", type=int, default=7)
    plan.add_argument(
        "--driver", action="append", dest="drivers", default=None,
        metavar="DRIVER_ID",
        help="driver to plan (repeatable; default: all registered)",
    )
    plan.add_argument("--budget", type=int, default=200,
                      help="portfolio crawl budget in pages")
    plan.add_argument("--top-k", type=int, default=40, dest="top_k",
                      help="results fetched per candidate query")
    plan.add_argument("--max-queries", type=int, default=None,
                      dest="max_queries",
                      help="cap on portfolio size")
    plan.set_defaults(func=cmd_queries_plan)

    recipe = sub.add_parser(
        "recipe",
        help="saved scenario configs under configs/recipes/ "
             "(docs/QUERIES.md)",
    )
    recipe_sub = recipe.add_subparsers(
        dest="recipe_command", required=True
    )
    recipe_run = recipe_sub.add_parser(
        "run", parents=[profiled],
        help="execute a recipe end to end: gather, plan, train, "
             "extract, mint alerts",
    )
    recipe_run.add_argument("file", help="path to a recipe .yaml/.json")
    recipe_run.add_argument(
        "--docs", type=int, default=None,
        help="override the recipe's corpus size",
    )
    recipe_run.set_defaults(func=cmd_recipe_run)
    recipe_validate = recipe_sub.add_parser(
        "validate",
        help="schema-check a recipe file and report every problem",
    )
    recipe_validate.add_argument("file")
    recipe_validate.set_defaults(func=cmd_recipe_validate)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    profiling = getattr(args, "profile", False)
    args.tracer = Tracer() if profiling else NULL_TRACER
    recording = getattr(args, "record", None)
    args.event_log = (
        EventLog(sink=recording) if recording else NULL_EVENT_LOG
    )
    if args.event_log.enabled:
        args.event_log.emit("run_started", command=args.command)
    try:
        with args.tracer.span(args.command):
            code = args.func(args)
    finally:
        args.event_log.close()
    if recording:
        print(
            f"recorded {args.event_log.total_emitted} events -> "
            f"{recording}",
            file=sys.stderr,
        )
    if profiling:
        print(
            StageReport.from_tracer(args.tracer).render(),
            file=sys.stderr,
        )
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
