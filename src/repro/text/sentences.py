"""Rule-based sentence boundary detection.

The paper (section 3.1): *"We have built a sentence chunker based on rules
for sentence boundary detection."*  This module is that chunker.  It marks
a period, question mark or exclamation mark as a sentence boundary unless
a rule vetoes it:

* the period belongs to a known abbreviation (``Mr.``, ``Inc.``, ``U.S.``);
* the period sits inside a number (``4.5``) or an initialism (``J. Smith``);
* the next non-space character is lower-case (mid-sentence ellipsis or
  abbreviation the lexicon missed).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.text.tokenizer import ABBREVIATIONS


@dataclass(frozen=True, slots=True)
class Sentence:
    """A sentence with its character span in the source document."""

    text: str
    start: int
    end: int


_BOUNDARY_RE = re.compile(r"[.!?]+")


def _word_before(text: str, index: int) -> str:
    """Return the whitespace-delimited word ending at ``index`` (exclusive).

    Scans backwards from ``index`` instead of regex-searching a copy of
    the whole prefix — this runs once per boundary candidate, so on
    long documents the prefix copies used to dominate the chunker.
    """
    start = index
    while start > 0 and not text[start - 1].isspace():
        start -= 1
    return text[start:index]


def _is_initial(word: str) -> bool:
    """True for single-letter initials like the ``J`` in ``J. Smith``."""
    return len(word) == 1 and word.isalpha() and word.isupper()


def split_sentences(text: str) -> list[Sentence]:
    """Split ``text`` into sentences using the boundary rules above."""
    sentences: list[Sentence] = []
    start = 0
    for match in _BOUNDARY_RE.finditer(text):
        end = match.end()
        mark = match.group()
        if mark.startswith("."):
            before = _word_before(text, match.start())
            candidate = (before + ".").lower()
            if candidate in ABBREVIATIONS or _is_initial(before):
                continue
            if before and before[-1].isdigit():
                # A period directly after a digit is either a decimal point
                # (next char is a digit) or an end of sentence.
                if end < len(text) and text[end].isdigit():
                    continue
        tail = text[end:].lstrip()
        if tail and tail[0].islower():
            continue
        raw = text[start:end]
        stripped = raw.strip()
        if stripped:
            lead = len(raw) - len(raw.lstrip())
            sentences.append(Sentence(stripped, start + lead, end))
        start = end
    remainder = text[start:].strip()
    if remainder:
        lead = len(text[start:]) - len(text[start:].lstrip())
        sentences.append(Sentence(remainder, start + lead, len(text)))
    return sentences


def split_sentence_texts(text: str) -> list[str]:
    """Split and return only the sentence strings."""
    return [sentence.text for sentence in split_sentences(text)]
