"""The annotation engine: compute each document's annotation exactly once.

Every ingestion stage — gathering/indexing, training-data generation,
classifier scoring, serving-layer re-indexing — consumes some slice of
the same per-document NLP work: sentence splitting, tokenization, POS
tagging, NER, stemming, feature abstraction.  Before this engine each
stage re-derived that slice from raw text; the pipeline's hot path was
dominated by redundant annotation.

:class:`AnnotationEngine` is the shared annotate-once facade.  Each
product (sentences, full annotation, index terms, abstracted feature
tokens) lives in a content-hash-keyed, LRU-bounded
:class:`AnnotationCache`, so

* identical text reaching two stages (or two sales drivers) is
  annotated once;
* memory stays bounded on unbounded corpora (LRU eviction);
* a hash collision can never serve the wrong annotation — entries
  store the full source text and verify it on every hit.

The engine is thread-safe: parallel ingestion workers warm the caches
concurrently, and the deterministic merge step consumes the cached
values in canonical order (see :mod:`repro.gather.pipeline`).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.features.abstraction import AbstractionPolicy, abstract_tokens
from repro.text.annotator import AnnotatedText, Annotator
from repro.text.ner import NerConfig
from repro.text.sentences import Sentence, split_sentence_texts, split_sentences
from repro.text.stem import PorterStemmer
from repro.text.tokenizer import tokenize_words

T = TypeVar("T")

#: Default per-product LRU capacity.  Sized for ~100k cached documents
#: per product; eviction keeps long-running monitors bounded.
DEFAULT_CAPACITY = 100_000


def content_key(text: str) -> str:
    """Stable content hash used as the cache key for ``text``."""
    return hashlib.sha1(text.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache (or an aggregate of several)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    collisions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def merged(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
            collisions=self.collisions + other.collisions,
        )


class AnnotationCache:
    """Content-hash-keyed LRU cache for per-text annotation products.

    Values are stored alongside the full source text; a lookup whose
    hash matches but whose text differs (a collision, or a deliberately
    adversarial key) is treated as a miss and recomputed *without*
    evicting the resident entry — correctness never depends on SHA-1
    being collision-free.

    ``capacity <= 0`` disables caching entirely (every lookup computes);
    that mode exists for benchmarking the uncached path.
    """

    def __init__(
        self, capacity: int = DEFAULT_CAPACITY, hashed: bool = True
    ) -> None:
        self.capacity = capacity
        # ``hashed=False`` keys entries by the text itself — right for
        # short, high-repetition texts (individual sentences) where the
        # SHA-1 would cost more than the dict probe it guards.
        self._hashed = hashed
        self._entries: "OrderedDict[str, tuple[str, object]]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def get_or_compute(
        self, text: str, compute: Callable[[str], T]
    ) -> T:
        """Return the cached product for ``text``, computing on miss.

        The compute call runs outside the lock, so concurrent workers
        never serialize on annotation work — at worst two threads
        compute the same value and one insert wins.
        """
        if self.capacity <= 0:
            with self._lock:
                self.stats.misses += 1
            return compute(text)
        key = content_key(text) if self._hashed else text
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                stored_text, value = entry
                if stored_text == text:
                    self.stats.hits += 1
                    self._entries.move_to_end(key)
                    return value
                # Hash collision: the resident entry keeps its slot.
                self.stats.collisions += 1
                self.stats.misses += 1
                collided = True
            else:
                self.stats.misses += 1
                collided = False
        value = compute(text)
        if collided:
            return value
        with self._lock:
            if key not in self._entries:
                self._entries[key] = (text, value)
                if len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                    self.stats.evictions += 1
            else:
                # A concurrent compute won the insert race; reuse its
                # value so every caller observes one canonical object.
                stored_text, resident = self._entries[key]
                if stored_text == text:
                    value = resident
        return value

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


class AnnotationEngine:
    """Shared annotate-once facade over the text pipeline.

    One engine instance is threaded through gathering, indexing,
    training, scoring and serving (see :class:`repro.core.etap.Etap`);
    each derived product is cached by content hash:

    ``sentences``       raw document text -> sentence strings
    ``sentence_spans``  raw document text -> :class:`Sentence` spans
    ``sentence_terms``  one sentence -> its normalized index terms
    ``annotate``        snippet text -> :class:`AnnotatedText`
    ``index_terms``     document text -> normalized index terms
    ``features``        (annotated snippet, policy) -> feature tokens

    The stemmer is shared (and internally memoized), so no two
    classifiers ever re-stem the same word.
    """

    def __init__(
        self,
        ner_config: NerConfig | None = None,
        capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        self.annotator = Annotator(ner_config)
        self.stemmer = PorterStemmer()
        self._annotations = AnnotationCache(capacity)
        self._sentences = AnnotationCache(capacity)
        self._sentence_spans = AnnotationCache(capacity)
        # Sentence-level term cache, keyed by the sentence string itself.
        # Templated corpora repeat whole sentences far more often than
        # whole documents, so this cache is where sharded ingestion wins
        # its tokenization time back.
        self._sentence_terms = AnnotationCache(capacity, hashed=False)
        self._terms = AnnotationCache(capacity)
        self._features: dict[object, AnnotationCache] = {}
        self._features_lock = threading.Lock()
        self._capacity = capacity

    # -- cached products ----------------------------------------------------

    def annotate(self, text: str) -> AnnotatedText:
        """Full annotation (tokens, POS, NER) — computed at most once."""
        return self._annotations.get_or_compute(
            text, self.annotator.annotate
        )

    def sentences(self, text: str) -> list[str]:
        """Sentence strings of a document (cached; do not mutate)."""
        return self._sentences.get_or_compute(
            text, split_sentence_texts
        )

    def sentence_spans(self, text: str) -> list[Sentence]:
        """Sentence spans of a document (cached; do not mutate)."""
        return self._sentence_spans.get_or_compute(text, split_sentences)

    def sentence_terms(self, sentence: str) -> list[str]:
        """Normalized index terms of one sentence (cached; do not mutate)."""
        return self._sentence_terms.get_or_compute(sentence, _index_terms)

    def index_terms(self, text: str) -> list[str]:
        """Normalized (lower-cased) index terms (cached; do not mutate).

        Computed compositionally when possible: split into sentences and
        concatenate each sentence's (cached) terms.  Sentence-level
        reuse dwarfs document-level reuse on templated corpora, so a
        re-index after sharded ingestion runs almost entirely from the
        sentence-term cache.  When the composability guard fails the
        whole document is tokenized directly — the result is identical
        either way (see :func:`terms_compose`).
        """
        return self._terms.get_or_compute(text, self._index_terms_of)

    def _index_terms_of(self, text: str) -> list[str]:
        spans = self.sentence_spans(text)
        if not terms_compose(text, spans):
            return _index_terms(text)
        terms: list[str] = []
        for span in spans:
            terms.extend(self.sentence_terms(span.text))
        return terms

    def features(
        self, text: str, annotated: AnnotatedText, policy: AbstractionPolicy
    ) -> list[str]:
        """Abstracted feature tokens for one annotated snippet.

        Cached per policy, so a bank of per-driver classifiers sharing
        one policy abstracts each snippet once instead of once per
        driver.  ``text`` is the snippet's source text (the cache key);
        ``annotated`` its annotation, typically from :meth:`annotate`.
        """
        cache = self._feature_cache(policy)
        return cache.get_or_compute(
            text,
            lambda _: abstract_tokens(
                annotated, policy, stemmer=self.stemmer
            ),
        )

    def _feature_cache(self, policy: AbstractionPolicy) -> AnnotationCache:
        key = policy.abstract_categories
        cache = self._features.get(key)
        if cache is None:
            with self._features_lock:
                cache = self._features.setdefault(
                    key, AnnotationCache(self._capacity)
                )
        return cache

    # -- statistics ---------------------------------------------------------

    def stats(self) -> CacheStats:
        """Aggregate hit/miss accounting across every product cache."""
        total = CacheStats()
        for cache in self._caches():
            total = total.merged(cache.stats)
        return total

    def stats_by_product(self) -> dict[str, CacheStats]:
        named = {
            "annotations": self._annotations.stats,
            "sentences": self._sentences.stats,
            "sentence_spans": self._sentence_spans.stats,
            "sentence_terms": self._sentence_terms.stats,
            "index_terms": self._terms.stats,
        }
        feature_total = CacheStats()
        for cache in self._features.values():
            feature_total = feature_total.merged(cache.stats)
        named["features"] = feature_total
        return named

    def _caches(self) -> list[AnnotationCache]:
        return [
            self._annotations,
            self._sentences,
            self._sentence_spans,
            self._sentence_terms,
            self._terms,
            *self._features.values(),
        ]


def terms_compose(text: str, spans: list[Sentence]) -> bool:
    """True when per-sentence tokenization composes to the full-text one.

    Tokenizer matches never span whitespace, so concatenating each
    sentence's token stream equals tokenizing the whole document as long
    as every sentence (after the first) is preceded by whitespace in the
    source text.  :func:`~repro.text.sentences.split_sentences` yields
    stripped spans whose gaps are whitespace by construction, so this
    guard holds everywhere today — it exists so a future splitter change
    degrades to the slow path instead of to wrong terms.
    """
    return all(
        span.start == 0 or text[span.start - 1].isspace()
        for span in spans[1:]
    )


def _index_terms(text: str) -> list[str]:
    """The inverted index's term stream for one document."""
    return [word.lower() for word in tokenize_words(text)]
