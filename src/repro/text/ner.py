"""Named-entity recognizer emitting the paper's 13 entity categories.

Section 3.2.1 lists the categories produced by the IBM annotator [11] that
ETAP depends on:

    ORG, DESIG, OBJ, TIM, PERIOD, CURRENCY, YEAR, PRCNT, PROD, PLC, PRSN,
    LNGTH, CNT

This recognizer reproduces them with a longest-match gazetteer layer
(organizations, people, places, designations, products, objects) plus
shape rules for the numeric/temporal categories.  Because the paper notes
that *"the overall result of ETAP is heavily dependent on the accuracy of
the named entity recognizer"*, the recognizer is deliberately imperfect in
a controlled way: :class:`NerConfig.gazetteer_coverage` withholds a
deterministic fraction of gazetteer entries (out-of-vocabulary names go
unannotated, exactly as unknown companies did on the 2005 Web), and
pattern rules pick up *some* but not all of the OOV entities.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.corpus import vocab
from repro.text.tokenizer import Token, tokenize

#: The 13 entity categories from section 3.2.1, in the paper's order.
ENTITY_CATEGORIES = (
    "ORG", "DESIG", "OBJ", "TIM", "PERIOD", "CURRENCY", "YEAR", "PRCNT",
    "PROD", "PLC", "PRSN", "LNGTH", "CNT",
)


@dataclass(frozen=True, slots=True)
class Entity:
    """A recognized entity span.

    ``start``/``end`` are token indices (end exclusive); ``text`` is the
    surface string of the span.
    """

    label: str
    start: int
    end: int
    text: str


@dataclass(frozen=True)
class NerConfig:
    """Tuning knobs for the recognizer.

    gazetteer_coverage:
        Fraction of each gazetteer the recognizer actually knows.  Entries
        are dropped deterministically (by hash), so the same entry is
        always in or always out for a given coverage value.  1.0 means a
        perfect dictionary; the default 0.9 leaves realistic gaps.
    pattern_backoff:
        Whether out-of-gazetteer entities may still be recognized by
        shape patterns (honorific+TitleCase -> PRSN, TitleCase+legal
        suffix -> ORG, known first name + surname -> PRSN).  Disabling
        this models a recognizer with no generalization beyond its
        dictionary — useful for the section 6 NER-quality ablation.
    """

    gazetteer_coverage: float = 0.9
    pattern_backoff: bool = True


def _keep_entry(entry: str, coverage: float) -> bool:
    """Deterministic per-entry coin flip with probability ``coverage``."""
    if coverage >= 1.0:
        return True
    if coverage <= 0.0:
        return False
    digest = hashlib.sha256(entry.lower().encode("utf-8")).digest()
    fraction = int.from_bytes(digest[:4], "big") / 2**32
    return fraction < coverage


class _Gazetteer:
    """Longest-match lookup over multi-token entries."""

    def __init__(self, entries: dict[str, str], coverage: float) -> None:
        self._table: dict[tuple[str, ...], str] = {}
        self.max_len = 1
        #: Longest entry length per first token — the dispatch table
        #: that lets :meth:`lookup` reject the common case (a token
        #: starting no gazetteer entry) with one dict probe instead of
        #: ``max_len`` tuple builds.
        self._first_max: dict[str, int] = {}
        for surface, label in entries.items():
            if not _keep_entry(surface, coverage):
                continue
            key = tuple(surface.lower().split())
            self._table[key] = label
            self.max_len = max(self.max_len, len(key))
            first = key[0]
            if len(key) > self._first_max.get(first, 0):
                self._first_max[first] = len(key)

    def lookup(
        self, stripped: list[str], index: int
    ) -> tuple[str, int] | None:
        """Longest entry starting at ``index``; returns (label, length).

        ``stripped`` are the lower-cased tokens with trailing periods
        stripped (precomputed once per text by the caller), so the
        abbreviation token ``Corp.`` matches the gazetteer entry
        ``... Corp``.
        """
        max_len = self._first_max.get(stripped[index])
        if max_len is None:
            return None
        limit = min(max_len, len(stripped) - index)
        table = self._table
        for length in range(limit, 0, -1):
            label = table.get(tuple(stripped[index : index + length]))
            if label is not None:
                return label, length
        return None


def _build_entries() -> dict[str, str]:
    entries: dict[str, str] = {}
    for name in vocab.ORGANIZATIONS:
        entries[name] = "ORG"
    for name in vocab.PEOPLE:
        entries[name] = "PRSN"
    for place in vocab.PLACES:
        entries[place] = "PLC"
    for designation in vocab.DESIGNATIONS:
        entries[designation] = "DESIG"
    for product in vocab.PRODUCTS:
        entries[product] = "PROD"
    for obj in vocab.OBJECTS:
        entries[obj] = "OBJ"
    for month in vocab.MONTHS:
        entries[month] = "PERIOD"
    for day in vocab.WEEKDAYS:
        entries[day] = "PERIOD"
    for quarter in vocab.QUARTERS:
        entries[quarter] = "PERIOD"
    return entries


_PERIOD_PHRASES = {
    ("last", "year"), ("this", "year"), ("next", "year"),
    ("last", "quarter"), ("this", "quarter"), ("next", "quarter"),
    ("last", "month"), ("this", "month"), ("next", "month"),
    ("fiscal", "year"), ("later", "this", "year"), ("last", "week"),
    ("earlier", "this", "year"), ("previous", "quarter"),
    ("the", "fourth", "quarter"), ("the", "first", "quarter"),
    ("the", "second", "quarter"), ("the", "third", "quarter"),
}

#: First-word dispatch for the period phrases: only a handful of words
#: can open one, so the hot path is a single dict miss.  At most one
#: phrase can match at a given index (no phrase is a prefix of
#: another), so grouping never changes which phrase wins.
_PERIOD_BY_FIRST: dict[str, tuple[tuple[str, ...], ...]] = {}
for _phrase in sorted(_PERIOD_PHRASES):
    _PERIOD_BY_FIRST.setdefault(_phrase[0], ())
    _PERIOD_BY_FIRST[_phrase[0]] += (_phrase,)
del _phrase

_TIME_SUFFIXES = {"am", "pm", "a.m", "p.m", "a.m.", "p.m."}
_CURRENCY_CODES = {"usd", "eur", "gbp", "rs."}
_CURRENCY_WORDS = {"dollars", "euros", "pounds", "rupees"}


def _is_year(text: str) -> bool:
    return len(text) == 4 and text.isdigit() and 1900 <= int(text) <= 2099


def _is_number(text: str) -> bool:
    stripped = text.replace(",", "").replace(".", "", 1)
    return bool(stripped) and stripped.isdigit()


class NamedEntityRecognizer:
    """Rule + gazetteer NER over tokenized text."""

    def __init__(self, config: NerConfig | None = None) -> None:
        self.config = config or NerConfig()
        self._gazetteer = _Gazetteer(
            _build_entries(), self.config.gazetteer_coverage
        )
        self._org_suffixes = {s.lower() for s in vocab.ORG_SUFFIXES} | {
            "incorporated", "corporation", "limited", "company", "plc",
            "gmbh",
        }
        self._honorifics = {h.lower() for h in vocab.HONORIFICS}
        self._units = set()
        for unit in vocab.MEASUREMENT_UNITS:
            self._units.add(tuple(unit.lower().split()))
        self._currency_units = {u.lower() for u in vocab.CURRENCY_UNITS}
        self._first_names = {
            name.lower()
            for name in vocab.FIRST_NAMES
            if _keep_entry(name, self.config.gazetteer_coverage)
        }

    # -- numeric / temporal shape rules ------------------------------------

    def _match_shape(
        self, words: list[str], lowers: list[str], index: int
    ) -> tuple[str, int] | None:
        text = words[index]
        lower = lowers[index]
        first = text[0]

        # Fast path: a plain word can only open a period phrase, and
        # only a few first words qualify; everything below needs a
        # leading ``$``/digit/currency-code/``%``-suffix shape.
        if (
            first.isalpha()
            and lower not in _CURRENCY_CODES
            and not text.endswith("%")
        ):
            phrases = _PERIOD_BY_FIRST.get(lower)
            if phrases:
                for phrase in phrases:
                    span = len(phrase)
                    if tuple(lowers[index : index + span]) == phrase:
                        return "PERIOD", span
            return None

        nxt = lowers[index + 1] if index + 1 < len(lowers) else ""
        nxt2 = lowers[index + 2] if index + 2 < len(lowers) else ""

        if first == "$" and len(text) > 1:
            length = 2 if nxt in self._currency_units else 1
            return "CURRENCY", length
        if lower in _CURRENCY_CODES and _is_number(nxt):
            length = 3 if nxt2 in self._currency_units else 2
            return "CURRENCY", length
        if text.endswith("%") and len(text) > 1:
            return "PRCNT", 1
        if _is_number(text):
            if nxt == "percent" or nxt == "%":
                return "PRCNT", 2
            if nxt in self._currency_units and nxt2 in _CURRENCY_WORDS:
                return "CURRENCY", 3
            if nxt in _CURRENCY_WORDS:
                return "CURRENCY", 2
            if (nxt,) in self._units:
                return "LNGTH", 2
            if (nxt, nxt2) in self._units:
                return "LNGTH", 3
            if ":" == nxt and index + 2 < len(words) and _is_number(nxt2):
                after = (
                    lowers[index + 3]
                    if index + 3 < len(lowers)
                    else ""
                )
                length = 4 if after in _TIME_SUFFIXES else 3
                return "TIM", length
            if nxt in _TIME_SUFFIXES:
                return "TIM", 2
            if _is_year(text):
                return "YEAR", 1
            return "CNT", 1

        phrases = _PERIOD_BY_FIRST.get(lower)
        if phrases:
            for phrase in phrases:
                span = len(phrase)
                if tuple(lowers[index : index + span]) == phrase:
                    return "PERIOD", span
        return None

    # -- pattern back-off for OOV names ------------------------------------

    def _match_patterns(
        self,
        words: list[str],
        lowers: list[str],
        stripped: list[str],
        index: int,
    ) -> tuple[str, int] | None:
        text = words[index]
        lower = lowers[index]
        # Honorific + TitleCase+ -> PRSN ("Mr. John Carter")
        if lower in self._honorifics:
            length = 1
            while (
                index + length < len(words)
                and words[index + length][:1].isupper()
                and words[index + length].isalpha()
                and length <= 3
            ):
                length += 1
            if length > 1:
                return "PRSN", length
        # Known first name + TitleCase surname -> PRSN ("Wei Novak")
        if lower in self._first_names and index + 1 < len(words):
            surname = words[index + 1]
            if surname[:1].isupper() and surname.isalpha():
                return "PRSN", 2
        # TitleCase+ followed by a legal suffix -> ORG ("Foobar Widgets Inc")
        if text[:1].isupper() and text.isalpha():
            length = 1
            while (
                index + length < len(words)
                and words[index + length][:1].isupper()
                and stripped[index + length].isalpha()
                and length < 4
            ):
                if stripped[index + length] in self._org_suffixes:
                    return "ORG", length + 1
                length += 1
        return None

    # -- public API ---------------------------------------------------------

    def recognize_tokens(self, tokens: list[Token]) -> list[Entity]:
        """Recognize entities over a pre-tokenized text."""
        words = [token.text for token in tokens]
        # One lower-case/strip pass up front; every matcher reads these
        # instead of re-lowering the same token once per candidate span.
        lowers = [word.lower() for word in words]
        stripped = [lower.rstrip(".") for lower in lowers]
        entities: list[Entity] = []
        pattern_backoff = self.config.pattern_backoff
        lookup = self._gazetteer.lookup
        index = 0
        n_words = len(words)
        while index < n_words:
            match = lookup(stripped, index)
            if match is None:
                match = self._match_shape(words, lowers, index)
            if match is None and pattern_backoff:
                match = self._match_patterns(words, lowers, stripped, index)
            if match is None:
                index += 1
                continue
            label, length = match
            surface = " ".join(words[index : index + length])
            entities.append(Entity(label, index, index + length, surface))
            index += length
        return entities

    def recognize(self, text: str) -> list[Entity]:
        """Tokenize ``text`` and recognize entities."""
        return self.recognize_tokens(tokenize(text))
