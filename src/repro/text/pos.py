"""Part-of-speech tagger (substitute for QTag, section 3.2.1).

The paper assigns a part-of-speech category to every token that the
named-entity recognizer does not claim, and Figures 3-4 analyze the
abstraction categories ``vb``, ``rb``, ``nn``, ``np`` and ``jj``.  This
tagger reproduces that behaviour with a three-layer design, in the spirit
of Brill's transformation-based tagger:

1. a closed-class lexicon (determiners, prepositions, pronouns, modals,
   conjunctions) plus an open-class seed lexicon of common business verbs,
   adjectives and adverbs;
2. morphological suffix rules for unknown words (``-ly`` -> rb,
   ``-ing``/``-ed`` -> vb, ``-tion`` -> nn, capitalized -> np, ...);
3. contextual patch rules that fix the most common lexical-stage errors
   (e.g. a verb-tagged word following a determiner becomes a noun).

Tagset (lower-case, matching the figures in the paper): ``nn`` common
noun, ``np`` proper noun, ``vb`` verb, ``jj`` adjective, ``rb`` adverb,
``cd`` number, ``dt`` determiner, ``in`` preposition, ``prp`` pronoun,
``cc`` conjunction, ``md`` modal, ``to``, ``punct``, ``sym``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.text.tokenizer import Token, tokenize

DETERMINERS = frozenset(
    "the a an this that these those each every some any no all both".split()
)
PREPOSITIONS = frozenset(
    """in on at by for with from of to into over under between among
    during after before against through across within without about
    above below near behind beyond""".split()
)
PRONOUNS = frozenset(
    """i you he she it we they me him her us them his hers its their
    theirs our ours your yours who whom whose which what""".split()
)
CONJUNCTIONS = frozenset("and or but nor so yet while although because".split())
MODALS = frozenset("will would can could may might shall should must".split())

#: Common verbs (base + inflected) seen in business news.
_VERB_SEED = """
is are was were be been being has have had do does did say says said
announce announced announces report reported reports acquire acquired
acquires buy bought buys merge merged merges appoint appointed appoints
name named names hire hired hires promote promoted promotes resign
resigned resigns retire retired retires post posted posts record
recorded records grow grew grown grows rise rose risen rises fall fell
fallen falls increase increased increases decrease decreased decreases
plan planned plans expect expected expects see saw seen sees make made
makes take took taken takes join joined joins lead led leads serve
served serves step stepped steps launch launched launches sign signed
signs complete completed completes agree agreed agrees deliver delivered
delivers achieve achieved achieves unveil unveiled unveils disclose
disclosed discloses register registered registers tap tapped taps elect
elected elects oust ousted welcome welcomed welcomes recruit recruited
recruits select selected selects elevate elevated elevates depart
departed departs leave left leaves succeed succeeded succeeds replace
replaced replaces become became becomes remain remained remains continue
continued continues snap snapped
""".split()
VERBS = frozenset(_VERB_SEED)

_ADJECTIVE_SEED = """
new strong weak solid severe sharp significant record quarterly annual
fiscal net major minor senior junior former current chief executive
financial global local strategic robust impressive stellar healthy
remarkable substantial disappointing dismal steep heavy recent definitive
big small large good bad high low early late next last previous
""".split()
ADJECTIVES = frozenset(_ADJECTIVE_SEED)

_ADVERB_SEED = """
also now then very well today yesterday tomorrow recently previously
sharply significantly strongly approximately nearly about already soon
later earlier still again once formerly effective immediately
""".split()
ADVERBS = frozenset(_ADVERB_SEED)

_NOUN_SUFFIXES = (
    "tion", "sion", "ment", "ness", "ship", "ance", "ence", "ity", "ism",
    "ist", "ure", "age", "ers", "or", "er",
)
_ADJ_SUFFIXES = ("ous", "ful", "ive", "able", "ible", "al", "ic", "ish")


@dataclass(frozen=True, slots=True)
class TaggedToken:
    """A token paired with its part-of-speech tag."""

    token: Token
    tag: str

    @property
    def text(self) -> str:
        return self.token.text


def _lexical_tag(token: Token, is_sentence_initial: bool) -> str:
    text = token.text
    lower = text.lower()
    first = text[0]
    # First-char guard: almost every token starts alphanumeric, which
    # settles the punct/sym question without scanning the whole token.
    if not first.isalnum() and not any(char.isalnum() for char in text):
        return "punct" if text in ".,;:!?\"'()-" else "sym"
    if first.isdigit() or (first == "$" and len(text) > 1):
        return "cd"
    if lower == "to":
        return "to"
    if lower in DETERMINERS:
        return "dt"
    if lower in PREPOSITIONS:
        return "in"
    if lower in PRONOUNS:
        return "prp"
    if lower in CONJUNCTIONS:
        return "cc"
    if lower in MODALS:
        return "md"
    if lower in ADVERBS or lower.endswith("ly"):
        return "rb"
    if lower in VERBS:
        return "vb"
    if lower in ADJECTIVES:
        return "jj"
    if text[0].isupper() and not is_sentence_initial:
        return "np"
    if lower.endswith(("ing", "ed")) and len(lower) > 4:
        return "vb"
    if lower.endswith(_ADJ_SUFFIXES):
        return "jj"
    if lower.endswith(_NOUN_SUFFIXES):
        return "nn"
    if text[0].isupper() and is_sentence_initial and len(text) > 1:
        # Sentence-initial capitalized unknown: proper noun if it is not a
        # known common word shape (heuristic: keep np for TitleCase).
        return "np" if text[1:].islower() and lower not in VERBS else "nn"
    return "nn"


def _apply_context_patches(tagged: list[TaggedToken]) -> list[TaggedToken]:
    """Brill-style contextual repairs over the lexical tagging."""
    patched = list(tagged)
    for index, item in enumerate(patched):
        previous = patched[index - 1] if index > 0 else None
        # DT + vb -> DT + nn ("the acquired assets" is adjectival/nominal)
        if item.tag == "vb" and previous is not None and previous.tag == "dt":
            nxt = patched[index + 1] if index + 1 < len(patched) else None
            if nxt is None or nxt.tag in {"punct", "in", "cc"}:
                patched[index] = TaggedToken(item.token, "nn")
        # TO + nn -> TO + vb ("plans to growth" never occurs; "to acquire")
        if item.tag == "nn" and previous is not None and previous.tag == "to":
            if item.text.lower() in VERBS:
                patched[index] = TaggedToken(item.token, "vb")
        # MD + nn -> MD + vb ("will merge")
        if item.tag == "nn" and previous is not None and previous.tag == "md":
            if item.text.lower() in VERBS:
                patched[index] = TaggedToken(item.token, "vb")
    return patched


def tag_tokens(tokens: list[Token]) -> list[TaggedToken]:
    """Tag a pre-tokenized sentence."""
    tagged: list[TaggedToken] = []
    sentence_initial = True
    for token in tokens:
        tag = _lexical_tag(token, sentence_initial)
        tagged.append(TaggedToken(token, tag))
        if tag != "punct":
            sentence_initial = False
        elif token.text in ".!?":
            sentence_initial = True
    return _apply_context_patches(tagged)


def tag(text: str) -> list[TaggedToken]:
    """Tokenize and tag raw text."""
    return tag_tokens(tokenize(text))


#: The open-class POS categories analyzed in Figures 3-4 of the paper.
OPEN_CLASS_TAGS = ("vb", "rb", "nn", "np", "jj")
