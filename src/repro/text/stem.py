"""Porter stemmer (Porter, 1980), implemented from the original paper.

The paper's pre-processing pipeline (section 3.2.1) includes stemming.
This is a faithful implementation of the classic five-step Porter
algorithm, the standard stemmer of the era (and of Weka's text filters,
which the authors used).
"""

from __future__ import annotations

_VOWELS = frozenset("aeiou")


def _is_consonant(word: str, index: int) -> bool:
    char = word[index]
    if char in _VOWELS:
        return False
    if char == "y":
        return index == 0 or not _is_consonant(word, index - 1)
    return True


def _measure(stem: str) -> int:
    """Porter's m: the number of VC sequences in the stem."""
    count = 0
    previous_was_vowel = False
    for index in range(len(stem)):
        is_vowel = not _is_consonant(stem, index)
        if not is_vowel and previous_was_vowel:
            count += 1
        previous_was_vowel = is_vowel
    return count


def _contains_vowel(stem: str) -> bool:
    return any(not _is_consonant(stem, index) for index in range(len(stem)))


def _ends_double_consonant(word: str) -> bool:
    return (
        len(word) >= 2
        and word[-1] == word[-2]
        and _is_consonant(word, len(word) - 1)
    )


def _ends_cvc(word: str) -> bool:
    """True when the word ends consonant-vowel-consonant, last not w/x/y."""
    if len(word) < 3:
        return False
    return (
        _is_consonant(word, len(word) - 3)
        and not _is_consonant(word, len(word) - 2)
        and _is_consonant(word, len(word) - 1)
        and word[-1] not in "wxy"
    )


def _replace_suffix(word: str, suffix: str, replacement: str) -> str:
    return word[: len(word) - len(suffix)] + replacement


def _step_1a(word: str) -> str:
    if word.endswith("sses"):
        return _replace_suffix(word, "sses", "ss")
    if word.endswith("ies"):
        return _replace_suffix(word, "ies", "i")
    if word.endswith("ss"):
        return word
    if word.endswith("s"):
        return word[:-1]
    return word


def _step_1b(word: str) -> str:
    if word.endswith("eed"):
        stem = word[:-3]
        if _measure(stem) > 0:
            return stem + "ee"
        return word
    touched = False
    if word.endswith("ed"):
        stem = word[:-2]
        if _contains_vowel(stem):
            word, touched = stem, True
    elif word.endswith("ing"):
        stem = word[:-3]
        if _contains_vowel(stem):
            word, touched = stem, True
    if touched:
        if word.endswith(("at", "bl", "iz")):
            return word + "e"
        if _ends_double_consonant(word) and word[-1] not in "lsz":
            return word[:-1]
        if _measure(word) == 1 and _ends_cvc(word):
            return word + "e"
    return word


def _step_1c(word: str) -> str:
    if word.endswith("y") and _contains_vowel(word[:-1]):
        return word[:-1] + "i"
    return word


_STEP_2_RULES = (
    ("ational", "ate"), ("tional", "tion"), ("enci", "ence"),
    ("anci", "ance"), ("izer", "ize"), ("abli", "able"), ("alli", "al"),
    ("entli", "ent"), ("eli", "e"), ("ousli", "ous"), ("ization", "ize"),
    ("ation", "ate"), ("ator", "ate"), ("alism", "al"), ("iveness", "ive"),
    ("fulness", "ful"), ("ousness", "ous"), ("aliti", "al"),
    ("iviti", "ive"), ("biliti", "ble"),
)

_STEP_3_RULES = (
    ("icate", "ic"), ("ative", ""), ("alize", "al"), ("iciti", "ic"),
    ("ical", "ic"), ("ful", ""), ("ness", ""),
)

_STEP_4_SUFFIXES = (
    "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
    "ment", "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
)


def _apply_rules(word: str, rules: tuple[tuple[str, str], ...]) -> str:
    for suffix, replacement in rules:
        if word.endswith(suffix):
            stem = word[: len(word) - len(suffix)]
            if _measure(stem) > 0:
                return stem + replacement
            return word
    return word


def _step_4(word: str) -> str:
    for suffix in _STEP_4_SUFFIXES:
        if word.endswith(suffix):
            stem = word[: len(word) - len(suffix)]
            if suffix == "ion" and (not stem or stem[-1] not in "st"):
                return word
            if _measure(stem) > 1:
                return stem
            return word
    return word


def _step_5a(word: str) -> str:
    if word.endswith("e"):
        stem = word[:-1]
        m = _measure(stem)
        if m > 1 or (m == 1 and not _ends_cvc(stem)):
            return stem
    return word


def _step_5b(word: str) -> str:
    if word.endswith("ll") and _measure(word) > 1:
        return word[:-1]
    return word


def stem(word: str) -> str:
    """Return the Porter stem of ``word`` (lower-cased)."""
    word = word.lower()
    if len(word) <= 2 or not word.isalpha():
        return word
    word = _step_1a(word)
    word = _step_1b(word)
    word = _step_1c(word)
    word = _apply_rules(word, _STEP_2_RULES)
    word = _apply_rules(word, _STEP_3_RULES)
    word = _step_4(word)
    word = _step_5a(word)
    word = _step_5b(word)
    return word


class PorterStemmer:
    """Caching wrapper around :func:`stem` for bulk pipelines."""

    def __init__(self) -> None:
        self._cache: dict[str, str] = {}

    def stem(self, word: str) -> str:
        key = word.lower()
        cached = self._cache.get(key)
        if cached is None:
            cached = stem(key)
            self._cache[key] = cached
        return cached

    def stem_all(self, words: list[str]) -> list[str]:
        return [self.stem(word) for word in words]
