"""Regex tokenizer for business-news text.

Produces :class:`Token` objects carrying character offsets so downstream
annotators (POS, NER) can align spans back to the source text.  The token
grammar understands the lexical shapes that matter to ETAP's named-entity
categories: currency amounts (``$4.5``), percentages (``12%``), years
(``1998``), decimal and comma-grouped numbers, abbreviations with internal
periods (``Mr.``, ``U.S.``), hyphenated words and possessives.
"""

from __future__ import annotations

import re
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Token:
    """A single token with its character span in the source text."""

    text: str
    start: int
    end: int

    def __str__(self) -> str:  # pragma: no cover - convenience only
        return self.text


#: Common abbreviations whose trailing period belongs to the token.
ABBREVIATIONS = frozenset(
    {
        "mr.", "ms.", "mrs.", "dr.", "prof.", "sr.", "jr.", "st.",
        "inc.", "corp.", "ltd.", "co.", "llc.", "vs.", "etc.", "rs.",
        "jan.", "feb.", "mar.", "apr.", "jun.", "jul.", "aug.", "sep.",
        "sept.", "oct.", "nov.", "dec.", "u.s.", "u.k.", "e.g.", "i.e.",
        "no.", "vol.", "fig.", "approx.",
    }
)

_TOKEN_RE = re.compile(
    r"""
    \$\d[\d,]*(?:\.\d+)?          # currency amounts: $4.5  $1,200
  | \d[\d,]*(?:\.\d+)?%           # percentages: 12%  3.5%
  | \d[\d,]*(?:\.\d+)?            # plain numbers: 1998  4,500  3.14
  | [A-Za-z]+(?:\.[A-Za-z]+)+\.?  # dotted abbreviations: U.S.  e.g.
  | [A-Za-z]+\.(?=\s|$)           # word followed by period (maybe abbrev)
  | [A-Za-z]+(?:-[A-Za-z]+)+      # hyphenated words: state-of-the-art
  | [A-Za-z]+'[a-z]+              # contractions / possessives: it's
  | [A-Za-z]+                     # plain words
  | %                             # stray percent sign
  | [^\sA-Za-z0-9]                # any other single symbol
    """,
    re.VERBOSE,
)


def tokenize(text: str) -> list[Token]:
    """Split ``text`` into tokens, keeping character offsets.

    A trailing period is kept attached only for known abbreviations
    (``Mr.``, ``Inc.``); otherwise it is emitted as its own token so the
    sentence chunker can treat it as a boundary candidate.
    """
    tokens: list[Token] = []
    append = tokens.append
    for match in _TOKEN_RE.finditer(text):
        raw = match.group()
        start, end = match.span()
        if raw.endswith(".") and len(raw) > 1 and "." not in raw[:-1]:
            if raw.lower() not in ABBREVIATIONS:
                word = raw[:-1]
                split = start + len(word)
                append(Token(word, start, split))
                append(Token(".", split, end))
                continue
        append(Token(raw, start, end))
    return tokens


def tokenize_words(text: str) -> list[str]:
    """Tokenize and return only the token strings.

    Same token stream as :func:`tokenize`, minus the offset bookkeeping
    — callers that only want strings (index terms, query parsing) skip
    one :class:`Token` allocation per token on the ingestion hot path.
    """
    words: list[str] = []
    append = words.append
    for match in _TOKEN_RE.finditer(text):
        raw = match.group()
        if (
            raw.endswith(".")
            and len(raw) > 1
            and "." not in raw[:-1]
            and raw.lower() not in ABBREVIATIONS
        ):
            append(raw[:-1])
            append(".")
        else:
            append(raw)
    return words
