"""Text-processing substrate: tokenizer, sentences, stemmer, POS, NER."""

from repro.text.annotator import AnnotatedText, AnnotatedToken, Annotator
from repro.text.engine import (
    AnnotationCache,
    AnnotationEngine,
    CacheStats,
    content_key,
)
from repro.text.normalize import normalize_crawl_text
from repro.text.ner import (
    ENTITY_CATEGORIES,
    Entity,
    NamedEntityRecognizer,
    NerConfig,
)
from repro.text.pos import OPEN_CLASS_TAGS, TaggedToken, tag, tag_tokens
from repro.text.sentences import Sentence, split_sentence_texts, split_sentences
from repro.text.stem import PorterStemmer, stem
from repro.text.stopwords import STOPWORDS, is_stopword, remove_stopwords
from repro.text.tokenizer import Token, tokenize, tokenize_words

__all__ = [
    "AnnotatedText",
    "AnnotatedToken",
    "AnnotationCache",
    "AnnotationEngine",
    "Annotator",
    "CacheStats",
    "ENTITY_CATEGORIES",
    "Entity",
    "NamedEntityRecognizer",
    "NerConfig",
    "OPEN_CLASS_TAGS",
    "PorterStemmer",
    "STOPWORDS",
    "Sentence",
    "TaggedToken",
    "Token",
    "content_key",
    "is_stopword",
    "normalize_crawl_text",
    "remove_stopwords",
    "split_sentence_texts",
    "split_sentences",
    "stem",
    "tag",
    "tag_tokens",
    "tokenize",
    "tokenize_words",
]
