"""Crawl-text normalization: what a fetcher does before NLP sees a page.

Real crawled text arrives with HTML entities, typographic quotes and
dashes, soft hyphens, stray control characters and ragged whitespace.
The paper's pre-processing ("changing all text to lower case, stemming,
and stop-word elimination") presumes this cleanup already happened;
this module is that layer.
"""

from __future__ import annotations

import html
import re

_QUOTE_MAP = {
    "‘": "'", "’": "'", "‚": "'", "‛": "'",
    "“": '"', "”": '"', "„": '"', "‟": '"',
    "′": "'", "″": '"',
}
_DASH_MAP = {
    "‐": "-", "‑": "-", "‒": "-", "–": "-",
    "—": "-", "―": "-", "−": "-",
}
_ELLIPSIS = "…"
_SOFT_HYPHEN = "­"
_ZERO_WIDTH = ("​", "‌", "‍", "﻿")

_WS_RE = re.compile(r"[ \t\f\v]+")
_NEWLINE_PAD_RE = re.compile(r" ?\n ?")
_BLANKS_RE = re.compile(r"\n{3,}")
_TAG_RE = re.compile(r"<[^>\n]{1,200}>")

#: One translation table for the whole punctuation pass: quotes, dashes
#: and the ellipsis map in a single C-level scan instead of one
#: ``str.replace`` walk per character class.
_PUNCT_TABLE = str.maketrans(
    {**_QUOTE_MAP, **_DASH_MAP, _ELLIPSIS: "..."}
)

#: Characters :func:`remove_invisibles` deletes: soft hyphen,
#: zero-width characters, and every Cc control char except the kept
#: ``\n``/``\t`` (Cc is exactly U+0000-U+001F and U+007F-U+009F).
_INVISIBLES_TABLE = str.maketrans(
    {
        char: None
        for char in (
            _SOFT_HYPHEN,
            *_ZERO_WIDTH,
            *(
                chr(code)
                for code in (*range(0x00, 0x20), *range(0x7F, 0xA0))
                if chr(code) not in "\n\t"
            ),
        )
    }
)


def unescape_entities(text: str) -> str:
    """Resolve HTML entities (``&amp;`` -> ``&``, ``&#39;`` -> ``'``)."""
    return html.unescape(text)


def strip_tags(text: str) -> str:
    """Drop inline markup tags, replacing each with a space."""
    return _TAG_RE.sub(" ", text)


def normalize_punctuation(text: str) -> str:
    """Map typographic quotes/dashes/ellipses to ASCII equivalents."""
    return text.translate(_PUNCT_TABLE)


def remove_invisibles(text: str) -> str:
    """Drop soft hyphens, zero-width characters and control chars."""
    return text.translate(_INVISIBLES_TABLE)


def collapse_whitespace(text: str) -> str:
    """Squeeze runs of spaces/tabs; cap blank-line runs at one."""
    text = _WS_RE.sub(" ", text)
    text = _NEWLINE_PAD_RE.sub("\n", text)
    text = _BLANKS_RE.sub("\n\n", text)
    return text.strip()


def normalize_crawl_text(text: str) -> str:
    """The full fetcher-side cleanup pipeline, in canonical order."""
    text = unescape_entities(text)
    text = strip_tags(text)
    text = remove_invisibles(text)
    text = normalize_punctuation(text)
    return collapse_whitespace(text)
