"""Crawl-text normalization: what a fetcher does before NLP sees a page.

Real crawled text arrives with HTML entities, typographic quotes and
dashes, soft hyphens, stray control characters and ragged whitespace.
The paper's pre-processing ("changing all text to lower case, stemming,
and stop-word elimination") presumes this cleanup already happened;
this module is that layer.
"""

from __future__ import annotations

import html
import re
import unicodedata

_QUOTE_MAP = {
    "‘": "'", "’": "'", "‚": "'", "‛": "'",
    "“": '"', "”": '"', "„": '"', "‟": '"',
    "′": "'", "″": '"',
}
_DASH_MAP = {
    "‐": "-", "‑": "-", "‒": "-", "–": "-",
    "—": "-", "―": "-", "−": "-",
}
_ELLIPSIS = "…"
_SOFT_HYPHEN = "­"
_ZERO_WIDTH = ("​", "‌", "‍", "﻿")

_WS_RE = re.compile(r"[ \t\f\v]+")
_BLANKS_RE = re.compile(r"\n{3,}")
_TAG_RE = re.compile(r"<[^>\n]{1,200}>")


def unescape_entities(text: str) -> str:
    """Resolve HTML entities (``&amp;`` -> ``&``, ``&#39;`` -> ``'``)."""
    return html.unescape(text)


def strip_tags(text: str) -> str:
    """Drop inline markup tags, replacing each with a space."""
    return _TAG_RE.sub(" ", text)


def normalize_punctuation(text: str) -> str:
    """Map typographic quotes/dashes/ellipses to ASCII equivalents."""
    for source, target in _QUOTE_MAP.items():
        text = text.replace(source, target)
    for source, target in _DASH_MAP.items():
        text = text.replace(source, target)
    return text.replace(_ELLIPSIS, "...")


def remove_invisibles(text: str) -> str:
    """Drop soft hyphens, zero-width characters and control chars."""
    text = text.replace(_SOFT_HYPHEN, "")
    for char in _ZERO_WIDTH:
        text = text.replace(char, "")
    return "".join(
        char
        for char in text
        if char in "\n\t" or unicodedata.category(char) != "Cc"
    )


def collapse_whitespace(text: str) -> str:
    """Squeeze runs of spaces/tabs; cap blank-line runs at one."""
    text = _WS_RE.sub(" ", text)
    text = re.sub(r" ?\n ?", "\n", text)
    text = _BLANKS_RE.sub("\n\n", text)
    return text.strip()


def normalize_crawl_text(text: str) -> str:
    """The full fetcher-side cleanup pipeline, in canonical order."""
    text = unescape_entities(text)
    text = strip_tags(text)
    text = remove_invisibles(text)
    text = normalize_punctuation(text)
    return collapse_whitespace(text)
