"""Combined annotation pipeline: tokens -> POS tags + named entities.

This is the "annotator" box of Figure 2 in the paper.  Every token in a
snippet receives exactly one *abstraction category*: the entity label if
the named-entity recognizer claimed the token, otherwise its
part-of-speech tag ("Any entity that did not fall in the above categories
was assigned a part-of-speech category", section 3.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.text.ner import Entity, NamedEntityRecognizer, NerConfig
from repro.text.pos import TaggedToken, tag_tokens
from repro.text.tokenizer import Token, tokenize


@dataclass(frozen=True, slots=True)
class AnnotatedToken:
    """A token with its part-of-speech tag and (optional) entity label.

    ``category`` is the abstraction category the token contributes to:
    the entity label when inside an entity span, else the POS tag.
    """

    text: str
    pos: str
    entity: str | None

    @property
    def category(self) -> str:
        return self.entity if self.entity is not None else self.pos


@dataclass(frozen=True)
class AnnotatedText:
    """A fully annotated piece of text (typically one snippet)."""

    text: str
    tokens: tuple[AnnotatedToken, ...]
    entities: tuple[Entity, ...]

    def entity_labels(self) -> set[str]:
        """The set of entity categories present in this text."""
        return {entity.label for entity in self.entities}

    def words(self) -> list[str]:
        return [token.text for token in self.tokens]


class Annotator:
    """Runs tokenization, POS tagging and NER over raw text."""

    def __init__(self, ner_config: NerConfig | None = None) -> None:
        self._ner = NamedEntityRecognizer(ner_config)

    def annotate(self, text: str) -> AnnotatedText:
        tokens = tokenize(text)
        tagged = tag_tokens(tokens)
        entities = self._ner.recognize_tokens(tokens)
        return AnnotatedText(
            text=text,
            tokens=tuple(_merge(tagged, entities)),
            entities=tuple(entities),
        )

    def annotate_many(self, texts: list[str]) -> list[AnnotatedText]:
        return [self.annotate(text) for text in texts]


def _merge(
    tagged: list[TaggedToken], entities: list[Entity]
) -> list[AnnotatedToken]:
    """Attach entity labels to the tokens inside each entity span."""
    label_by_index: dict[int, str] = {}
    for entity in entities:
        for index in range(entity.start, entity.end):
            label_by_index[index] = entity.label
    return [
        AnnotatedToken(
            text=item.text,
            pos=item.tag,
            entity=label_by_index.get(index),
        )
        for index, item in enumerate(tagged)
    ]
