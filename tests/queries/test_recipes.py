"""Recipe schema validation, loading, and end-to-end execution."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.corpus.generator import CorpusConfig
from repro.obs.events import EventLog
from repro.obs.tracer import Tracer
from repro.queries.recipes import (
    Recipe,
    RecipeError,
    load_recipe,
    recipe_from_data,
    run_recipe,
    validate_recipe_data,
)

pytestmark = pytest.mark.queries

RECIPES_DIR = Path(__file__).resolve().parents[2] / "configs" / "recipes"

MINIMAL = {"name": "t", "drivers": ["layoffs"]}


class TestValidation:
    def test_minimal_recipe_is_valid(self):
        assert validate_recipe_data(MINIMAL) == []

    def test_non_mapping_rejected(self):
        assert validate_recipe_data(["not", "a", "mapping"]) == [
            "recipe must be a mapping of fields"
        ]

    def test_unknown_top_level_field(self):
        problems = validate_recipe_data({**MINIMAL, "budgett": 3})
        assert "unknown field 'budgett'" in problems

    def test_name_required(self):
        problems = validate_recipe_data({"drivers": ["layoffs"]})
        assert any("name is required" in p for p in problems)

    def test_drivers_required_and_known(self):
        assert any(
            "drivers is required" in p
            for p in validate_recipe_data({"name": "t"})
        )
        problems = validate_recipe_data(
            {"name": "t", "drivers": ["steel_output"]}
        )
        assert any(
            "unknown driver 'steel_output'" in p for p in problems
        )

    def test_integer_fields_checked(self):
        problems = validate_recipe_data(
            {**MINIMAL, "n_docs": "many", "top_k_per_query": 0}
        )
        assert "n_docs must be an integer" in problems
        assert "top_k_per_query must be >= 1" in problems

    def test_unknown_fault_profile(self):
        problems = validate_recipe_data(
            {**MINIMAL, "fault_profile": "volcanic"}
        )
        assert any(
            "unknown fault_profile 'volcanic'" in p for p in problems
        )

    def test_mix_doc_types_and_weights_checked(self):
        problems = validate_recipe_data({
            **MINIMAL,
            "mix": {"press_release": -1, "tabloid": 0.5},
        })
        assert any("unknown doc type 'tabloid'" in p for p in problems)
        assert any(
            "weight for 'press_release' must be > 0" in p
            for p in problems
        )

    def test_planner_fields_checked(self):
        problems = validate_recipe_data({
            **MINIMAL,
            "planner": {"enabled": "yes", "budget": 0, "knob": 1},
        })
        assert "planner.enabled must be a boolean" in problems
        assert "planner.budget must be >= 1" in problems
        assert "unknown planner field 'knob'" in problems

    def test_alerts_fields_checked(self):
        problems = validate_recipe_data({
            **MINIMAL,
            "alerts": {"threshold": 1.5, "cycles": -1, "pager": True},
        })
        assert any("threshold" in p for p in problems)
        assert "alerts.cycles must be >= 0" in problems
        assert "unknown alerts field 'pager'" in problems

    def test_all_problems_reported_at_once(self):
        problems = validate_recipe_data({
            "drivers": [],
            "fault_profile": "volcanic",
            "typo": 1,
        })
        assert len(problems) >= 3


class TestRecipeFromData:
    def test_invalid_data_raises_with_every_problem_listed(self):
        with pytest.raises(RecipeError) as excinfo:
            recipe_from_data(
                {"drivers": ["steel_output"], "typo": 1},
                source="inline",
            )
        message = str(excinfo.value)
        assert "invalid recipe inline" in message
        assert "unknown field 'typo'" in message
        assert "unknown driver 'steel_output'" in message

    def test_defaults_applied(self):
        recipe = recipe_from_data(MINIMAL)
        assert recipe.n_docs == 600
        assert recipe.planner.enabled is True
        assert recipe.planner.budget == 200
        assert recipe.alerts.cycles == 1


class TestCorpusMix:
    def test_extended_driver_doc_types_are_added(self):
        recipe = recipe_from_data(
            {"name": "t", "drivers": ["funding_rounds", "layoffs"]}
        )
        mix = recipe.corpus_mix()
        assert mix["funding_news"] == pytest.approx(0.07)
        assert mix["layoff_news"] == pytest.approx(0.07)

    def test_builtin_drivers_keep_the_paper_mix(self):
        recipe = recipe_from_data(
            {"name": "t", "drivers": ["mergers_acquisitions"]}
        )
        assert recipe.corpus_mix() == CorpusConfig().mix

    def test_explicit_mix_wins(self):
        recipe = recipe_from_data({
            **MINIMAL, "mix": {"layoff_news": 1.0},
        })
        assert recipe.corpus_mix() == {"layoff_news": 1.0}


class TestLoadRecipe:
    def test_yaml_roundtrip(self, tmp_path):
        path = tmp_path / "r.yaml"
        path.write_text(
            "name: tiny\ndrivers:\n  - layoffs\nn_docs: 120\n"
        )
        recipe = load_recipe(path)
        assert recipe.name == "tiny"
        assert recipe.drivers == ("layoffs",)
        assert recipe.n_docs == 120

    def test_json_roundtrip(self, tmp_path):
        path = tmp_path / "r.json"
        path.write_text(json.dumps(MINIMAL))
        assert load_recipe(path).name == "t"

    def test_missing_file_is_a_recipe_error(self, tmp_path):
        with pytest.raises(RecipeError, match="cannot read file"):
            load_recipe(tmp_path / "absent.yaml")

    def test_unparseable_yaml_is_a_recipe_error(self, tmp_path):
        path = tmp_path / "bad.yaml"
        path.write_text("name: [unclosed\n")
        with pytest.raises(RecipeError, match="invalid YAML"):
            load_recipe(path)


class TestCommittedRecipes:
    """Tier-1 guard: the example recipes under configs/ stay valid."""

    def test_examples_exist(self):
        assert len(list(RECIPES_DIR.glob("*.yaml"))) >= 3

    @pytest.mark.parametrize(
        "path",
        sorted(RECIPES_DIR.glob("*.yaml")),
        ids=lambda p: p.stem,
    )
    def test_committed_recipe_validates_and_loads(self, path):
        recipe = load_recipe(path)
        assert isinstance(recipe, Recipe)
        assert recipe.drivers


class TestPlannerDisabledBitIdentity:
    """With the planner off, a recipe is the paper's pipeline exactly."""

    def test_matches_the_default_pipeline(self):
        from repro.core.etap import Etap, EtapConfig
        from repro.corpus.web import build_web

        recipe = recipe_from_data({
            "name": "control",
            "drivers": [
                "mergers_acquisitions",
                "change_in_management",
                "revenue_growth",
            ],
            "n_docs": 180,
            "seed": 7,
            "top_k_per_query": 30,
            "negative_sample_size": 200,
            "planner": {"enabled": False},
            "alerts": {"cycles": 0},
        })
        result = run_recipe(recipe)
        assert result.plans == {}

        web = build_web(180, CorpusConfig(seed=7))
        etap = Etap.from_web(
            web,
            config=EtapConfig(
                top_k_per_query=30, negative_sample_size=200
            ),
        )
        etap.gather()
        etap.train()
        events = etap.extract_trigger_events()
        assert result.events_per_driver == {
            driver_id: len(items)
            for driver_id, items in events.items()
        }


class TestRunRecipe:
    @pytest.fixture(scope="class")
    def tiny_result(self):
        recipe = recipe_from_data({
            "name": "tiny-layoffs",
            "drivers": ["layoffs"],
            "n_docs": 160,
            "seed": 13,
            "negative_sample_size": 200,
            "planner": {"budget": 80, "top_k": 20,
                        "max_candidates": 40},
            "alerts": {"cycles": 1, "docs_per_cycle": 15},
        })
        tracer = Tracer()
        log = EventLog()
        result = run_recipe(recipe, tracer=tracer, event_log=log)
        return result, tracer, log

    def test_end_to_end_shape(self, tiny_result):
        result, _, _ = tiny_result
        assert result.documents_stored > 0
        assert set(result.plans) == {"layoffs"}
        plan = result.plans["layoffs"]
        assert plan.planned.total_cost <= 80
        assert plan.n_candidates > len(plan.baseline.selected)
        assert result.cycles_run == 1

    def test_observability_flows_through(self, tiny_result):
        _, tracer, log = tiny_result
        counters = tracer.registry.counters
        assert counters["queries.candidates_evaluated"] > 0
        assert counters["queries.portfolios_selected"] == 1
        assert log.events("query_candidate_evaluated")
        assert len(log.events("portfolio_selected")) == 1

    def test_render_mentions_plans_and_alerts(self, tiny_result):
        result, _, _ = tiny_result
        text = result.render()
        assert "recipe 'tiny-layoffs'" in text
        assert "planned portfolios" in text
        assert "alerts minted" in text

    def test_n_docs_override(self):
        recipe = recipe_from_data({
            "name": "override",
            "drivers": ["layoffs"],
            "n_docs": 5000,
            "planner": {"enabled": False},
            "alerts": {"cycles": 0},
        })
        result = run_recipe(recipe, n_docs=120)
        assert result.documents_stored <= 120
        assert result.plans == {}
        assert result.alerts == []
